# Developer entry points for the SURGE reproduction.
#
#   make test          tier-1 test suite (unit tests; pure stdlib fallback works)
#   make bench         both benchmarks below
#   make bench-sweep   sweep-kernel microbenchmark -> BENCH_sweep.json
#   make bench-ingest  end-to-end ingestion throughput -> BENCH_ingest.json
#                      (each refuses to record a >20% regression;
#                       BENCH_FLAGS=--force overrides, BENCH_FLAGS=--quick
#                       runs a reduced smoke configuration)
#   make lint          byte-compile every source tree as a fast syntax/import gate
#
# The numpy sweep backend is optional: `pip install .[fast]` enables it, and
# everything degrades to the pure-Python kernel without it.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
BENCH_FLAGS ?=

.PHONY: test bench bench-sweep bench-ingest lint

test:
	$(PYTHON) -m pytest -x -q

bench: bench-sweep bench-ingest

bench-sweep:
	$(PYTHON) benchmarks/bench_sweep.py $(BENCH_FLAGS)

bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py $(BENCH_FLAGS)

lint:
	$(PYTHON) -m compileall -q src/repro tests benchmarks examples
