# Developer entry points for the SURGE reproduction.
#
#   make test          tier-1 test suite (unit tests; pure stdlib fallback works)
#   make bench         all eight benchmarks below
#   make bench-sweep   sweep-kernel microbenchmark -> BENCH_sweep.json
#   make bench-ingest  end-to-end ingestion throughput -> BENCH_ingest.json
#   make bench-service multi-query service throughput -> BENCH_service.json
#   make bench-recovery checkpoint overhead + crash recovery -> BENCH_recovery.json
#   make bench-robustness reorder-buffer overhead under disorder + adversarial
#                      (skew/churn) workloads -> BENCH_robustness.json
#   make bench-server  live-traffic latency through the TCP front end
#                      (concurrent subscriber fan-out) -> BENCH_server.json
#   make bench-obs     tracing-tier overhead on the ingestion hot path
#                      (off / disabled / enabled, bars 2% and 10%)
#                      -> BENCH_obs.json
#   make bench-remote  distributed shard tier: remote-executor throughput at
#                      1/2/4 workers (bit-identical to serial) plus a
#                      kill-a-worker failover cell -> BENCH_remote.json
#                      (each refuses to record a >20% regression;
#                       BENCH_FLAGS=--force overrides, BENCH_FLAGS=--quick
#                       runs a reduced smoke configuration)
#   make smoke-recovery SIGKILL a checkpointing `repro serve` mid-stream and
#                      assert the --resume run reproduces the uninterrupted
#                      results (the CI crash/recovery smoke)
#   make smoke-chaos   SIGKILL a checkpointing `repro serve` running under 10%
#                      disorder + poison records and assert the --resume run
#                      reproduces the uninterrupted results and IngestStats
#                      counters (the CI chaos smoke)
#   make smoke-shared  replay a q64 grid under the shared-work execution plan
#                      (serial + 2-shard process + a cross-plan checkpoint
#                      resume) and assert bit-identity with the unshared
#                      plan (the CI shared-plan smoke)
#   make smoke-overload flash-crowd a prioritised service and assert the
#                      overload tier's contract: bounded buffering, counted
#                      priority shedding, compaction after churn, and the
#                      strict policy's typed refusal (the CI overload smoke)
#   make smoke-server  serve over TCP in a subprocess, register + ingest +
#                      subscribe + scrape /metrics over the wire, SIGTERM
#                      mid-stream, then --resume re-serves the recorded
#                      endpoint and the final results must be bit-identical
#                      to an uninterrupted run (the CI network-tier smoke)
#   make smoke-obs     serve traced over TCP (--trace-dir --slow-chunk
#                      --log-json), assert the stats frame's stages section,
#                      the /metrics stage histograms, the JSON log lines,
#                      and the exported Chrome trace's lanes + span nesting
#                      (the CI observability smoke)
#   make smoke-remote  serve with the remote executor and three external
#                      `repro worker --connect` processes, SIGKILL one
#                      mid-stream, and assert the final results stay
#                      bit-identical to a serial run while the failover
#                      counters prove the kill landed (the CI distributed smoke)
#   make smoke         all seven smokes above, each under a hard `timeout`
#                      (SMOKE_TIMEOUT seconds, default 900)
#   make coverage      unit suite under pytest-cov with the pinned fail-under
#                      (requires pytest-cov; the CI coverage leg runs this)
#   make lint          byte-compile every source tree as a fast syntax/import gate
#
# The numpy sweep backend is optional: `pip install .[fast]` enables it, and
# everything degrades to the pure-Python kernel without it.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
BENCH_FLAGS ?=
# Hard wall-clock cap per smoke under `make smoke`: a hung victim or resume
# must fail the build, not wedge it.
SMOKE_TIMEOUT ?= 900
# Line-coverage floor for `make coverage`. Baseline measured 2026-07-30 at
# 94.9% over src/repro (full tests/ suite, stdlib line tracer; worker-process
# code runs uncounted, as it does under un-configured pytest-cov), pinned a
# few points under so the floor only moves up deliberately.
COVERAGE_MIN ?= 92

.PHONY: test bench bench-sweep bench-ingest bench-service bench-recovery \
	bench-robustness bench-server bench-obs bench-remote smoke smoke-recovery \
	smoke-shared smoke-chaos smoke-overload smoke-server smoke-obs \
	smoke-remote coverage lint

test:
	$(PYTHON) -m pytest -x -q

bench: bench-sweep bench-ingest bench-service bench-recovery bench-robustness \
	bench-server bench-obs bench-remote

bench-sweep:
	$(PYTHON) benchmarks/bench_sweep.py $(BENCH_FLAGS)

bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py $(BENCH_FLAGS)

bench-service:
	$(PYTHON) benchmarks/bench_service.py $(BENCH_FLAGS)

bench-recovery:
	$(PYTHON) benchmarks/bench_recovery.py $(BENCH_FLAGS)

bench-robustness:
	$(PYTHON) benchmarks/bench_robustness.py $(BENCH_FLAGS)

bench-server:
	$(PYTHON) benchmarks/bench_server.py $(BENCH_FLAGS)

bench-obs:
	$(PYTHON) benchmarks/bench_obs.py $(BENCH_FLAGS)

bench-remote:
	$(PYTHON) benchmarks/bench_remote.py $(BENCH_FLAGS)

smoke:
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/recovery_smoke.py
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/shared_plan_smoke.py
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/chaos_smoke.py
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/overload_smoke.py
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/server_smoke.py
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/obs_smoke.py
	timeout $(SMOKE_TIMEOUT) $(PYTHON) scripts/remote_smoke.py

smoke-recovery:
	$(PYTHON) scripts/recovery_smoke.py

smoke-shared:
	$(PYTHON) scripts/shared_plan_smoke.py

smoke-chaos:
	$(PYTHON) scripts/chaos_smoke.py

smoke-overload:
	$(PYTHON) scripts/overload_smoke.py

smoke-server:
	$(PYTHON) scripts/server_smoke.py

smoke-obs:
	$(PYTHON) scripts/obs_smoke.py

smoke-remote:
	$(PYTHON) scripts/remote_smoke.py

coverage:
	$(PYTHON) -m pytest tests -q --cov=repro --cov-report=term-missing:skip-covered \
		--cov-fail-under=$(COVERAGE_MIN)

lint:
	$(PYTHON) -m compileall -q src/repro tests benchmarks examples scripts
