"""Setuptools entry point for the SURGE reproduction.

The library itself is dependency-free pure Python; the vectorized SL-CSPOT
sweep backend needs NumPy, which is wired up as the optional ``fast`` extra
so the zero-dependency install keeps working::

    pip install .          # pure-Python kernels only
    pip install .[fast]    # enables the numpy sweep backend

This file also enables the legacy editable install path
(``pip install -e . --no-use-pep517``) on offline machines that lack the
``wheel`` backend required by PEP 660.
"""

from setuptools import find_packages, setup

setup(
    name="repro-surge",
    version="1.0.0",
    description=(
        "Reproduction of SURGE: continuous bursty region detection over "
        "spatial streams (ICDE 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        "fast": ["numpy>=1.22"],
    },
)
