#!/usr/bin/env python
"""Compare every SURGE algorithm on the same stream: speed vs quality.

This example reproduces, at example scale, the central trade-off of the
paper: the exact detectors (Cell-CSPOT and the baselines it improves upon)
return the true bursty region but pay for it per event, while GAP-SURGE /
MGAP-SURGE are orders of magnitude faster and stay within a provable factor
of the optimum.

It runs all detectors over a Taxi-profile stream, then prints a table with
the mean per-object processing time, the number of cell searches, and the
average approximation ratio relative to Cell-CSPOT.

Run it with::

    python examples/algorithm_comparison.py
"""

from __future__ import annotations

import time

from repro.core.monitor import make_detector
from repro.datasets.profiles import TAXI_PROFILE
from repro.datasets.synthetic import generate_profile_stream
from repro.datasets.workloads import default_query_for_profile
from repro.evaluation.tables import format_table
from repro.streams.windows import SlidingWindowPair

ALGORITHMS = ("ccs", "bccs", "base", "ag2", "gaps", "mgaps")


def main() -> None:
    stream = generate_profile_stream(TAXI_PROFILE, n_objects=1500, seed=7)
    query = default_query_for_profile(TAXI_PROFILE, window_seconds=240.0, alpha=0.5)

    detectors = {name: make_detector(name, query) for name in ALGORITHMS}
    timings = {name: 0.0 for name in ALGORITHMS}
    ratio_sums = {name: 0.0 for name in ALGORITHMS}
    ratio_counts = 0

    windows = SlidingWindowPair(query.current_length, query.past_length)
    for index, obj in enumerate(stream):
        events = windows.observe(obj)
        for name, detector in detectors.items():
            started = time.perf_counter()
            for event in events:
                detector.process(event)
            timings[name] += time.perf_counter() - started
        if windows.is_stable() and index % 25 == 0:
            optimum = detectors["ccs"].current_score()
            if optimum > 0:
                ratio_counts += 1
                for name, detector in detectors.items():
                    ratio_sums[name] += detector.current_score() / optimum

    rows = []
    for name in ALGORITHMS:
        detector = detectors[name]
        mean_micros = timings[name] / len(stream) * 1e6
        mean_ratio = (ratio_sums[name] / ratio_counts * 100.0) if ratio_counts else float("nan")
        rows.append(
            [
                name.upper(),
                mean_micros,
                detector.stats.cells_searched,
                f"{100.0 * detector.stats.search_trigger_ratio:.1f}%",
                f"{mean_ratio:.1f}%",
            ]
        )

    print(
        format_table(
            f"Algorithm comparison on a Taxi-profile stream ({len(stream)} objects, "
            f"window = {query.window_length:.0f} s, alpha = {query.alpha})",
            ["algorithm", "mean µs/object", "cell searches", "events triggering search", "avg score vs CCS"],
            rows,
            value_format="{:.1f}",
        )
    )
    print()
    print("Expected shape (paper, Figures 5-6 and Table IV): CCS well below B-CCS/Base/aG2;")
    print("GAPS and MGAPS one or more orders of magnitude faster than every exact method,")
    print("with MGAPS closer to 100% quality than GAPS.")


if __name__ == "__main__":
    main()
