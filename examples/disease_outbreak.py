#!/usr/bin/env python
"""Disease-outbreak monitoring via keyword-filtered tweets (Example 1 + Appendix L).

Public-health analysts continuously monitor geo-tagged messages for sudden
localized spikes of disease-related chatter.  Following the paper's case
study, the pipeline is:

1. generate a keyword-tagged message stream over the US with two planted
   outbreak events ("zika" chatter in two different cities at different
   times),
2. keep only the messages containing the monitored keyword, and
3. feed them to the top-k Cell-CSPOT detector so that *several* suspicious
   regions are tracked at once (Section VI of the paper motivates top-k
   exactly this way).

Run it with::

    python examples/disease_outbreak.py
"""

from __future__ import annotations

from repro import SurgeMonitor, SurgeQuery
from repro.datasets.keywords import KeywordEvent, filter_by_keyword, generate_keyword_stream
from repro.datasets.profiles import US_PROFILE


def build_message_stream():
    """Background chatter over the US plus two planted zika outbreaks."""
    extent = US_PROFILE.extent
    miami = KeywordEvent(
        keyword="zika",
        center_x=-80.19,
        center_y=25.76,
        start_time=3600.0,
        duration=1500.0,
        radius_x=0.05,
        radius_y=0.05,
        rate_multiplier=2.5,
    )
    houston = KeywordEvent(
        keyword="zika",
        center_x=-95.37,
        center_y=29.76,
        start_time=5400.0,
        duration=1500.0,
        radius_x=0.05,
        radius_y=0.05,
        rate_multiplier=1.5,
    )
    stream = generate_keyword_stream(
        extent=extent,
        n_background=2500,
        arrival_rate_per_hour=900.0,
        events=(miami, houston),
        seed=99,
    )
    return stream, (miami, houston)


def main() -> None:
    stream, outbreaks = build_message_stream()
    zika_stream = filter_by_keyword(stream, "zika")
    print(f"Total messages: {len(stream)}; messages mentioning 'zika': {len(zika_stream)}")

    # Health officials monitor ~50 km x 50 km regions (about half a degree),
    # a one-hour window, and want the two most bursty regions at all times.
    query = SurgeQuery(
        rect_width=0.5,
        rect_height=0.5,
        window_length=1800.0,
        alpha=0.6,
        area=US_PROFILE.extent,
        k=2,
    )
    monitor = SurgeMonitor(query, algorithm="kccs")

    print(f"{'time (h)':>8} | top-k bursty regions (score @ centre)")
    print("-" * 76)
    last_top = []
    for index, message in enumerate(zika_stream):
        monitor.push(message)
        if index % 150 == 0:
            last_top = monitor.top_k()
            summary = "  ".join(
                f"{r.score:6.4f} @ ({r.region.center.x:7.2f}, {r.region.center.y:6.2f})"
                for r in last_top
            )
            print(f"{message.timestamp / 3600.0:>8.2f} | {summary or '(nothing bursty yet)'}")

    print("-" * 76)
    print("Final alert list:")
    for rank, alert in enumerate(monitor.top_k(), start=1):
        matched = [
            outbreak.keyword + f" @ ({outbreak.center_x:.2f}, {outbreak.center_y:.2f})"
            for outbreak in outbreaks
            if alert.region.intersects(outbreak.region)
        ]
        label = ", ".join(matched) if matched else "no planted outbreak (background noise)"
        print(
            f"  #{rank}: score={alert.score:.4f} region={tuple(round(v, 2) for v in alert.region.as_tuple())}"
            f"  -> {label}"
        )


if __name__ == "__main__":
    main()
