#!/usr/bin/env python
"""Quickstart: continuous bursty-region detection in a few lines.

This example builds a tiny synthetic stream with one planted burst, runs the
exact Cell-CSPOT detector through the :class:`~repro.core.monitor.SurgeMonitor`
facade, and prints the detected bursty region every 50 objects together with
its burst score.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SurgeMonitor, SurgeQuery
from repro.datasets.synthetic import BurstSpec, StreamConfig, generate_stream
from repro.geometry.primitives import Rect


def build_stream():
    """A 1,000-object stream over a 100x100 area with one intense burst."""
    burst = BurstSpec(
        center_x=30.0,
        center_y=70.0,
        radius_x=0.8,
        radius_y=0.8,
        start_time=2400.0,
        duration=400.0,
        rate_multiplier=5.0,
    )
    config = StreamConfig(
        extent=Rect(0.0, 0.0, 100.0, 100.0),
        n_objects=1000,
        arrival_rate_per_hour=900.0,
        weight_range=(1.0, 10.0),
        bursts=(burst,),
        seed=42,
    )
    return generate_stream(config), burst


def main() -> None:
    stream, burst = build_stream()

    # The user asks for 5x5 regions, 10-minute windows, and a burst score that
    # weighs the spike over the past window and the current mass equally.
    query = SurgeQuery(rect_width=5.0, rect_height=5.0, window_length=600.0, alpha=0.5)
    monitor = SurgeMonitor(query, algorithm="ccs")

    print(f"Planted burst: centre=({burst.center_x}, {burst.center_y}), "
          f"active t=[{burst.start_time}, {burst.start_time + burst.duration}]")
    print(f"{'object #':>9} | {'stream time':>11} | {'burst score':>11} | detected region")
    print("-" * 78)

    hits_during_burst = 0
    checks_during_burst = 0
    for index, obj in enumerate(stream):
        result = monitor.push(obj)
        burst_active = (
            burst.start_time + 60.0 <= obj.timestamp <= burst.start_time + burst.duration
        )
        if burst_active and result is not None:
            checks_during_burst += 1
            if result.region.contains_xy(burst.center_x, burst.center_y):
                hits_during_burst += 1
        if index % 50 == 0 and result is not None:
            region = result.region
            print(
                f"{index:>9} | {obj.timestamp:>11.0f} | {result.score:>11.3f} | "
                f"[{region.min_x:6.1f}, {region.min_y:6.1f}] .. "
                f"[{region.max_x:6.1f}, {region.max_y:6.1f}]"
            )

    print("-" * 78)
    if checks_during_burst:
        print(
            "While the planted burst was active, the detected region contained its "
            f"centre in {hits_during_burst}/{checks_during_burst} instants."
        )
    final = monitor.result()
    if final is not None:
        print(
            f"Final bursty region (after the burst expired): {final.region.as_tuple()}  "
            f"score={final.score:.3f}"
        )
    stats = monitor.detector.stats
    print(
        f"Processed {stats.events_processed} window events; "
        f"{stats.cells_searched} cell searches "
        f"({100.0 * stats.search_trigger_ratio:.1f}% of events triggered a search)."
    )


if __name__ == "__main__":
    main()
