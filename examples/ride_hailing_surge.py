#!/usr/bin/env python
"""Ride-hailing surge detection (Example 2 of the paper).

A ride-hailing platform receives a stream of trip requests.  Drivers want to
be notified, in real time, of the ``a × b`` neighbourhood where demand is
currently surging — i.e. the region with the maximum burst score — so they can
reposition before the surge-pricing multiplier kicks in.

The simulation mimics a working day in a Rome-sized city (the paper's Taxi
dataset): background demand clustered around the city centre, plus two
unpredictable demand spikes (a metro disruption and a stadium event letting
out).  Each request's weight is its passenger count.  We run the exact
detector and the MGAP-SURGE approximation side by side and compare what they
report while the spikes are active.

Run it with::

    python examples/ride_hailing_surge.py
"""

from __future__ import annotations

from repro import SurgeMonitor, SurgeQuery
from repro.datasets.profiles import TAXI_PROFILE
from repro.datasets.synthetic import BurstSpec, StreamConfig, generate_stream


def build_demand_stream():
    """Trip requests over Rome with two planted demand spikes."""
    extent = TAXI_PROFILE.extent
    metro_disruption = BurstSpec(
        center_x=12.48,          # Termini-ish
        center_y=41.90,
        radius_x=0.004,
        radius_y=0.004,
        start_time=2400.0,
        duration=600.0,
        rate_multiplier=5.0,
    )
    stadium_exit = BurstSpec(
        center_x=12.455,         # Stadio Olimpico-ish
        center_y=41.934,
        radius_x=0.003,
        radius_y=0.003,
        start_time=5400.0,
        duration=450.0,
        rate_multiplier=6.0,
    )
    config = StreamConfig(
        extent=extent,
        n_objects=2500,
        arrival_rate_per_hour=TAXI_PROFILE.arrival_rate_per_hour / 16.0,
        weight_range=(1.0, 4.0),   # passengers per request
        hotspot_count=TAXI_PROFILE.hotspot_count,
        bursts=(metro_disruption, stadium_exit),
        seed=2024,
    )
    return generate_stream(config), (metro_disruption, stadium_exit)


def main() -> None:
    stream, spikes = build_demand_stream()

    # Drivers ask for a neighbourhood roughly 1 km x 1 km (about 0.01 degrees)
    # and a 10-minute window, strongly weighting the recent increase.
    query = SurgeQuery(
        rect_width=0.01,
        rect_height=0.01,
        window_length=600.0,
        alpha=0.7,
        area=TAXI_PROFILE.extent,
    )
    exact = SurgeMonitor(query, algorithm="ccs")
    approx = SurgeMonitor(query, algorithm="mgaps")

    def active_spike(timestamp: float):
        for spike in spikes:
            if spike.start_time <= timestamp <= spike.start_time + spike.duration:
                return spike
        return None

    print(f"{'time (s)':>9} | {'exact score':>11} | {'MGAPS score':>11} | surge located at spike?")
    print("-" * 72)
    agreements = 0
    checks = 0
    for index, request in enumerate(stream):
        exact_result = exact.push(request)
        approx_result = approx.push(request)
        spike = active_spike(request.timestamp)
        if index % 200 != 0 or exact_result is None:
            continue
        located = (
            spike is not None
            and exact_result.region.contains_xy(spike.center_x, spike.center_y)
        )
        if spike is not None:
            checks += 1
            agreements += int(located)
        print(
            f"{request.timestamp:>9.0f} | {exact_result.score:>11.4f} | "
            f"{(approx_result.score if approx_result else 0.0):>11.4f} | "
            f"{'yes' if located else ('n/a' if spike is None else 'no')}"
        )

    print("-" * 72)
    if checks:
        print(f"Exact detector pointed at the active demand spike in {agreements}/{checks} "
              "sampled instants while a spike was active.")
    exact_stats = exact.detector.stats
    print(
        f"Cell-CSPOT searched {exact_stats.cells_searched} cells over "
        f"{exact_stats.events_processed} events "
        f"({100.0 * exact_stats.search_trigger_ratio:.2f}% of events triggered a search)."
    )


if __name__ == "__main__":
    main()
