"""Multi-query service quickstart: one shared stream, several queries.

Builds a small keyword-tagged synthetic stream with the standard library
only (no numpy needed), registers a handful of heterogeneous queries —
different keywords, rectangle sizes, window lengths, algorithms — and
replays the stream through :class:`repro.service.SurgeService` with a
selectable shard executor.  CI runs this with ``--executor process
--shards 2`` as the sharded-service smoke test on both matrix legs.

Usage::

    PYTHONPATH=src python examples/service_quickstart.py \
        [--executor serial|thread|process] [--shards N] [--objects N]
"""

from __future__ import annotations

import argparse
import random

from repro.core.query import SurgeQuery
from repro.service import EXECUTOR_NAMES, QuerySpec, SurgeService
from repro.streams.objects import SpatialObject

KEYWORDS = ("concert", "parade", "traffic", "weather")


def make_stream(n_objects: int, seed: int = 42) -> list[SpatialObject]:
    """Background chatter plus a planted 'concert' burst around (2, 2)."""
    rng = random.Random(seed)
    stream = []
    t = 0.0
    for index in range(n_objects):
        t += rng.uniform(0.05, 0.25)
        if index % 4 == 0 and n_objects // 3 < index < 2 * n_objects // 3:
            # The planted event: concert tweets clustered in space and time.
            x, y, keyword = rng.gauss(2.0, 0.3), rng.gauss(2.0, 0.3), "concert"
        else:
            x, y = rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)
            keyword = rng.choice(KEYWORDS)
        stream.append(
            SpatialObject(
                x=x,
                y=y,
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
                attributes={"keywords": (keyword,)},
            )
        )
    return stream


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", default="serial", choices=EXECUTOR_NAMES)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--objects", type=int, default=1200)
    parser.add_argument("--chunk-size", type=int, default=128)
    args = parser.parse_args()

    specs = [
        QuerySpec("concerts", SurgeQuery(1.0, 1.0, 30.0), keyword="concert"),
        QuerySpec("parades", SurgeQuery(1.5, 1.5, 60.0), keyword="parade", algorithm="gaps"),
        QuerySpec("city-wide", SurgeQuery(2.0, 2.0, 20.0), algorithm="kccs",
                  options={}),
    ]
    stream = make_stream(args.objects)

    with SurgeService(specs, shards=args.shards, executor=args.executor) as service:
        # A bus subscriber sees every (query_id, RegionResult) update as the
        # stream plays; keep the strongest concert region ever reported.
        best = {}

        def track_peak(update):
            if update.result is not None and (
                update.query_id not in best
                or update.result.score > best[update.query_id].score
            ):
                best[update.query_id] = update.result

        service.bus.subscribe(track_peak)
        for _ in service.run(stream, chunk_size=args.chunk_size):
            pass
        print(f"executor={args.executor} shards={args.shards} objects={len(stream)}")
        for query_id, result in service.results().items():
            if result is None:
                print(f"  {query_id:>10}: no bursty region")
            else:
                region = result.region
                print(
                    f"  {query_id:>10}: score={result.score:.4f} "
                    f"region=({region.min_x:.2f},{region.min_y:.2f})"
                    f"..({region.max_x:.2f},{region.max_y:.2f})"
                )
        stats = service.stats()
        print(
            f"  {stats.object_query_pairs} object-query pairs in "
            f"{stats.wall_seconds:.2f}s ({stats.pairs_per_second:,.0f} pairs/s)"
        )
    # The planted concert burst must have been localised near its (2, 2)
    # epicentre at some point while it was live in the window.
    assert "concerts" in best, "no concert region was ever reported"
    region = best["concerts"].region
    assert (
        region.min_x <= 2.6 and region.max_x >= 1.4
        and region.min_y <= 2.6 and region.max_y >= 1.4
    ), f"burst missed: {region}"
    print("smoke OK: concert burst localised at its peak")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
