"""Crash/recovery smoke: SIGKILL a checkpointing ``repro serve`` mid-stream,
resume it with ``--resume``, and assert the final answers match an
uninterrupted run.

This is the piece of the durability contract no unit test exercises: a real
process killed with an uncatchable signal (no ``atexit``, no flushing, no
graceful executor shutdown) while worker processes may be mid-chunk, whose
on-disk state must still restore and finish bit-identically.  CI runs it on
both dependency legs (``make smoke-recovery``).

Protocol
--------
1. generate a keyword-tagged stream (stdlib only — the pure leg has no
   numpy) and a small ``queries.json``;
2. run ``repro serve`` uninterrupted and capture its ``final results:``
   block;
3. run ``repro serve --checkpoint-dir ... --checkpoint-every 2``, poll for
   the first manifest, then SIGKILL the process;
4. run ``repro serve --resume`` to completion and compare its final-results
   block with the uninterrupted run's, line for line.

If the victim finishes before the kill lands (very fast machine), the
resume is a no-op replay and the parity assertion still runs — the smoke
degrades to a resume-after-completion check rather than failing spuriously.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

from repro.datasets.io import write_csv_stream  # noqa: E402
from repro.state.recovery import manifest_path  # noqa: E402
from repro.streams.objects import SpatialObject  # noqa: E402

TOTAL_OBJECTS = 30_000
CHUNK_SIZE = 200
VOCABULARY = ("concert", "parade", "zika", "festival")
SEED = 20180416
TIMEOUT = 600.0


def make_stream_file(path: Path) -> None:
    rng = random.Random(SEED)
    t = 0.0
    objects = []
    for index in range(TOTAL_OBJECTS):
        t += rng.uniform(0.05, 0.35)
        keywords = (rng.choice(VOCABULARY),) if rng.random() < 0.8 else ()
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 8.0),
                object_id=index,
                attributes={"keywords": keywords} if keywords else {},
            )
        )
    write_csv_stream(path, objects)


def make_queries_file(path: Path) -> None:
    path.write_text(
        json.dumps(
            [
                {"id": "concerts", "keyword": "concert", "rect": [1.0, 1.0],
                 "window": 30, "backend": "python"},
                {"id": "parades", "keyword": "parade", "rect": [1.2, 0.8],
                 "window": 20, "backend": "python"},
                {"id": "city-wide", "rect": [1.5, 1.5], "window": 25,
                 "algorithm": "gaps"},
                {"id": "top3", "keyword": "festival", "rect": [1.0, 1.0],
                 "window": 30, "k": 3, "algorithm": "kccs",
                 "backend": "python"},
            ]
        )
    )


def serve_args(stream: Path, *extra: str) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        str(stream),
        "--chunk-size",
        str(CHUNK_SIZE),
        "--shards",
        "2",
        *extra,
    ]


def final_results_block(stdout: str) -> list[str]:
    lines = stdout.splitlines()
    try:
        start = lines.index("final results:")
    except ValueError:
        raise AssertionError(
            f"no 'final results:' block in serve output:\n{stdout[-2000:]}"
        ) from None
    return lines[start:]


def main() -> int:
    workdir = Path(REPO_ROOT / ".recovery-smoke")
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    env = dict(os.environ, PYTHONPATH=SRC)
    try:
        stream = workdir / "stream.csv"
        queries = workdir / "queries.json"
        checkpoint_dir = workdir / "ckpt"
        make_stream_file(stream)
        make_queries_file(queries)

        print("smoke: uninterrupted reference run ...", flush=True)
        reference = subprocess.run(
            serve_args(stream, "--queries", str(queries)),
            capture_output=True,
            text=True,
            env=env,
            timeout=TIMEOUT,
        )
        assert reference.returncode == 0, reference.stderr
        expected = final_results_block(reference.stdout)

        print("smoke: starting checkpointing victim ...", flush=True)
        victim = subprocess.Popen(
            serve_args(
                stream,
                "--queries",
                str(queries),
                "--checkpoint-dir",
                str(checkpoint_dir),
                "--checkpoint-every",
                "2",
            ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        deadline = time.monotonic() + TIMEOUT
        while (
            not manifest_path(checkpoint_dir).exists()
            and victim.poll() is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        if victim.poll() is None:
            assert manifest_path(checkpoint_dir).exists(), (
                "victim ran past the deadline without writing a checkpoint"
            )
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
            print(
                f"smoke: SIGKILLed victim after its first checkpoint "
                f"(returncode {victim.returncode})",
                flush=True,
            )
            assert victim.returncode == -signal.SIGKILL
        else:
            # Very fast machine: the victim finished before the kill landed.
            # Resume degenerates to a no-op replay; parity still holds.
            print(
                "smoke: victim finished before the kill; checking "
                "resume-after-completion parity instead",
                flush=True,
            )
            assert victim.returncode == 0

        print("smoke: resuming from the checkpoint ...", flush=True)
        resumed = subprocess.run(
            serve_args(
                stream, "--resume", "--checkpoint-dir", str(checkpoint_dir)
            ),
            capture_output=True,
            text=True,
            env=env,
            timeout=TIMEOUT,
        )
        assert resumed.returncode == 0, resumed.stderr
        got = final_results_block(resumed.stdout)
        assert got == expected, (
            "resumed final results diverge from the uninterrupted run\n"
            + "--- uninterrupted ---\n"
            + "\n".join(expected)
            + "\n--- resumed ---\n"
            + "\n".join(got)
        )
        print("smoke: resume reproduced the uninterrupted results — OK")
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
