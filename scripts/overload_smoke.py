"""CI smoke: the overload tier degrades gracefully and changes no answer.

Four legs, all in-process, all over flash-crowd feeds from the shared
:class:`~repro.streams.faults.FaultInjector`:

* **bounded memory** — a ``max_inflight_chunks`` budget plus a
  never-draining ``drop_oldest`` subscription: after an 8x flash crowd the
  peak number of buffered arrivals must not exceed the budget, and the
  subscription's conservation law ``offered == delivered + dropped +
  depth`` must hold exactly (nothing is lost silently — every dropped
  update is counted);
* **priority shedding** — a degraded service sheds its priority-0 route
  class (counted) while every surviving high-priority query stays
  bit-identical to an unloaded twin run with no overload tier at all;
* **compaction** — a duplicate query registered mid-stream lands in its
  own registration epoch (no sharing); a compaction pass merges it back
  into the veteran's window group and detector unit, and the compacted
  service's results stay bit-identical to a never-churned twin *and* to
  the unshared predicate-scan plan;
* **strict mode** — ``policy="error"`` refuses the same flash crowd with a
  typed :class:`~repro.service.OverloadError` instead of degrading.

Exercised as a standalone script (``make smoke-overload``) so CI covers
the tier end to end on both dependency legs; everything here is
stdlib-only.

Usage::

    PYTHONPATH=src python scripts/overload_smoke.py [--objects N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.query import SurgeQuery  # noqa: E402
from repro.service import (  # noqa: E402
    OverloadConfig,
    OverloadError,
    QuerySpec,
    SurgeService,
)
from repro.streams.faults import FaultInjector  # noqa: E402
from repro.streams.objects import SpatialObject  # noqa: E402

import random  # noqa: E402

CHUNK_SIZE = 64
MAX_LATENESS = 3.0
SEED = 20180416
VOCABULARY = ("concert", "parade", "zika", "festival")


def make_flash_crowd(n_objects: int) -> list:
    rng = random.Random(SEED)
    t = 0.0
    objects = []
    for index in range(n_objects):
        t += rng.uniform(0.05, 0.35)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 8.0),
                object_id=index,
                attributes={"keywords": (rng.choice(VOCABULARY),)},
            )
        )
    injector = FaultInjector(
        objects,
        seed=SEED,
        disorder_fraction=0.05,
        max_disorder=MAX_LATENESS,
        flash_crowd_factor=8.0,
        flash_crowd_span=(0.2, 0.8),
    )
    return injector.materialize()


def make_specs(priorities: dict[str, int] | None = None) -> list[QuerySpec]:
    """Four queries on three route classes; ``priorities`` maps id -> rank."""
    priorities = priorities or {}
    base = [
        ("concerts", "concert", 30.0, (1.0, 1.0)),
        ("festivals", "festival", 30.0, (1.2, 0.8)),
        ("parades-a", "parade", 20.0, (1.0, 1.0)),
        ("parades-b", "parade", 20.0, (0.8, 1.2)),
    ]
    return [
        QuerySpec(
            query_id=query_id,
            query=SurgeQuery(
                rect_width=rect[0], rect_height=rect[1], window_length=window
            ),
            algorithm="ccs",
            keyword=keyword,
            backend="python",
            priority=priorities.get(query_id, 0),
        )
        for query_id, keyword, window, rect in base
    ]


def run_service(arrivals, specs, chunk_size=CHUNK_SIZE, **kwargs):
    service = SurgeService(specs, max_lateness=MAX_LATENESS, **kwargs)
    with service:
        for _ in service.run(arrivals, chunk_size):
            pass
        return service.results(), service


def bounded_memory_leg(arrivals) -> None:
    budget_chunks = 1
    with SurgeService(
        make_specs(), max_lateness=MAX_LATENESS, max_inflight_chunks=budget_chunks
    ) as service:
        # A subscriber that never drains: its queue must stay bounded and
        # every update must be accounted for — delivered, dropped or queued.
        laggard = service.bus.open_subscription(maxsize=64, policy="drop_oldest")
        chunks = 0
        for _ in service.run(arrivals, CHUNK_SIZE):
            chunks += 1
        ingest = service.ingest_stats()
        bound = budget_chunks * CHUNK_SIZE
        assert ingest.peak_buffered <= bound, (
            f"peak buffered {ingest.peak_buffered} exceeds the "
            f"{bound}-object in-flight budget"
        )
        assert ingest.force_released > 0, "flash crowd never hit the budget"
        assert laggard.depth <= 64
        assert laggard.dropped > 0, "the laggard never overflowed"
        assert laggard.offered == laggard.delivered + laggard.dropped + laggard.depth, (
            "subscription conservation law violated: "
            f"{laggard.counters()}"
        )
        assert laggard.offered == chunks * len(service.query_ids)
    print(
        f"smoke[memory]: peak buffered {ingest.peak_buffered} <= {bound}, "
        f"force_released={ingest.force_released}, laggard dropped "
        f"{laggard.dropped} of {laggard.offered} (all counted) — OK"
    )


def shedding_leg(arrivals) -> None:
    priorities = {"concerts": 5, "festivals": 5}
    config = OverloadConfig(
        high_watermark_chunks=1.0,
        low_watermark_chunks=0.25,
        policy="shed",
        shed_below_priority=5,
    )
    degraded_results, degraded = run_service(
        arrivals, make_specs(priorities), overload=config, max_inflight_chunks=4
    )
    overload = degraded.overload_stats()
    assert overload.entered_degraded >= 1, "flash crowd never crossed the watermark"
    assert overload.chunks_shed > 0, "degraded mode shed nothing"
    shed_ids = {
        query_id
        for query_id, stats in degraded.stats().per_query.items()
        if stats.chunks_shed > 0
    }
    assert shed_ids == {"parades-a", "parades-b"}, shed_ids

    unloaded_results, _ = run_service(arrivals, make_specs(priorities))
    for query_id in ("concerts", "festivals"):
        assert repr(degraded_results[query_id]) == repr(unloaded_results[query_id]), (
            f"high-priority {query_id} diverged under load shedding"
        )
    print(
        f"smoke[shed]: entered degraded {overload.entered_degraded}x, shed "
        f"{overload.chunks_shed} route-chunks from the parade class; both "
        f"priority-5 queries bit-identical to the unloaded run — OK"
    )


def compaction_leg(arrivals) -> None:
    split = len(arrivals) // 3
    specs = make_specs()
    late = QuerySpec(
        query_id="late-dup",
        query=specs[0].query,
        algorithm=specs[0].algorithm,
        keyword=specs[0].keyword,
        backend=specs[0].backend,
    )

    def churn_run(shared_plan=True, compact=True):
        # Compaction runs on the cadence, not eagerly: right after
        # registration the newcomer's window trails the veteran's, so the
        # safe-boundary check defers the merge until the contents coincide.
        with SurgeService(
            specs,
            max_lateness=MAX_LATENESS,
            shared_plan=shared_plan,
            compact_every_chunks=8 if compact else None,
        ) as service:
            for _ in service.run(arrivals[:split], CHUNK_SIZE):
                pass
            service.add_query(late)
            for _ in service.run(
                arrivals[split:], CHUNK_SIZE, start_offset=service.chunk_offset
            ):
                pass
            merged = service.overload_stats().queries_compacted
            return {k: repr(v) for k, v in service.results().items()}, merged

    compacted, merged = churn_run()
    assert merged == 1, f"expected the late duplicate to merge, got {merged}"
    churned, _ = churn_run(compact=False)
    unshared, _ = churn_run(shared_plan=False, compact=False)
    assert compacted == churned, "compaction changed an answer"
    assert compacted == unshared, "shared plan diverged from predicate scan"
    print(
        "smoke[compact]: late duplicate merged back into the veteran's "
        "unit; compacted == never-compacted == unshared, bit for bit — OK"
    )


def strict_leg(arrivals) -> None:
    config = OverloadConfig(
        high_watermark_chunks=1.0, low_watermark_chunks=0.25, policy="error"
    )
    try:
        run_service(arrivals, make_specs(), overload=config, max_inflight_chunks=4)
    except OverloadError as exc:
        assert exc.depth_chunks >= 1.0
        print(
            f"smoke[strict]: policy=error refused the flash crowd at depth "
            f"{exc.depth_chunks:.1f} chunks — OK"
        )
        return
    raise AssertionError("policy=error swallowed the flash crowd silently")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=12_000)
    args = parser.parse_args()
    started = time.perf_counter()
    arrivals = make_flash_crowd(args.objects)
    print(
        f"smoke: {len(arrivals)} arrivals, 8x flash crowd over the middle "
        f"60%, chunk size {CHUNK_SIZE}",
        flush=True,
    )
    bounded_memory_leg(arrivals)
    shedding_leg(arrivals)
    compaction_leg(arrivals)
    strict_leg(arrivals)
    print(f"smoke: all four overload legs passed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
