"""End-to-end smoke for the tracing tier: a traced ``repro serve``.

Drives a real traced server **subprocess** through the observability
story and fails loudly if any step breaks:

1. start ``repro serve --listen 127.0.0.1:0 --metrics 127.0.0.1:0`` with
   ``--trace-dir`` (Chrome-trace export on exit), ``--slow-chunk 0``
   (every dispatch is "slow", so the detector and its structured warning
   fire deterministically) and ``--log-json``;
2. over the wire: ingest a seeded stream, then assert the ``stats``
   frame carries a ``stages`` section whose ``bus.publish`` count equals
   the chunks actually dispatched, and that ``GET /metrics`` exposes
   ``repro_stage_seconds`` histograms with a consistent ``+Inf`` bucket;
3. SIGTERM the server: it must exit 0, report ``drained:``, emit
   machine-parseable JSON log lines for the slow-chunk warnings, and
   write ``trace.json``;
4. load the trace: valid JSON, per-shard lanes present, spans properly
   nested within each lane, and per-stage totals bounded by the
   service's dispatch wall time (conservation — a span tree never
   accounts for more time than actually passed).

Every subprocess interaction has a hard deadline (default 120 s;
override with ``SMOKE_TIMEOUT``).

Usage::

    python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

from repro.server.client import ServerClient, http_get
from repro.streams.objects import SpatialObject

TIMEOUT = float(os.environ.get("SMOKE_TIMEOUT", "120"))
CHUNK_SIZE = 32
TOTAL = 320
SEED = 20180416
#: Stages every traced serve run must record at least once.
REQUIRED_STAGES = ("route.bucket", "window.observe", "settle", "bus.publish")


def make_stream() -> list[SpatialObject]:
    rng = random.Random(SEED)
    keywords = ("storm", "festival")
    return [
        SpatialObject(
            x=rng.uniform(0.0, 4.0),
            y=rng.uniform(0.0, 4.0),
            timestamp=float(index),
            weight=rng.uniform(0.5, 5.0),
            object_id=index,
            attributes={"keywords": (keywords[index % 2],)},
        )
        for index in range(TOTAL)
    ]


def queries() -> list[dict]:
    return [
        {"id": "storms", "keyword": "storm", "rect": [1.0, 1.0], "window": 40,
         "backend": "python"},
        {"id": "city-wide", "rect": [1.5, 1.5], "window": 30,
         "backend": "python"},
    ]


def run_env() -> dict:
    return dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")


def parse_listening_line(line: str) -> tuple[int, int | None]:
    if not line.startswith("listening on "):
        raise AssertionError(f"unexpected listening line: {line!r}")
    endpoint = line[len("listening on "):].split(" ", 1)[0]
    port = int(endpoint.rsplit(":", 1)[1])
    metrics_port = None
    if "(metrics http://" in line:
        metrics_url = line.split("(metrics http://", 1)[1].rstrip(")\n")
        metrics_port = int(metrics_url.split("/", 1)[0].rsplit(":", 1)[1])
    return port, metrics_port


def read_listening_line(proc: subprocess.Popen) -> str:
    assert proc.stdout is not None
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"server exited before listening (rc={proc.poll()})")
        if line.startswith("listening on "):
            return line
    raise AssertionError("server did not print the listening line in time")


def terminate(proc: subprocess.Popen) -> tuple[str, str]:
    proc.send_signal(signal.SIGTERM)
    try:
        out, err = proc.communicate(timeout=TIMEOUT)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("server ignored SIGTERM (killed)")
    if proc.returncode != 0:
        raise AssertionError(f"server exited {proc.returncode} on SIGTERM\n{err}")
    if "drained:" not in err:
        raise AssertionError(f"no drain report on stderr:\n{err}")
    return out, err


def check_stats_frame(stats: dict, chunks_dispatched: int) -> None:
    stages = stats.get("stages")
    assert stages, f"stats frame has no stages section: {sorted(stats)}"
    for stage in REQUIRED_STAGES:
        assert stage in stages, f"stage {stage} missing from stats: {sorted(stages)}"
        record = stages[stage]
        assert record["count"] == sum(record["buckets"]), (
            f"{stage}: histogram buckets do not sum to the count"
        )
    publishes = stages["bus.publish"]["count"]
    assert publishes == chunks_dispatched, (
        f"bus.publish count {publishes} != chunks dispatched {chunks_dispatched}"
    )
    # The wire tier records its own spans (tracer installed process-wide).
    assert "wire.decode" in stages, sorted(stages)
    # Conservation: per-dispatch stage time can never exceed the wall time
    # the service measured for those dispatches (all four run inside it).
    wall = stats["service"]["wall_seconds"]
    inside = sum(stages[stage]["total_seconds"] for stage in REQUIRED_STAGES)
    assert 0.0 < inside <= wall, (
        f"stage totals {inside:.6f}s exceed dispatch wall {wall:.6f}s"
    )


def check_metrics(body: str) -> None:
    assert "# TYPE repro_stage_seconds histogram" in body, "histogram family missing"
    counts: dict[str, float] = {}
    inf_buckets: dict[str, float] = {}
    for line in body.splitlines():
        if line.startswith("repro_stage_seconds_count{"):
            stage = line.split('stage="', 1)[1].split('"', 1)[0]
            counts[stage] = float(line.rsplit(" ", 1)[1])
        elif line.startswith("repro_stage_seconds_bucket{") and 'le="+Inf"' in line:
            stage = line.split('stage="', 1)[1].split('"', 1)[0]
            inf_buckets[stage] = float(line.rsplit(" ", 1)[1])
    assert counts, "no repro_stage_seconds_count samples"
    for stage, count in counts.items():
        assert inf_buckets.get(stage) == count, (
            f"{stage}: +Inf bucket {inf_buckets.get(stage)} != count {count}"
        )
    for stage in REQUIRED_STAGES:
        assert stage in counts, f"{stage} missing from /metrics"


def check_json_logs(stderr: str) -> int:
    """Every slow-chunk warning must be one parseable JSON object."""
    events = []
    for line in stderr.splitlines():
        if not line.startswith("{"):
            continue
        payload = json.loads(line)  # malformed JSON raises: that is the test
        assert {"ts", "level", "logger", "event"} <= set(payload), payload
        if "slow chunk" in payload["event"]:
            assert payload["level"] == "WARNING", payload
            assert payload["wall_seconds"] > 0.0, payload
            assert payload["threshold_seconds"] == 0.0, payload
            events.append(payload)
    assert events, f"no slow-chunk JSON log lines on stderr:\n{stderr[:2000]}"
    # The counted warning: the last line's running count covers them all.
    assert events[-1]["slow_chunks"] == len(events), events[-1]
    return len(events)


def check_trace_file(path: Path, shards: int) -> None:
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    complete = [event for event in events if event["ph"] == "X"]
    lanes = {
        event["tid"]: event["args"]["name"]
        for event in events
        if event["ph"] == "M"
    }
    assert complete, "trace has no complete events"
    for shard in range(shards):
        assert f"shard{shard}" in lanes.values(), (
            f"shard{shard} lane missing: {sorted(lanes.values())}"
        )
    stages = {event["name"] for event in complete}
    for stage in REQUIRED_STAGES:
        assert stage in stages, f"{stage} missing from the trace: {sorted(stages)}"

    # Nesting: within each lane, spans must form a proper tree — a span
    # overlapping its predecessor must be fully contained in it (the
    # sweep spans sit inside settle; siblings never interleave).
    epsilon = 1.0  # µs of float slack
    for tid in {event["tid"] for event in complete}:
        stack: list[float] = []
        for event in sorted(
            (e for e in complete if e["tid"] == tid),
            key=lambda e: (e["ts"], -e["dur"]),
        ):
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1] - epsilon:
                stack.pop()
            if stack:
                assert end <= stack[-1] + epsilon, (
                    f"lane {lanes.get(tid, tid)}: span {event['name']} "
                    f"[{start:.1f}, {end:.1f}] crosses its parent's end "
                    f"{stack[-1]:.1f}"
                )
            stack.append(end)


def main() -> int:
    workdir = Path(REPO_ROOT / ".obs-smoke")
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    try:
        return _run(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run(workdir: Path) -> int:
    queries_path = workdir / "queries.json"
    queries_path.write_text(json.dumps(queries()))
    trace_dir = workdir / "trace"
    shards = 2
    stream = make_stream()

    print(f"obs smoke: {TOTAL} objects, chunk={CHUNK_SIZE}, shards={shards}, "
          f"workdir={workdir}")

    server = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--listen", "127.0.0.1:0",
            "--metrics", "127.0.0.1:0",
            "--queries", str(queries_path),
            "--shards", str(shards),
            "--chunk-size", str(CHUNK_SIZE),
            "--trace-dir", str(trace_dir),
            "--slow-chunk", "0",
            "--log-json",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=run_env(),
    )
    try:
        port, metrics_port = parse_listening_line(read_listening_line(server))
        assert metrics_port is not None, "metrics endpoint missing"

        with ServerClient("127.0.0.1", port, timeout=TIMEOUT) as client:
            ack = client.ingest(stream)
            assert ack["accepted"] == TOTAL, ack
            chunks = ack["chunks_dispatched"]
            assert chunks == TOTAL // CHUNK_SIZE, ack
            stats = client.stats()
        check_stats_frame(stats, chunks)
        print(f"  stats frame: stages section ok "
              f"({len(stats['stages'])} stages, {chunks} chunks)")

        status, body = http_get("127.0.0.1", metrics_port, "/metrics",
                                timeout=TIMEOUT)
        assert status == 200, (status, body[:200])
        check_metrics(body)
        print("  /metrics: repro_stage_seconds histograms consistent")

        _, err = terminate(server)
        slow_events = check_json_logs(err)
        print(f"  SIGTERM -> drained; {slow_events} slow-chunk JSON log lines")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()

    trace_path = trace_dir / "trace.json"
    assert trace_path.exists(), f"{trace_path} was not written on drain"
    check_trace_file(trace_path, shards)
    print(f"  trace: {trace_path.stat().st_size} bytes, lanes + nesting ok")

    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
