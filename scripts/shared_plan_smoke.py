"""CI smoke: the q64 shared-work execution plan changes no answer.

Replays one keyword-tagged stream through a 64-query grid (the
``group_aligned`` variant of :func:`repro.service.make_query_grid`, so the
grid contains both window-sharing and exact-duplicate detector-sharing
groups) four ways:

* ``serial`` / 1 shard with the shared plan **off** — the per-query
  predicate-scan reference;
* ``serial`` / 1 shard with the shared plan **on**;
* ``process`` / 2 shards with the shared plan on (worker processes build
  and run the plan on their side of the pickle boundary);
* ``serial`` shared with a mid-stream checkpoint, a simulated crash, and a
  cross-plan restore (``shared_plan=False``) that replays the tail — the
  plan must also be invisible across the durability boundary.

Every variant must report bit-identical final results, top-k lists and
routed-object counts.  Exercised as a standalone script (``make
smoke-shared``) because the process-executor leg depends on worker process
spawning, which only breaks outside the unit-test process.

Usage::

    PYTHONPATH=src python scripts/shared_plan_smoke.py [--objects N]
"""

from __future__ import annotations

import argparse
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.service import SurgeService, make_query_grid
from repro.streams.objects import SpatialObject
from repro.streams.sources import iter_chunks

VOCABULARY = ("traffic", "food", "weather", "sports", "news", "music", "work", "travel")
CHUNK_SIZE = 256
N_QUERIES = 64


def make_stream(n_objects: int, seed: int = 20180416) -> list[SpatialObject]:
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, 8.0),
            y=rng.uniform(0.0, 8.0),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
            attributes={"keywords": (rng.choice(VOCABULARY),)},
        )
        for index in range(n_objects)
    ]


def make_specs() -> list:
    return make_query_grid(
        N_QUERIES,
        base_window=120.0,
        algorithm="ccs",
        backend="python",
        keywords=VOCABULARY,
        group_aligned=True,
    )


def fingerprint(service: SurgeService) -> dict:
    """Bitwise observable state: finals, top-k and routed counts per query."""

    def key(result):
        if result is None:
            return None
        return (
            result.score,
            result.region.as_tuple(),
            result.point.as_tuple(),
            result.fc,
            result.fp,
        )

    return {
        "finals": {qid: key(r) for qid, r in service.results().items()},
        "top_k": {
            qid: tuple(key(r) for r in results)
            for qid, results in service.top_k().items()
        },
        "routed": {
            qid: stats.objects_routed
            for qid, stats in service.stats().per_query.items()
        },
    }


def replay(stream, *, executor: str, shards: int, shared_plan: bool):
    started = time.perf_counter()
    with SurgeService(
        make_specs(), shards=shards, executor=executor, shared_plan=shared_plan
    ) as service:
        for _ in service.run(stream, CHUNK_SIZE):
            pass
        wall = time.perf_counter() - started
        return fingerprint(service), wall


def replay_with_crash(stream, workdir: Path):
    """Shared-plan service, checkpoint mid-stream, cross-plan resume."""
    checkpoint_dir = workdir / "ckpt"
    doomed = SurgeService(make_specs(), shared_plan=True, checkpoint_dir=checkpoint_dir)
    chunks = iter(iter_chunks(stream, CHUNK_SIZE))
    crash_after = max(1, len(stream) // (2 * CHUNK_SIZE))
    with doomed:
        for _ in range(crash_after):
            doomed.push_many(next(chunks))
        doomed.checkpoint()
    del doomed  # the crash: all in-memory state gone

    restored = SurgeService.restore(checkpoint_dir, shared_plan=False)
    assert restored.shared_plan is False
    with restored:
        for chunk in iter_chunks(stream, CHUNK_SIZE, start_offset=restored.chunk_offset):
            restored.push_many(chunk)
        return fingerprint(restored)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=2048)
    args = parser.parse_args()

    stream = make_stream(args.objects)
    print(
        f"shared-plan smoke: q{N_QUERIES} group-aligned grid, "
        f"{len(stream)} objects, chunk {CHUNK_SIZE}",
        flush=True,
    )

    reference, wall_unshared = replay(
        stream, executor="serial", shards=1, shared_plan=False
    )
    print(f"  serial/unshared reference: {wall_unshared:6.2f}s", flush=True)

    failures = []
    variants = [
        ("serial/1-shard/shared", dict(executor="serial", shards=1, shared_plan=True)),
        ("process/2-shard/shared", dict(executor="process", shards=2, shared_plan=True)),
    ]
    for label, kwargs in variants:
        got, wall = replay(stream, **kwargs)
        status = "ok" if got == reference else "DIVERGED"
        print(f"  {label}: {wall:6.2f}s  {status}", flush=True)
        if got != reference:
            failures.append(label)

    workdir = Path(tempfile.mkdtemp(prefix="shared-plan-smoke-"))
    try:
        got = replay_with_crash(stream, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    status = "ok" if got == reference else "DIVERGED"
    print(f"  shared checkpoint -> unshared resume: {status}", flush=True)
    if got != reference:
        failures.append("cross-plan resume")

    if failures:
        print(f"FAILED: {', '.join(failures)} diverged from the unshared reference")
        return 1
    print("shared-plan smoke passed: all variants bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
