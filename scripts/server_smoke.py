"""End-to-end smoke for the network tier: ``repro serve --listen``.

Drives a real server **subprocess** through the full deployment story and
fails loudly if any step breaks:

1. start ``repro serve --listen 127.0.0.1:0 --metrics 127.0.0.1:0`` with a
   queries file, a checkpoint dir, and the disorder-tolerant tier on;
2. over the wire: register one extra query (the full ``QuerySpec`` as
   JSON), ingest the first half of a seeded stream, subscribe on a second
   connection and receive pushed result frames, and ``GET /metrics``;
3. SIGTERM the server mid-stream: it must exit 0, report ``drained:`` on
   stderr, and leave a final checkpoint (taken *without* flushing the
   reorder buffer);
4. restart with ``--resume`` and **no** ``--listen`` — the endpoint
   recorded in the checkpoint manifest is re-served — then ingest the
   second half, flush, and fetch final results;
5. compare those results **bit-identically** against an in-process
   reference that fed both halves into one uninterrupted service: the
   SIGTERM must be invisible in the final scores (exactly-once ingest
   across the restart).

Every subprocess interaction has a hard deadline (default 120 s; override
with ``SMOKE_TIMEOUT``): a hung server is a failure, not a hung CI job.

Usage::

    python scripts/server_smoke.py
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

from repro.server.client import ServerClient, http_get
from repro.server.protocol import encode_result
from repro.service import QuerySpec, SurgeService
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject

TIMEOUT = float(os.environ.get("SMOKE_TIMEOUT", "120"))
CHUNK_SIZE = 16
MAX_LATENESS = 2.0
TOTAL = 240
SEED = 1337


def make_stream() -> list[SpatialObject]:
    rng = random.Random(SEED)
    keywords = ("storm", "festival")
    return [
        SpatialObject(
            x=rng.uniform(0.0, 4.0),
            y=rng.uniform(0.0, 4.0),
            timestamp=float(index),
            weight=rng.uniform(0.5, 5.0),
            object_id=index,
            attributes={"keywords": (keywords[index % 2],)},
        )
        for index in range(TOTAL)
    ]


def base_queries() -> list[dict]:
    return [
        {"id": "storms", "keyword": "storm", "rect": [1.0, 1.0], "window": 40,
         "backend": "python"},
        {"id": "city-wide", "rect": [1.5, 1.5], "window": 30,
         "backend": "python"},
    ]


def extra_spec() -> QuerySpec:
    return QuerySpec.from_dict(
        {"id": "wire-extra", "keyword": "festival", "rect": [1.2, 1.2],
         "window": 35, "backend": "python", "priority": 2}
    )


def serve_command(*args: str) -> list[str]:
    return [sys.executable, "-u", "-m", "repro.cli", "serve", *args]


def run_env() -> dict:
    return dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")


def parse_listening_line(line: str) -> tuple[int, int | None]:
    """``listening on H:P (metrics http://H:MP/metrics)`` -> (P, MP)."""
    if not line.startswith("listening on "):
        raise AssertionError(f"unexpected listening line: {line!r}")
    endpoint = line[len("listening on "):].split(" ", 1)[0]
    port = int(endpoint.rsplit(":", 1)[1])
    metrics_port = None
    if "(metrics http://" in line:
        metrics_url = line.split("(metrics http://", 1)[1].rstrip(")\n")
        metrics_port = int(metrics_url.split("/", 1)[0].rsplit(":", 1)[1])
    return port, metrics_port


def read_listening_line(proc: subprocess.Popen) -> str:
    assert proc.stdout is not None
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before listening (rc={proc.poll()})"
            )
        if line.startswith("listening on "):
            return line
    raise AssertionError("server did not print the listening line in time")


def terminate(proc: subprocess.Popen) -> tuple[str, str]:
    """SIGTERM + graceful-exit check; returns (stdout, stderr)."""
    proc.send_signal(signal.SIGTERM)
    try:
        out, err = proc.communicate(timeout=TIMEOUT)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("server ignored SIGTERM (killed)")
    if proc.returncode != 0:
        raise AssertionError(
            f"server exited {proc.returncode} on SIGTERM\n{err}"
        )
    if "drained:" not in err:
        raise AssertionError(f"no drain report on stderr:\n{err}")
    return out, err


def reference_results(arrivals: list[SpatialObject]) -> dict:
    """One uninterrupted in-process run over the full arrival sequence."""
    specs = [QuerySpec.from_dict(record) for record in base_queries()]
    specs.append(extra_spec())
    with SurgeService(specs, max_lateness=MAX_LATENESS) as service:
        for _ in service.feed(arrivals, CHUNK_SIZE):
            pass
        for _ in service.flush_pending(CHUNK_SIZE):
            pass
        return {
            query_id: encode_result(result)
            for query_id, result in service.results().items()
        }


def main() -> int:
    workdir = Path(REPO_ROOT / ".server-smoke")
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    try:
        return _run(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run(workdir: Path) -> int:
    queries_path = workdir / "queries.json"
    queries_path.write_text(json.dumps(base_queries()))
    checkpoint_dir = workdir / "ckpt"

    clean = make_stream()
    injector = FaultInjector(
        clean, seed=SEED, disorder_fraction=0.15, max_disorder=MAX_LATENESS
    )
    arrivals = injector.materialize()
    half = len(arrivals) // 2
    expected = reference_results(arrivals)

    print(f"server smoke: {len(arrivals)} arrivals, split at {half}, "
          f"chunk={CHUNK_SIZE}, workdir={workdir}")

    # ------------------------------------------------------------------
    # Phase 1: serve, register, ingest h1, subscribe, scrape, SIGTERM.
    # ------------------------------------------------------------------
    server = subprocess.Popen(
        serve_command(
            "--listen", "127.0.0.1:0",
            "--metrics", "127.0.0.1:0",
            "--queries", str(queries_path),
            "--checkpoint-dir", str(checkpoint_dir),
            "--chunk-size", str(CHUNK_SIZE),
            "--max-lateness", str(MAX_LATENESS),
        ),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=run_env(),
    )
    try:
        port, metrics_port = parse_listening_line(read_listening_line(server))
        assert metrics_port is not None, "metrics endpoint missing"

        with ServerClient("127.0.0.1", port, timeout=TIMEOUT) as subscriber:
            subscriber.subscribe(maxsize=4096, queries=["wire-extra"],
                                 name="smoke-subscriber")
            with ServerClient("127.0.0.1", port, timeout=TIMEOUT) as admin:
                ack = admin.register(extra_spec())
                assert ack["queries"] == 3, ack
                ack = admin.ingest(arrivals[:half])
                assert ack["accepted"] == half, ack
                assert ack["chunks_dispatched"] > 0, ack
            frame = subscriber.recv_result()
            assert frame["query_id"] == "wire-extra", frame
        print(f"  phase 1: ingested {half}, subscriber saw chunk "
              f"{frame['chunk_index']}")

        status, body = http_get("127.0.0.1", metrics_port, "/metrics",
                                timeout=TIMEOUT)
        assert status == 200, (status, body[:200])
        for needle in ("repro_service_objects_pushed_total",
                       "repro_overload_degraded",
                       'repro_query_objects_routed_total{query="wire-extra"}'):
            assert needle in body, f"{needle} missing from /metrics"
        print(f"  phase 1: /metrics ok ({len(body.splitlines())} lines)")

        _, err = terminate(server)
        assert "final checkpoint" in err, err
        print("  phase 1: SIGTERM -> drained with final checkpoint")
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate()

    # ------------------------------------------------------------------
    # Phase 2: --resume re-serves the recorded endpoint; ingest the rest.
    # ------------------------------------------------------------------
    resumed = subprocess.Popen(
        serve_command(
            "--resume",
            "--checkpoint-dir", str(checkpoint_dir),
            "--chunk-size", str(CHUNK_SIZE),
        ),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=run_env(),
    )
    try:
        resumed_port, _ = parse_listening_line(read_listening_line(resumed))
        assert resumed_port == port, (
            f"resume re-served {resumed_port}, checkpoint recorded {port}"
        )
        with ServerClient("127.0.0.1", resumed_port, timeout=TIMEOUT) as admin:
            admin.ingest(arrivals[half:])
            admin.flush()
            wire_results = admin.results()
        if wire_results != expected:
            raise AssertionError(
                "results after SIGTERM + --resume diverge from the "
                f"uninterrupted in-process reference:\n"
                f"  wire: {wire_results}\n  reference: {expected}"
            )
        print(f"  phase 2: resumed on :{resumed_port}, final results "
              f"bit-identical across the restart ({len(wire_results)} queries)")
        terminate(resumed)
    finally:
        if resumed.poll() is None:
            resumed.kill()
            resumed.communicate()

    print("server smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
