"""End-to-end smoke for the distributed shard tier: ``serve --executor remote``.

Drives the full deployment story with **external** worker processes and a
staged worker death, failing loudly if any step breaks:

1. start ``repro serve --executor remote --workers 3 --shards 4`` with a
   queries file and a checkpoint dir; read the ``workers on HOST:PORT``
   announcement from stdout;
2. dial in three external ``repro worker --connect HOST:PORT`` processes
   (the elastic-membership path — nothing is spawned by the coordinator);
   the server only prints ``listening on ...`` once the fleet has joined;
3. over the wire: ingest the first half of a seeded stream, then
   **SIGKILL one worker** and ingest the second half — the coordinator
   must fail the dead worker's shards over to the survivors and keep
   serving without an error surfacing to the client;
4. fetch final results and compare them **bit-identically** against an
   uninterrupted in-process serial run over the same stream: the worker
   death must be invisible in the scores;
5. SIGTERM the server: it must exit 0 and print the ``remote:`` counter
   summary on stderr with ``workers_joined`` ≥ 3, ``workers_lost`` ≥ 1 and
   ``shards_failed_over`` ≥ 1 — the evidence the kill really exercised
   failover — and the surviving workers must exit 0 on the coordinator's
   ``bye``.

Every subprocess interaction has a hard deadline (default 120 s; override
with ``SMOKE_TIMEOUT``): a hung coordinator or worker is a failure, not a
hung CI job.

Usage::

    python scripts/remote_smoke.py
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

from repro.server.client import ServerClient
from repro.server.protocol import encode_result
from repro.service import QuerySpec, SurgeService

from repro.streams.objects import SpatialObject

TIMEOUT = float(os.environ.get("SMOKE_TIMEOUT", "120"))
CHUNK_SIZE = 16
TOTAL = 320
SEED = 20180416
WORKERS = 3
SHARDS = 4  # > WORKERS: every worker hosts at least one shard


def make_stream() -> list[SpatialObject]:
    rng = random.Random(SEED)
    keywords = ("storm", "festival", "market")
    return [
        SpatialObject(
            x=rng.uniform(0.0, 4.0),
            y=rng.uniform(0.0, 4.0),
            timestamp=float(index),
            weight=rng.uniform(0.5, 5.0),
            object_id=index,
            attributes={"keywords": (keywords[index % 3],)},
        )
        for index in range(TOTAL)
    ]


def queries() -> list[dict]:
    return [
        {"id": "storms", "keyword": "storm", "rect": [1.0, 1.0], "window": 40,
         "backend": "python"},
        {"id": "festivals", "keyword": "festival", "rect": [1.2, 1.2],
         "window": 35, "backend": "python"},
        {"id": "markets", "keyword": "market", "rect": [0.8, 0.8], "window": 50,
         "backend": "python"},
        {"id": "city-wide", "rect": [1.5, 1.5], "window": 30,
         "backend": "python"},
    ]


def run_env() -> dict:
    return dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")


def read_announced_line(proc: subprocess.Popen, prefix: str) -> str:
    """Read stdout lines until one starts with ``prefix`` (hard deadline)."""
    assert proc.stdout is not None
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited before printing {prefix!r} (rc={proc.poll()})"
            )
        if line.startswith(prefix):
            return line.strip()
    raise AssertionError(f"server did not print {prefix!r} in time")


def parse_endpoint(line: str, prefix: str) -> tuple[str, int]:
    endpoint = line[len(prefix):].split(" ", 1)[0]
    host, port = endpoint.rsplit(":", 1)
    return host, int(port)


def parse_remote_summary(stderr: str) -> dict:
    """The ``remote: k=v ...`` stderr line -> {k: float}."""
    # The executor's warning log lines share the "remote: " prefix; the
    # counter summary is the one that leads with workers_joined=.
    for line in stderr.splitlines():
        if line.startswith("remote: workers_joined="):
            return {
                key: float(value)
                for key, value in (
                    pair.split("=", 1) for pair in line[len("remote: "):].split()
                )
            }
    raise AssertionError(f"no 'remote:' counter summary on stderr:\n{stderr}")


def reference_results(stream: list[SpatialObject]) -> dict:
    """One uninterrupted in-process serial run over the full stream."""
    specs = [QuerySpec.from_dict(record) for record in queries()]
    with SurgeService(specs, shards=SHARDS) as service:
        for _ in service.run(stream, CHUNK_SIZE):
            pass
        return {
            query_id: encode_result(result)
            for query_id, result in service.results().items()
        }


def main() -> int:
    workdir = Path(REPO_ROOT / ".remote-smoke")
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    try:
        return _run(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run(workdir: Path) -> int:
    queries_path = workdir / "queries.json"
    queries_path.write_text(json.dumps(queries()))

    stream = make_stream()
    half = len(stream) // 2
    expected = reference_results(stream)
    print(f"remote smoke: {len(stream)} objects, split at {half}, "
          f"{WORKERS} external workers, {SHARDS} shards, workdir={workdir}")

    server = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--executor", "remote",
         "--workers", str(WORKERS),
         "--shards", str(SHARDS),
         "--listen", "127.0.0.1:0",
         "--queries", str(queries_path),
         "--checkpoint-dir", str(workdir / "ckpt"),
         "--chunk-size", str(CHUNK_SIZE)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=run_env(),
    )
    workers: list[subprocess.Popen] = []
    try:
        # The coordinator announces its worker endpoint first, then blocks
        # until the fleet joins — so the workers dial in *between* the two
        # stdout lines.
        fleet_host, fleet_port = parse_endpoint(
            read_announced_line(server, "workers on "), "workers on "
        )
        for index in range(WORKERS):
            workers.append(subprocess.Popen(
                [sys.executable, "-u", "-m", "repro.cli", "worker",
                 "--connect", f"{fleet_host}:{fleet_port}",
                 "--name", f"ext-{index}",
                 "--connect-retries", "30"],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
                env=run_env(),
            ))
        _, port = parse_endpoint(
            read_announced_line(server, "listening on "), "listening on "
        )
        print(f"  fleet of {WORKERS} joined on {fleet_host}:{fleet_port}, "
              f"serving on :{port}")

        with ServerClient("127.0.0.1", port, timeout=TIMEOUT) as client:
            ack = client.ingest(stream[:half])
            assert ack["accepted"] == half, ack

            victim = workers[0]
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=TIMEOUT)
            print(f"  killed worker ext-0 (pid {victim.pid}) after "
                  f"{half} objects")

            ack = client.ingest(stream[half:])
            assert ack["accepted"] == len(stream) - half, ack
            client.flush()
            wire_results = client.results()

        if wire_results != expected:
            raise AssertionError(
                "results after the worker kill diverge from the "
                f"uninterrupted serial reference:\n"
                f"  wire: {wire_results}\n  reference: {expected}"
            )
        print(f"  final results bit-identical across the failover "
              f"({len(wire_results)} queries)")

        server.send_signal(signal.SIGTERM)
        try:
            _, err = server.communicate(timeout=TIMEOUT)
        except subprocess.TimeoutExpired:
            server.kill()
            raise AssertionError("server ignored SIGTERM (killed)")
        if server.returncode != 0:
            raise AssertionError(
                f"server exited {server.returncode} on SIGTERM\n{err}"
            )
        summary = parse_remote_summary(err)
        assert summary["workers_joined"] >= WORKERS, summary
        assert summary["workers_lost"] >= 1, summary
        assert summary["shards_failed_over"] >= 1, summary
        print("  SIGTERM -> drained; remote counters: "
              + ", ".join(f"{k}={v:g}" for k, v in sorted(summary.items())))

        # The coordinator's bye must let the survivors exit cleanly.
        for index, worker in enumerate(workers[1:], start=1):
            try:
                worker.communicate(timeout=TIMEOUT)
            except subprocess.TimeoutExpired:
                worker.kill()
                raise AssertionError(f"worker ext-{index} ignored bye (killed)")
            if worker.returncode != 0:
                raise AssertionError(
                    f"worker ext-{index} exited {worker.returncode}"
                )
        print(f"  {len(workers) - 1} surviving workers exited 0 on bye")
    finally:
        for proc in [server, *workers]:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    print("remote smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
