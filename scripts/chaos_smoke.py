"""Chaos smoke: SIGKILL a checkpointing ``repro serve`` running under 10%
disorder plus injected poison records, resume it with ``--resume``, and
assert (a) the resumed run reproduces the uninterrupted run bit-for-bit —
including the IngestStats counters — and (b) the tolerant run over the
faulty feed matches a strict run over the pre-sorted clean feed.

This is the robustness contract end to end, through real processes:

* the faulty feed is produced by the shared
  :class:`~repro.streams.faults.FaultInjector` (bounded disorder within the
  ``--max-lateness`` bound, CSV-serialisable poison records), so "10%
  disorder" here means exactly what it means in the unit tests and the
  robustness benchmark;
* the reorder buffer's held-back events are checkpoint state — an
  uncatchable SIGKILL between checkpoints is exactly the case where a
  resume that re-read the raw feed into an *empty* buffer would double- or
  under-deliver around the watermark;
* the ``ingest:`` stdout line (reordered / late_dropped / duplicates_seen /
  quarantined / subscriber_errors) is part of the compared block, so the
  counters must come out of the crash exactly-once too.

A second leg repeats the exercise **under overload**: a flash-crowd feed
drives a prioritised service into counted degraded mode (shedding
low-priority routes, force-releasing the in-flight budget, compacting on a
cadence), the victim is SIGKILLed *while shedding*, and the resumed run
must reproduce the uninterrupted run's ``overload:`` counter line —
entered/exited transitions, chunks shed, compactions, force releases — as
well as its final results, exactly-once.

CI runs it on both dependency legs (``make smoke-chaos``); everything here
is stdlib-only.

If the victim finishes before the kill lands (very fast machine), the
resume is a no-op replay and the parity assertions still run — the smoke
degrades to a resume-after-completion check rather than failing spuriously.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

from repro.datasets.io import write_csv_stream  # noqa: E402
from repro.state.recovery import manifest_path, read_manifest  # noqa: E402
from repro.streams.faults import FaultInjector  # noqa: E402
from repro.streams.objects import SpatialObject  # noqa: E402

TOTAL_OBJECTS = 20_000
CHUNK_SIZE = 200
MAX_LATENESS = 3.0
VOCABULARY = ("concert", "parade", "zika", "festival")
SEED = 20180416
TIMEOUT = 600.0


def make_stream_files(clean_path: Path, faulty_path: Path) -> FaultInjector:
    rng = random.Random(SEED)
    t = 0.0
    objects = []
    for index in range(TOTAL_OBJECTS):
        t += rng.uniform(0.05, 0.35)
        keywords = (rng.choice(VOCABULARY),) if rng.random() < 0.8 else ()
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 8.0),
                object_id=index,
                attributes={"keywords": keywords} if keywords else {},
            )
        )
    injector = FaultInjector(
        objects,
        seed=SEED,
        disorder_fraction=0.10,
        max_disorder=MAX_LATENESS,
        poison_fraction=0.005,
        # Only kinds a CSV round-trip preserves (float('nan') / float('inf')
        # parse back; raw dicts and broken keyword payloads do not).
        poison_kinds=("nan_timestamp", "nan_x", "inf_weight"),
    )
    write_csv_stream(clean_path, injector.reference())
    write_csv_stream(faulty_path, injector.materialize())
    return injector


def make_queries_file(path: Path) -> None:
    path.write_text(
        json.dumps(
            [
                {"id": "concerts", "keyword": "concert", "rect": [1.0, 1.0],
                 "window": 30, "backend": "python"},
                {"id": "parades", "keyword": "parade", "rect": [1.2, 0.8],
                 "window": 20, "backend": "python"},
                {"id": "city-wide", "rect": [1.5, 1.5], "window": 25,
                 "algorithm": "gaps"},
                {"id": "top3", "keyword": "festival", "rect": [1.0, 1.0],
                 "window": 30, "k": 3, "algorithm": "kccs",
                 "backend": "python"},
            ]
        )
    )


def serve_args(stream: Path, *extra: str, chunk_size: int = CHUNK_SIZE) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        str(stream),
        "--chunk-size",
        str(chunk_size),
        "--shards",
        "2",
        *extra,
    ]


def final_results_block(stdout: str) -> list[str]:
    lines = stdout.splitlines()
    try:
        start = lines.index("final results:")
    except ValueError:
        raise AssertionError(
            f"no 'final results:' block in serve output:\n{stdout[-2000:]}"
        ) from None
    return lines[start:]


def disorder_leg(workdir: Path, env: dict) -> None:
    clean = workdir / "clean.csv"
    faulty = workdir / "faulty.csv"
    queries = workdir / "queries.json"
    checkpoint_dir = workdir / "ckpt"
    quarantine_dir = workdir / "quarantine"
    injector = make_stream_files(clean, faulty)
    make_queries_file(queries)
    print(
        f"smoke: faulty feed has {injector.disordered} disordered and "
        f"{injector.poisoned} poison records",
        flush=True,
    )
    tolerant = (
        "--max-lateness", str(MAX_LATENESS),
        "--quarantine-dir", str(quarantine_dir),
    )

    print("smoke: strict run over the pre-sorted clean feed ...", flush=True)
    strict = subprocess.run(
        serve_args(clean, "--queries", str(queries)),
        capture_output=True,
        text=True,
        env=env,
        timeout=TIMEOUT,
    )
    assert strict.returncode == 0, strict.stderr
    strict_block = final_results_block(strict.stdout)

    print("smoke: uninterrupted tolerant run over the faulty feed ...", flush=True)
    reference = subprocess.run(
        serve_args(faulty, "--queries", str(queries), *tolerant),
        capture_output=True,
        text=True,
        env=env,
        timeout=TIMEOUT,
    )
    assert reference.returncode == 0, reference.stderr
    expected = final_results_block(reference.stdout)

    # Bit-identity through real processes: the tolerant run's results
    # (everything except its extra ingest: line) must equal the strict
    # run's over the pre-sorted feed.
    without_ingest = [l for l in expected if not l.startswith("ingest:")]
    assert without_ingest == strict_block, (
        "tolerant run over the faulty feed diverges from the strict run "
        "over the pre-sorted feed\n--- strict/clean ---\n"
        + "\n".join(strict_block)
        + "\n--- tolerant/faulty ---\n"
        + "\n".join(without_ingest)
    )
    ingest_lines = [l for l in expected if l.startswith("ingest:")]
    assert len(ingest_lines) == 1, expected
    assert f"quarantined={injector.poisoned}" in ingest_lines[0], ingest_lines[0]
    assert "late_dropped=0" in ingest_lines[0], ingest_lines[0]

    print("smoke: starting checkpointing victim under chaos ...", flush=True)
    shutil.rmtree(quarantine_dir, ignore_errors=True)
    victim = subprocess.Popen(
        serve_args(
            faulty,
            "--queries",
            str(queries),
            *tolerant,
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--checkpoint-every",
            "2",
        ),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )
    deadline = time.monotonic() + TIMEOUT
    while (
        not manifest_path(checkpoint_dir).exists()
        and victim.poll() is None
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    if victim.poll() is None:
        assert manifest_path(checkpoint_dir).exists(), (
            "victim ran past the deadline without writing a checkpoint"
        )
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        print(
            f"smoke: SIGKILLed victim after its first checkpoint "
            f"(returncode {victim.returncode})",
            flush=True,
        )
        assert victim.returncode == -signal.SIGKILL
    else:
        # Very fast machine: the victim finished before the kill landed.
        # Resume degenerates to a no-op replay; parity still holds.
        print(
            "smoke: victim finished before the kill; checking "
            "resume-after-completion parity instead",
            flush=True,
        )
        assert victim.returncode == 0

    print("smoke: resuming from the checkpoint ...", flush=True)
    resumed = subprocess.run(
        serve_args(
            faulty,
            "--resume",
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--quarantine-dir",
            str(quarantine_dir),
        ),
        capture_output=True,
        text=True,
        env=env,
        timeout=TIMEOUT,
    )
    assert resumed.returncode == 0, resumed.stderr
    got = final_results_block(resumed.stdout)
    assert got == expected, (
        "resumed final results (incl. ingest counters) diverge from the "
        "uninterrupted run\n--- uninterrupted ---\n"
        + "\n".join(expected)
        + "\n--- resumed ---\n"
        + "\n".join(got)
    )
    print(
        "smoke: resume reproduced the uninterrupted results and ingest "
        "counters — OK"
    )


# ----------------------------------------------------------------------
# Leg 2: SIGKILL while shedding — overload counters are exactly-once too
# ----------------------------------------------------------------------

OVERLOAD_OBJECTS = 8_000
OVERLOAD_CHUNK = 50
#: Kill once the victim has checkpointed this deep — inside the flash-crowd
#: window, so the service is degraded and actively shedding when it dies.
KILL_AFTER_CHUNKS = 48


def make_overload_stream(faulty_path: Path) -> FaultInjector:
    rng = random.Random(SEED + 1)
    t = 0.0
    objects = []
    for index in range(OVERLOAD_OBJECTS):
        t += rng.uniform(0.05, 0.35)
        keywords = (rng.choice(VOCABULARY),) if rng.random() < 0.8 else ()
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, 6.0),
                y=rng.uniform(0.0, 6.0),
                timestamp=t,
                weight=rng.uniform(0.5, 8.0),
                object_id=index,
                attributes={"keywords": keywords} if keywords else {},
            )
        )
    # A long flash-crowd ramp: arrival gaps compressed 8x across the middle
    # 70% of the stream, so the reorder buffer's backlog crosses the high
    # watermark early and the service spends most of the run degraded.
    injector = FaultInjector(
        objects,
        seed=SEED + 1,
        disorder_fraction=0.05,
        max_disorder=MAX_LATENESS,
        flash_crowd_factor=8.0,
        flash_crowd_span=(0.15, 0.85),
    )
    write_csv_stream(faulty_path, injector.materialize())
    return injector


def make_priority_queries_file(path: Path) -> None:
    # Two priority-5 routes that must survive shedding untouched, and one
    # priority-0 route class (both parade queries share keyword + window,
    # so the whole class is sheddable) that degraded mode drops.
    path.write_text(
        json.dumps(
            [
                {"id": "concerts", "keyword": "concert", "rect": [1.0, 1.0],
                 "window": 30, "backend": "python", "priority": 5},
                {"id": "top3", "keyword": "festival", "rect": [1.0, 1.0],
                 "window": 30, "k": 3, "algorithm": "kccs",
                 "backend": "python", "priority": 5},
                {"id": "parades-a", "keyword": "parade", "rect": [1.2, 0.8],
                 "window": 20, "backend": "python"},
                {"id": "parades-b", "keyword": "parade", "rect": [0.8, 1.2],
                 "window": 20, "backend": "python"},
            ]
        )
    )


def overload_counter(block: list[str], name: str) -> int:
    lines = [l for l in block if l.startswith("overload:")]
    assert len(lines) == 1, block
    for token in lines[0].split():
        if token.startswith(f"{name}="):
            return int(token.split("=", 1)[1])
    raise AssertionError(f"no {name}= counter in {lines[0]!r}")


def overload_leg(workdir: Path, env: dict) -> None:
    faulty = workdir / "overload.csv"
    queries = workdir / "overload-queries.json"
    checkpoint_dir = workdir / "overload-ckpt"
    injector = make_overload_stream(faulty)
    make_priority_queries_file(queries)
    print(
        f"smoke[overload]: flash-crowd feed has {injector.disordered} "
        f"disordered records across an 8x ramp",
        flush=True,
    )
    overload_flags = (
        "--max-lateness", str(MAX_LATENESS),
        "--max-inflight-chunks", "2",
        "--overload-high", "1.0",
        "--overload-low", "0.25",
        "--overload-policy", "shed",
        "--shed-below-priority", "5",
        "--compact-every", "16",
    )

    print("smoke[overload]: uninterrupted degraded run ...", flush=True)
    reference = subprocess.run(
        serve_args(
            faulty, "--queries", str(queries), *overload_flags,
            chunk_size=OVERLOAD_CHUNK,
        ),
        capture_output=True,
        text=True,
        env=env,
        timeout=TIMEOUT,
    )
    assert reference.returncode == 0, reference.stderr
    expected = final_results_block(reference.stdout)
    # The leg is only meaningful if the run actually degraded: entered
    # degraded mode, shed the low-priority route, force-released the
    # in-flight budget, and ran compaction passes.
    assert overload_counter(expected, "entered") >= 1, expected
    assert overload_counter(expected, "chunks_shed") > 0, expected
    assert overload_counter(expected, "force_released") > 0, expected
    assert overload_counter(expected, "compactions") >= 1, expected

    print(
        "smoke[overload]: starting checkpointing victim, killing while "
        "shedding ...",
        flush=True,
    )
    victim = subprocess.Popen(
        serve_args(
            faulty,
            "--queries",
            str(queries),
            *overload_flags,
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--checkpoint-every",
            "2",
            chunk_size=OVERLOAD_CHUNK,
        ),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
    )

    def checkpointed_chunks() -> int:
        if not manifest_path(checkpoint_dir).exists():
            return 0
        try:
            return read_manifest(checkpoint_dir).chunk_offset
        except (OSError, ValueError, KeyError):
            return 0  # mid-write; poll again

    deadline = time.monotonic() + TIMEOUT
    while (
        checkpointed_chunks() < KILL_AFTER_CHUNKS
        and victim.poll() is None
        and time.monotonic() < deadline
    ):
        time.sleep(0.02)
    if victim.poll() is None:
        durable = checkpointed_chunks()
        assert durable >= KILL_AFTER_CHUNKS, (
            "victim ran past the deadline without checkpointing "
            f"{KILL_AFTER_CHUNKS} chunks (got {durable})"
        )
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        print(
            f"smoke[overload]: SIGKILLed victim at >= {durable} durable "
            f"chunks, mid-flash-crowd (returncode {victim.returncode})",
            flush=True,
        )
        assert victim.returncode == -signal.SIGKILL
    else:
        print(
            "smoke[overload]: victim finished before the kill; checking "
            "resume-after-completion parity instead",
            flush=True,
        )
        assert victim.returncode == 0

    print("smoke[overload]: resuming from the checkpoint ...", flush=True)
    resumed = subprocess.run(
        serve_args(
            faulty,
            "--resume",
            "--checkpoint-dir",
            str(checkpoint_dir),
            chunk_size=OVERLOAD_CHUNK,
        ),
        capture_output=True,
        text=True,
        env=env,
        timeout=TIMEOUT,
    )
    assert resumed.returncode == 0, resumed.stderr
    got = final_results_block(resumed.stdout)
    assert got == expected, (
        "resumed final results (incl. overload counters) diverge from the "
        "uninterrupted degraded run\n--- uninterrupted ---\n"
        + "\n".join(expected)
        + "\n--- resumed ---\n"
        + "\n".join(got)
    )
    print(
        "smoke[overload]: resume reproduced the shed/compaction counters "
        "and final results — OK"
    )


def main() -> int:
    workdir = Path(REPO_ROOT / ".chaos-smoke")
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    env = dict(os.environ, PYTHONPATH=SRC)
    try:
        disorder_leg(workdir, env)
        overload_leg(workdir, env)
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
