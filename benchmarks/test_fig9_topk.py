"""Figure 9 — top-k bursty region detection.

Paper:

* Figures 9(a)-(c): per-object runtime of kCCS, kGAPS and kMGAPS as the
  window grows; kCCS does not scale to large windows, the grid-based
  extensions stay in the microsecond range.  The naive per-event top-k
  recomputation is ~100x slower than kCCS (only shown for US).
* Figures 9(d)-(f): runtime vs k ∈ {3, 5, 7, 9}; kCCS grows with k while
  kGAPS / kMGAPS are barely affected.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import PROFILES
from repro.evaluation.experiments import topk_runtime_vs_k, topk_runtime_vs_window
from repro.evaluation.tables import format_paper_expectation, format_series


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_fig9_topk_runtime_vs_window(benchmark, record, profile_key):
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        topk_runtime_vs_window,
        kwargs={
            "profile": profile,
            "n_objects": scaled(700),
            "k": 3,
            "algorithms": ("kccs", "kgaps", "kmgaps"),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Figure 9 (window sweep, {profile.name}, k=3): mean µs per object",
        "window_s",
        series,
    )
    text += "\n" + format_paper_expectation(
        "kCCS is orders of magnitude slower than kGAPS / kMGAPS and degrades "
        "with the window length; the grid-based extensions stay fast."
    )
    print("\n" + text)
    record(f"fig9_window_{profile.name.lower()}", text)

    mean = lambda name: sum(series[name].values()) / len(series[name])
    assert mean("kgaps") <= mean("kccs")
    assert mean("kmgaps") <= mean("kccs")
    assert mean("kgaps") <= mean("kmgaps") * 1.5


def test_fig9_topk_runtime_vs_k(benchmark, record):
    """Figures 9(d)-(f), collapsed to the Taxi profile at benchmark scale."""
    profile = PROFILES["taxi"]

    def sweep():
        return {
            name: topk_runtime_vs_k(
                profile,
                algorithm=name,
                n_objects=scaled(600) if name == "kccs" else scaled(2000),
                k_values=(3, 5, 7, 9),
            )
            for name in ("kccs", "kgaps", "kmgaps")
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_series(
        "Figure 9(d-f) (Taxi): mean µs per object vs k",
        "k",
        series,
    )
    text += "\n" + format_paper_expectation(
        "kCCS's per-object time increases with k; kGAPS and kMGAPS are barely affected."
    )
    print("\n" + text)
    record("fig9_k_sweep", text)

    kccs = series["kccs"]
    assert kccs[9] >= kccs[3] * 0.8  # grows (or at least does not shrink) with k
    for name in ("kgaps", "kmgaps"):
        values = list(series[name].values())
        assert max(values) <= 20.0 * max(min(values), 1e-9)
    mean = lambda name: sum(series[name].values()) / len(series[name])
    assert mean("kgaps") <= mean("kccs")


def test_fig9_naive_topk_much_slower_than_kccs(benchmark, record):
    """The paper's note that naive per-event top-k recomputation is ~100x kCCS.

    The naive strategy re-solves the k chained CSPOT problems from scratch
    with full-space sweeps on every event (no cells, no bounds, no memoised
    candidates); we compare it against kCCS on a small US-profile stream.
    The naive cost is measured on a sample of the events (it is uniform per
    event, so the sample mean is representative).
    """
    import time

    from repro.core.sweepline import LabeledRect, sweep_bursty_point
    from repro.datasets.workloads import default_query_for_profile
    from repro.evaluation.experiments import prepare_stream
    from repro.streams.windows import SlidingWindowPair
    from repro.topk.kccs import CellCSPOTTopK

    profile = PROFILES["us"]

    def naive_topk(state, query):
        """Greedy top-k by repeated full-space sweeps (no index at all)."""
        rects = [
            LabeledRect(o.x, o.y, o.x + query.rect_width, o.y + query.rect_height, o.weight, True)
            for o in state.current
        ] + [
            LabeledRect(o.x, o.y, o.x + query.rect_width, o.y + query.rect_height, o.weight, False)
            for o in state.past
        ]
        results = []
        for _ in range(query.k):
            if not rects:
                break
            outcome = sweep_bursty_point(
                rects, query.alpha, query.current_length, query.past_length
            )
            if outcome is None:
                break
            results.append(outcome)
            point = outcome.point
            rects = [
                r
                for r in rects
                if not (r.min_x <= point.x <= r.max_x and r.min_y <= point.y <= r.max_y)
            ]
        return results

    def run():
        stream = prepare_stream(profile, scaled(150), span_seconds=3600.0, seed=7)
        query = default_query_for_profile(profile, window_seconds=1200.0, k=3)

        kccs = CellCSPOTTopK(query)
        windows = SlidingWindowPair(query.window_length)
        kccs_time = 0.0
        naive_time = 0.0
        naive_samples = 0
        for index, obj in enumerate(stream):
            events = windows.observe(obj)
            started = time.perf_counter()
            for event in events:
                kccs.process(event)
            kccs_time += time.perf_counter() - started

            if index % 5 == 0:
                started = time.perf_counter()
                naive_topk(windows.state(), query)
                naive_time += time.perf_counter() - started
                naive_samples += 1
        kccs_micros = kccs_time / len(stream) * 1e6
        naive_micros = naive_time / max(naive_samples, 1) * 1e6
        return kccs_micros, naive_micros

    kccs_micros, naive_micros = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Figure 9(c) inset (US): naive top-k recomputation vs kCCS\n"
        f"  kCCS   mean µs/object = {kccs_micros:.1f}\n"
        f"  Naive  mean µs/object = {naive_micros:.1f}\n"
        f"  slowdown factor       = {naive_micros / max(kccs_micros, 1e-9):.1f}x"
    )
    text += "\n" + format_paper_expectation(
        "the naive solution is roughly two orders of magnitude slower than kCCS."
    )
    print("\n" + text)
    record("fig9_naive_vs_kccs", text)
    assert naive_micros > kccs_micros
