"""Multi-query service throughput benchmark: aggregate objects·queries/sec.

``bench_ingest.py`` tracks how fast ONE monitor drains a stream; this
benchmark tracks the multi-tenant axis — N registered queries (different
keywords, rectangle sizes, window lengths, built by
:func:`repro.service.make_query_grid`) multiplexed over one shared
keyword-tagged stream by :class:`repro.service.SurgeService`.  The recorded
unit is **object·query pairs per second**: a chunk of ``n`` objects against
``m`` live queries is ``n·m`` pairs of routing + detection work.

The grid is query counts {1, 8, 64} × the ``serial`` executor (the
single-process reference; shard count is irrelevant to it, it is recorded
at ``shards1``) and the ``process`` executor at shard counts {1, 2, 4}
(persistent single-worker pool per shard; chunks pickled to every shard
once, replies pickled back).  The ``thread`` executor is deliberately not
benchmarked: the pure-Python detector work is GIL-serialised, so its
numbers would only restate the serial ones with dispatch overhead added.

Since the shared-work execution plan landed (inverted keyword routing +
shared window groups + shared detector units, ``repro.service.shards``),
the ``serial`` and ``process`` cells measure the plan as shipped (shared,
the production default) and a ``serial_unshared`` column re-runs the serial
cells with ``shared_plan=False`` — the per-query predicate-scan baseline.
``speedups.shared_vs_unshared_q64`` is the headline ratio; every cell's
final per-query scores are cross-checked bit-identical against the serial
shared reference, so the speedup is certified to change no answer.

Interpreting the process numbers requires ``config.cpu_count``: process
sharding buys wall-clock throughput only when shards map onto real cores.
On a single-CPU host every process cell pays pickling + scheduling on top
of the same total work and lands *below* serial; the recorded trajectory is
still the regression yardstick for the dispatch overhead itself, and on an
M-core host the q64 cells scale toward ``min(shards, M)``×.

Regression guard
----------------
As with the other BENCH files: if a previous ``BENCH_service.json`` exists,
the script refuses to overwrite it when any (queries, executor, shards)
cell's pairs/sec regressed by more than ``REGRESSION_TOLERANCE`` (20%);
``--force`` overrides.  Runs on a host with a different ``cpu_count`` than
the recorded file skip the guard for process cells (the serial cells remain
guarded) — cross-machine process numbers are not comparable.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.evaluation.runner import run_service
from repro.service import make_query_grid
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
SCHEMA = "bench_service/v2"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20

TOTAL_OBJECTS = 4096
CHUNK_SIZE = 512
EXTENT = 8.0
BASE_RECT = (1.0, 1.0)
BASE_WINDOW = 600.0  # seconds; at 1 object/sec the window holds ~600 objects
ALPHA = 0.5
ALGORITHM = "ccs"
BACKEND = "python"
VOCABULARY = ("traffic", "food", "weather", "sports", "news", "music", "work", "travel")

QUERY_COUNTS = (1, 8, 64)
SHARD_COUNTS = (1, 2, 4)


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    """Uniform keyword-tagged stream, one object per second (stdlib only)."""
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, EXTENT),
            y=rng.uniform(0.0, EXTENT),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
            attributes={"keywords": (rng.choice(VOCABULARY),)},
        )
        for index in range(total)
    ]


def run_cell(
    stream: list[SpatialObject],
    n_queries: int,
    executor: str,
    shards: int,
    shared_plan: bool = True,
) -> dict:
    specs = make_query_grid(
        n_queries,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY,
    )
    outcome = run_service(
        specs,
        stream,
        shards=shards,
        executor=executor,
        shared_plan=shared_plan,
        chunk_size=CHUNK_SIZE,
    )
    scores = {
        query_id: (result.score if result is not None else None)
        for query_id, result in outcome.final_results.items()
    }
    return {
        "object_query_pairs_per_second": outcome.pairs_per_second,
        "wall_seconds": outcome.wall_seconds,
        "objects_total": outcome.objects_total,
        "object_query_pairs": outcome.object_query_pairs,
        "_final_scores": scores,  # stripped before writing; cross-checked below
    }


def run_benchmark(query_counts, shard_counts, total_objects: int) -> dict:
    stream = make_stream(total_objects)
    results: dict[str, dict] = {}
    for n_queries in query_counts:
        per_count: dict[str, dict] = {
            "serial": {},
            "serial_unshared": {},
            "process": {},
        }
        # (column, executor, shards, shared_plan): the serial shared cell
        # leads so every other cell — including the unshared baseline — is
        # cross-checked bit-identical against it.
        cells = [
            ("serial", "serial", 1, True),
            ("serial_unshared", "serial", 1, False),
        ] + [("process", "process", shards, True) for shards in shard_counts]
        reference_scores = None
        for column, executor, shards, shared_plan in cells:
            started = time.perf_counter()
            cell = run_cell(stream, n_queries, executor, shards, shared_plan)
            scores = cell.pop("_final_scores")
            # Every executor/shard/plan combination must answer every query
            # identically — neither sharding nor the shared-work plan may
            # ever change a result.
            if reference_scores is None:
                reference_scores = scores
            elif scores != reference_scores:
                raise AssertionError(
                    f"q{n_queries}/{column}/shards{shards}: final scores "
                    f"differ from the serial shared-plan reference"
                )
            per_count[column][f"shards{shards}"] = cell
            print(
                f"  q{n_queries:>3} {column:>15} shards={shards}  "
                f"{cell['object_query_pairs_per_second']:10,.0f} pairs/s  "
                f"(wall {cell['wall_seconds']:6.2f}s, total "
                f"{time.perf_counter() - started:6.2f}s)",
                flush=True,
            )
        results[f"q{n_queries}"] = per_count
    report = {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "total_objects": total_objects,
            "chunk_size": CHUNK_SIZE,
            "extent": EXTENT,
            "base_rect": list(BASE_RECT),
            "base_window": BASE_WINDOW,
            "alpha": ALPHA,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "vocabulary_size": len(VOCABULARY),
            "query_counts": list(query_counts),
            "shard_counts": list(shard_counts),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }
    top = f"q{max(query_counts)}"
    serial = results[top]["serial"]["shards1"]["object_query_pairs_per_second"]
    unshared = results[top]["serial_unshared"]["shards1"][
        "object_query_pairs_per_second"
    ]
    speedups = {
        f"shared_vs_unshared_{top}": serial / unshared if unshared > 0 else 0.0
    }
    for shards_key, cell in results[top]["process"].items():
        speedups[f"process_{shards_key}_vs_serial_{top}"] = (
            cell["object_query_pairs_per_second"] / serial if serial > 0 else 0.0
        )
    report["speedups"] = speedups
    return report


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    """Cells whose pairs/sec slowed beyond tolerance (process cells are only
    compared when the recorded cpu_count matches this host)."""
    regressions = []
    same_host_shape = old.get("config", {}).get("cpu_count") == new["config"]["cpu_count"]
    for count_key, executors in old.get("results", {}).items():
        for executor, cells in executors.items():
            if executor == "process" and not same_host_shape:
                continue
            for shards_key, cell in cells.items():
                new_cell = (
                    new["results"].get(count_key, {}).get(executor, {}).get(shards_key)
                )
                if new_cell is None:
                    regressions.append(
                        f"{count_key}/{executor}/{shards_key}: cell missing from "
                        "the new run; refusing to drop its recorded trajectory"
                    )
                    continue
                before = cell["object_query_pairs_per_second"]
                after = new_cell["object_query_pairs_per_second"]
                if after < before * (1.0 - tolerance):
                    regressions.append(
                        f"{count_key}/{executor}/{shards_key}: {before:,.0f} -> "
                        f"{after:,.0f} pairs/s "
                        f"({100.0 * (1.0 - after / before):.1f}% slower)"
                    )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_service.json even on regression",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid and stream (CI smoke mode; never overwrites the "
        "tracked trajectory file)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    query_counts, shard_counts, total_objects = QUERY_COUNTS, SHARD_COUNTS, TOTAL_OBJECTS
    if args.quick:
        query_counts, shard_counts, total_objects = (1, 8), (1, 2), TOTAL_OBJECTS // 4

    print(
        f"bench_service: queries={list(query_counts)} shards={list(shard_counts)} "
        f"total={total_objects} chunk={CHUNK_SIZE} algorithm={ALGORITHM} "
        f"cpu_count={os.cpu_count()}"
    )
    report = run_benchmark(query_counts, shard_counts, total_objects)

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_service.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
