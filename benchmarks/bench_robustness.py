"""Robustness benchmark: reorder-buffer overhead, disorder sweeps, and
shared-vs-unshared execution under churn + keyword skew.

Four questions decide whether the disorder-tolerant ingestion tier
(:mod:`repro.streams.watermark` wired through ``SurgeService.run``) is
deployable, and whether the shared execution plan survives adversarial
workloads:

``reorder overhead``
    What does routing a *fully ordered* stream through the watermark
    reorder buffer cost versus the historical strict chunker?  The
    acceptance bar is **≤ 20%** overhead: the run *fails* (and refuses to
    write) beyond it — tolerance must be cheap enough to leave on.

``disorder sweep``
    Throughput at {0%, 1%, 10%} bounded disorder (displacement within
    ``max_lateness``), produced by the shared
    :class:`~repro.streams.faults.FaultInjector`.  Every cell must answer
    every query *identically* to the strict run over the pre-sorted clean
    stream — that is the tier's whole contract — and must drop nothing.

``drop accounting``
    With displacement beyond the bound (plus poison and duplicates), the
    stragglers must be counted-and-dropped, not silently lost: raw arrivals
    = processed + late_dropped + quarantined, exactly.

``churn + skew``
    Shared vs unshared execution plan on a Zipf-skewed keyword stream with
    a query churn storm applied between chunks — the adversarial case for
    the shared plan's inverted keyword routing (one hot bucket, constant
    re-bucketing).  Both plans must answer identically; the ratio is
    recorded so sharing that *loses* under churn is visible in trajectory.

Regression guard
----------------
As with the other BENCH files: if a previous ``BENCH_robustness.json``
exists, the script refuses to overwrite it when a guarded throughput
regressed by more than ``REGRESSION_TOLERANCE`` (20%); ``--force``
overrides.

Usage::

    PYTHONPATH=src python benchmarks/bench_robustness.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.core.query import SurgeQuery
from repro.datasets.workloads import churn_storm_schedule, zipf_keyword_stream
from repro.service import QuerySpec, SurgeService, make_query_grid
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"
SCHEMA = "bench_robustness/v1"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20
#: Acceptance bar: the reorder buffer may cost at most this fraction of the
#: strict path's throughput on a fully ordered stream.
MAX_OVERHEAD_FRACTION = 0.20
#: Guarded cells (objects/sec) for the regression check.
GUARDED_CELLS = (
    ("ordered_tolerant", ("results", "ordered", "tolerant")),
    ("disorder_10pct", ("results", "disorder_sweep", "10pct")),
    ("churn_shared", ("results", "churn_skew", "shared")),
)

TOTAL_OBJECTS = 8192
CHURN_OBJECTS = 6144
CHUNK_SIZE = 256
MAX_LATENESS = 6.0
N_QUERIES = 8
EXTENT = 6.0
BASE_RECT = (1.0, 1.0)
BASE_WINDOW = 120.0
ALPHA = 0.5
ALGORITHM = "ccs"
BACKEND = "python"
VOCABULARY = ("concert", "parade", "festival", "derby",
              "marathon", "protest", "storm", "expo")
DISORDER_SWEEP = (("0pct", 0.0), ("1pct", 0.01), ("10pct", 0.10))
CHURN_EVENTS = 48
CHURN_EVERY_CHUNKS = 1


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    """Uniform keyword-tagged stream at ~4 objects/stream-second."""
    rng = random.Random(seed)
    t = 0.0
    objects = []
    for index in range(total):
        t += rng.uniform(0.05, 0.45)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, EXTENT),
                y=rng.uniform(0.0, EXTENT),
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
                attributes={"keywords": (rng.choice(VOCABULARY),)},
            )
        )
    return objects


def make_specs() -> list[QuerySpec]:
    return make_query_grid(
        N_QUERIES,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY,
    )


def drive(arrivals, *, max_lateness: float = 0.0, shared_plan: bool = True,
          churn=None) -> tuple[float, dict, dict]:
    """Replay ``arrivals`` through a fresh service; return (wall, results, ingest).

    ``churn`` is an iterable of ``(op, payload)`` registry operations
    applied between chunks (one per ``CHURN_EVERY_CHUNKS`` dispatched
    chunks), timed as part of the run — registry churn *is* the workload.
    """
    service = SurgeService(
        make_specs(), shared_plan=shared_plan, max_lateness=max_lateness
    )
    schedule = iter(churn) if churn is not None else None
    try:
        started = time.perf_counter()
        for index, _updates in enumerate(
            service.run(iter(arrivals), chunk_size=CHUNK_SIZE)
        ):
            if schedule is not None and index % CHURN_EVERY_CHUNKS == 0:
                op, payload = next(schedule, (None, None))
                if op == "add":
                    service.add_query(
                        QuerySpec(
                            query_id=payload["query_id"],
                            query=SurgeQuery(
                                rect_width=payload["rect"][0],
                                rect_height=payload["rect"][1],
                                window_length=payload["window_length"],
                                alpha=ALPHA,
                            ),
                            algorithm=ALGORITHM,
                            keyword=payload["keyword"],
                            backend=BACKEND,
                        )
                    )
                elif op == "remove":
                    service.remove_query(payload["query_id"])
        wall = time.perf_counter() - started
        return wall, service.results(), service.ingest_stats().to_dict()
    finally:
        service.close()


def assert_parity(reference: dict, candidate: dict, label: str) -> None:
    """Every query must answer bit-identically to the reference run."""
    if reference.keys() != candidate.keys():
        raise AssertionError(
            f"{label}: query sets differ from the reference run"
        )
    for query_id, expected in reference.items():
        if candidate[query_id] != expected:
            raise AssertionError(
                f"{label}: query {query_id!r} diverged from the strict "
                f"reference\n  expected: {expected}\n  got:      "
                f"{candidate[query_id]}"
            )


def run_benchmark(total_objects: int, churn_objects: int) -> dict:
    clean = make_stream(total_objects)

    # --- reorder overhead on a fully ordered stream -------------------
    print("ordered stream (strict vs tolerant path):", flush=True)
    strict_wall, strict_results, _ = drive(clean)
    strict_ops = total_objects / strict_wall
    print(f"  strict   path: {strict_ops:10,.0f} obj/s", flush=True)
    tolerant_wall, tolerant_results, tolerant_ingest = drive(
        clean, max_lateness=MAX_LATENESS
    )
    tolerant_ops = total_objects / tolerant_wall
    overhead = 1.0 - tolerant_ops / strict_ops
    print(
        f"  tolerant path: {tolerant_ops:10,.0f} obj/s  "
        f"(overhead {100.0 * overhead:+.1f}%)",
        flush=True,
    )
    assert_parity(strict_results, tolerant_results, "ordered/tolerant")
    if tolerant_ingest["late_dropped"] or tolerant_ingest["reordered"]:
        raise AssertionError(
            f"ordered stream produced nonzero disorder counters: "
            f"{tolerant_ingest}"
        )

    # --- disorder sweep -----------------------------------------------
    print("disorder sweep (bounded; must match the strict reference):", flush=True)
    sweep_cells = {}
    for label, fraction in DISORDER_SWEEP:
        injector = FaultInjector(
            clean,
            seed=SEED,
            disorder_fraction=fraction,
            max_disorder=MAX_LATENESS,
        )
        arrivals = injector.materialize()
        wall, results, ingest = drive(arrivals, max_lateness=MAX_LATENESS)
        ops = len(arrivals) / wall
        assert_parity(strict_results, results, f"disorder/{label}")
        if ingest["late_dropped"]:
            raise AssertionError(
                f"disorder/{label}: dropped {ingest['late_dropped']} records "
                f"despite displacement within max_lateness"
            )
        sweep_cells[label] = {
            "disorder_fraction": fraction,
            "objects_per_second": ops,
            "reordered": ingest["reordered"],
            "late_dropped": ingest["late_dropped"],
        }
        print(
            f"  {label:>5} disorder: {ops:10,.0f} obj/s  "
            f"(reordered {ingest['reordered']}, dropped 0)",
            flush=True,
        )

    # --- drop accounting beyond the bound -----------------------------
    injector = FaultInjector(
        clean,
        seed=SEED + 1,
        disorder_fraction=0.10,
        max_disorder=3.0 * MAX_LATENESS,
        duplicate_fraction=0.01,
        poison_fraction=0.005,
    )
    arrivals = injector.materialize()
    _, _, ingest = drive(arrivals, max_lateness=MAX_LATENESS)
    processed = len(arrivals) - ingest["late_dropped"] - ingest["quarantined"]
    if ingest["late_dropped"] == 0:
        raise AssertionError(
            "displacement 3x beyond max_lateness dropped nothing — the "
            "watermark is not advancing"
        )
    if ingest["quarantined"] != injector.poisoned:
        raise AssertionError(
            f"quarantined {ingest['quarantined']} != injected poison "
            f"{injector.poisoned}"
        )
    print(
        f"drop accounting (3x over-bound disorder): {len(arrivals)} arrivals "
        f"= {processed} processed + {ingest['late_dropped']} dropped + "
        f"{ingest['quarantined']} quarantined",
        flush=True,
    )
    accounting = {
        "arrivals": len(arrivals),
        "processed": processed,
        "late_dropped": ingest["late_dropped"],
        "quarantined": ingest["quarantined"],
        "duplicates_seen": ingest["duplicates_seen"],
    }

    # --- shared vs unshared under churn + skew ------------------------
    print("churn storm + Zipf skew (shared vs unshared plan):", flush=True)
    skewed = zipf_keyword_stream(churn_objects, seed=SEED, extent=EXTENT)
    churn = churn_storm_schedule(
        CHURN_EVENTS, seed=SEED, window_length=BASE_WINDOW, rect=BASE_RECT
    )
    churn_cells = {}
    reference_results = None
    for label, shared in (("shared", True), ("unshared", False)):
        wall, results, _ = drive(skewed, shared_plan=shared, churn=list(churn))
        ops = churn_objects / wall
        churn_cells[label] = {"objects_per_second": ops}
        if reference_results is None:
            reference_results = results
        else:
            assert_parity(reference_results, results, f"churn/{label}")
        print(f"  {label:>8} plan: {ops:10,.0f} obj/s", flush=True)
    speedup = (
        churn_cells["shared"]["objects_per_second"]
        / churn_cells["unshared"]["objects_per_second"]
    )
    churn_cells["shared_over_unshared"] = speedup
    print(f"  shared/unshared: {speedup:.2f}x", flush=True)

    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "extent": EXTENT,
            "base_rect": list(BASE_RECT),
            "base_window": BASE_WINDOW,
            "alpha": ALPHA,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "n_queries": N_QUERIES,
            "total_objects": total_objects,
            "churn_objects": churn_objects,
            "chunk_size": CHUNK_SIZE,
            "max_lateness": MAX_LATENESS,
            "churn_events": CHURN_EVENTS,
        },
        "results": {
            "ordered": {
                "strict": {"objects_per_second": strict_ops},
                "tolerant": {
                    "objects_per_second": tolerant_ops,
                    "overhead_fraction": overhead,
                },
            },
            "disorder_sweep": sweep_cells,
            "drop_accounting": accounting,
            "churn_skew": churn_cells,
        },
    }


def _cell_ops(report: dict, path: tuple) -> float:
    node = report
    for key in path:
        node = node[key]
    return node["objects_per_second"]


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    regressions = []
    for name, path in GUARDED_CELLS:
        try:
            before = _cell_ops(old, path)
        except (KeyError, TypeError):
            regressions.append(
                f"{name}: previous file is not a readable {SCHEMA} report"
            )
            continue
        after = _cell_ops(new, path)
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{name}: {before:,.0f} -> {after:,.0f} obj/s "
                f"({100.0 * (1.0 - after / before):.1f}% slower)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_robustness.json even on regression or "
        "overhead breach",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small streams (CI smoke mode; never overwrites the tracked "
        "trajectory file)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    total_objects = TOTAL_OBJECTS // 4 if args.quick else TOTAL_OBJECTS
    churn_objects = CHURN_OBJECTS // 4 if args.quick else CHURN_OBJECTS
    print(
        f"bench_robustness: queries={N_QUERIES} total={total_objects} "
        f"churn_total={churn_objects} chunk={CHUNK_SIZE} "
        f"max_lateness={MAX_LATENESS} backend={BACKEND}"
    )
    report = run_benchmark(total_objects, churn_objects)

    overhead = report["results"]["ordered"]["tolerant"]["overhead_fraction"]
    if overhead > MAX_OVERHEAD_FRACTION and not args.force:
        print(
            f"reorder overhead {100.0 * overhead:.1f}% on a fully ordered "
            f"stream exceeds the {100.0 * MAX_OVERHEAD_FRACTION:.0f}% "
            f"acceptance bar",
            file=sys.stderr,
        )
        return 1

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_robustness.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
