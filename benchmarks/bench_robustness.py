"""Robustness benchmark: reorder-buffer overhead, disorder sweeps, and
shared-vs-unshared execution under churn + keyword skew.

Four questions decide whether the disorder-tolerant ingestion tier
(:mod:`repro.streams.watermark` wired through ``SurgeService.run``) is
deployable, and whether the shared execution plan survives adversarial
workloads:

``reorder overhead``
    What does routing a *fully ordered* stream through the watermark
    reorder buffer cost versus the historical strict chunker?  The
    acceptance bar is **≤ 20%** overhead: the run *fails* (and refuses to
    write) beyond it — tolerance must be cheap enough to leave on.

``disorder sweep``
    Throughput at {0%, 1%, 10%} bounded disorder (displacement within
    ``max_lateness``), produced by the shared
    :class:`~repro.streams.faults.FaultInjector`.  Every cell must answer
    every query *identically* to the strict run over the pre-sorted clean
    stream — that is the tier's whole contract — and must drop nothing.

``drop accounting``
    With displacement beyond the bound (plus poison and duplicates), the
    stragglers must be counted-and-dropped, not silently lost: raw arrivals
    = processed + late_dropped + quarantined, exactly.

``churn + skew``
    Shared vs unshared execution plan on a Zipf-skewed keyword stream with
    a query churn storm applied between chunks — the adversarial case for
    the shared plan's inverted keyword routing (one hot bucket, constant
    re-bucketing).  Both plans must answer identically; the ratio is
    recorded so sharing that *loses* under churn is visible in trajectory.
    Since v2 the cell runs a **q64 group-aligned grid** whose storm
    removes and re-registers grid members (each re-add lands in a fresh
    epoch, fragmenting the shared plan) with periodic compaction merging
    them back; the compacted shared plan must stay **≥ 1.5x** the
    unshared plan or the run fails.

``slow subscriber``
    A seeded slow-subscriber callback (from the shared ``FaultInjector``)
    plus a bounded ``drop_oldest`` subscription drained lazily: the peak
    queue depth must respect the bound, and the accounting must be exact —
    every offered update is delivered or counted dropped, none lost.

``memory bound``
    A 100k-object 32x flash-crowd stream against a 2-chunk in-flight
    budget: the peak number of buffered arrivals must never exceed
    ``max_inflight_chunks * chunk_size``, proving service memory stays
    bounded under any arrival burst.

Regression guard
----------------
As with the other BENCH files: if a previous ``BENCH_robustness.json``
exists, the script refuses to overwrite it when a guarded throughput
regressed by more than ``REGRESSION_TOLERANCE`` (20%); ``--force``
overrides.  The guard is schema-aware: a previous file with a different
schema (e.g. v1, which lacks the v2 cells and ran the churn cell at q8)
is reported and skipped rather than compared cell-by-cell.

Usage::

    PYTHONPATH=src python benchmarks/bench_robustness.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.datasets.workloads import zipf_keyword_stream
from repro.service import QuerySpec, SurgeService, make_query_grid
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"
SCHEMA = "bench_robustness/v2"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20
#: Acceptance bar: the reorder buffer may cost at most this fraction of the
#: strict path's throughput on a fully ordered stream.
MAX_OVERHEAD_FRACTION = 0.20
#: Acceptance bar: at q64 the compacted shared plan must beat the unshared
#: predicate scan by at least this factor even while the churn storm
#: fragments it.
MIN_CHURN_SPEEDUP = 1.5
#: Guarded cells (objects/sec) for the regression check.
GUARDED_CELLS = (
    ("ordered_tolerant", ("results", "ordered", "tolerant")),
    ("disorder_10pct", ("results", "disorder_sweep", "10pct")),
    ("churn_shared", ("results", "churn_skew", "shared")),
    ("slow_subscriber", ("results", "slow_subscriber",)),
)

TOTAL_OBJECTS = 8192
CHURN_OBJECTS = 6144
MEMORY_OBJECTS = 100_000
CHUNK_SIZE = 256
MAX_LATENESS = 6.0
N_QUERIES = 8
CHURN_QUERIES = 64
EXTENT = 6.0
BASE_RECT = (1.0, 1.0)
BASE_WINDOW = 120.0
ALPHA = 0.5
ALGORITHM = "ccs"
BACKEND = "python"
VOCABULARY = ("concert", "parade", "festival", "derby",
              "marathon", "protest", "storm", "expo")
DISORDER_SWEEP = (("0pct", 0.0), ("1pct", 0.01), ("10pct", 0.10))
CHURN_EVERY_CHUNKS = 1
COMPACT_EVERY_CHUNKS = 4
#: Bounded subscription size and drain cadence for the slow-subscriber cell.
#: The bound is intentionally smaller than even the --quick run offers, so
#: the lazy drain always overflows and the drop accounting is exercised.
SLOW_SUB_MAXSIZE = 24
SLOW_SUB_DRAIN_EVERY = 4
#: In-flight budget (chunks) for the memory-bound cell.
MEMORY_BUDGET_CHUNKS = 2


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    """Uniform keyword-tagged stream at ~4 objects/stream-second."""
    rng = random.Random(seed)
    t = 0.0
    objects = []
    for index in range(total):
        t += rng.uniform(0.05, 0.45)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, EXTENT),
                y=rng.uniform(0.0, EXTENT),
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
                attributes={"keywords": (rng.choice(VOCABULARY),)},
            )
        )
    return objects


def make_specs() -> list[QuerySpec]:
    return make_query_grid(
        N_QUERIES,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY,
    )


def drive(arrivals, *, max_lateness: float = 0.0,
          shared_plan: bool = True) -> tuple[float, dict, dict]:
    """Replay ``arrivals`` through a fresh service; return (wall, results, ingest)."""
    service = SurgeService(
        make_specs(), shared_plan=shared_plan, max_lateness=max_lateness
    )
    try:
        started = time.perf_counter()
        for _updates in service.run(iter(arrivals), chunk_size=CHUNK_SIZE):
            pass
        wall = time.perf_counter() - started
        return wall, service.results(), service.ingest_stats().to_dict()
    finally:
        service.close()


def make_churn_grid() -> list[QuerySpec]:
    """q64 group-aligned grid: rich window/detector sharing to fragment.

    Four keywords x 3 rects x 3 windows = 36 distinct combinations, so the
    64-query grid wraps onto 28 exact duplicates — the shared plan aliases
    those into common detector units (the sharing the churn storm breaks
    and compaction must restore), while the unshared plan runs all 64.
    """
    return make_query_grid(
        CHURN_QUERIES,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY[:4],
        group_aligned=True,
    )


def make_churn_schedule(specs: list[QuerySpec], n_chunks: int) -> list[tuple]:
    """Alternating remove / re-add of grid members, one op per chunk.

    Every re-registration lands in a fresh epoch, so without compaction
    the shared plan fragments monotonically; the schedule is the same for
    both plans so their answers stay comparable.
    """
    rng = random.Random(SEED + 2)
    victims = iter(rng.sample(range(len(specs)), k=min(16, len(specs))))
    pending: list[QuerySpec] = []
    schedule: list[tuple] = []
    for chunk in range(n_chunks):
        if chunk % 2 == 0:
            index = next(victims, None)
            if index is not None:
                schedule.append(("remove", specs[index]))
                pending.append(specs[index])
                continue
        if pending:
            schedule.append(("add", pending.pop(0)))
        else:
            schedule.append((None, None))
    return schedule


def assert_parity(reference: dict, candidate: dict, label: str) -> None:
    """Every query must answer bit-identically to the reference run."""
    if reference.keys() != candidate.keys():
        raise AssertionError(
            f"{label}: query sets differ from the reference run"
        )
    for query_id, expected in reference.items():
        if candidate[query_id] != expected:
            raise AssertionError(
                f"{label}: query {query_id!r} diverged from the strict "
                f"reference\n  expected: {expected}\n  got:      "
                f"{candidate[query_id]}"
            )


def churn_skew_cell(churn_objects: int) -> dict:
    print(
        f"churn storm + Zipf skew (q{CHURN_QUERIES} grid, shared+compaction "
        f"vs unshared):",
        flush=True,
    )
    skewed = zipf_keyword_stream(churn_objects, seed=SEED, extent=EXTENT)
    specs = make_churn_grid()
    n_chunks = -(-churn_objects // CHUNK_SIZE)
    schedule = make_churn_schedule(specs, n_chunks)
    cells = {}
    reference_results = None
    for label, shared in (("shared", True), ("unshared", False)):
        service = SurgeService(
            specs,
            shared_plan=shared,
            compact_every_chunks=COMPACT_EVERY_CHUNKS if shared else None,
        )
        try:
            started = time.perf_counter()
            for index, _updates in enumerate(
                service.run(iter(skewed), chunk_size=CHUNK_SIZE)
            ):
                op, spec = (
                    schedule[index] if index < len(schedule) else (None, None)
                )
                if op == "remove":
                    service.remove_query(spec.query_id)
                elif op == "add":
                    service.add_query(spec)
            wall = time.perf_counter() - started
            results = service.results()
            compacted = service.overload_stats().queries_compacted
        finally:
            service.close()
        ops = churn_objects / wall
        cells[label] = {"objects_per_second": ops}
        if shared:
            cells[label]["queries_compacted"] = compacted
        if reference_results is None:
            reference_results = results
        else:
            assert_parity(reference_results, results, f"churn/{label}")
        print(
            f"  {label:>8} plan: {ops:10,.0f} obj/s"
            + (f"  (re-merged {compacted} churned queries)" if shared else ""),
            flush=True,
        )
    if cells["shared"]["queries_compacted"] == 0:
        raise AssertionError(
            "the churn storm re-registered grid queries but compaction "
            "merged none of them back — re-epoching is not restoring sharing"
        )
    speedup = (
        cells["shared"]["objects_per_second"]
        / cells["unshared"]["objects_per_second"]
    )
    cells["shared_over_unshared"] = speedup
    print(f"  shared/unshared: {speedup:.2f}x", flush=True)
    return cells


def slow_subscriber_cell(clean: list[SpatialObject]) -> dict:
    print("slow subscriber (bounded queue, lazy drain):", flush=True)
    injector = FaultInjector(
        clean,
        seed=SEED + 3,
        slow_subscriber_fraction=0.10,
        slow_subscriber_delay=0.002,
    )
    service = SurgeService(make_specs())
    try:
        # A seeded-slow callback subscriber (stalls inline on ~10% of
        # updates) plus a bounded queue drained only every few chunks: the
        # laggard consumer the backpressure tier exists to survive.
        service.bus.subscribe(injector.make_slow_subscriber())
        subscription = service.bus.open_subscription(
            maxsize=SLOW_SUB_MAXSIZE, policy="drop_oldest"
        )
        started = time.perf_counter()
        for index, _updates in enumerate(
            service.run(iter(clean), chunk_size=CHUNK_SIZE)
        ):
            if index % SLOW_SUB_DRAIN_EVERY == 0:
                # Drain one chunk's worth: strictly less than was offered
                # since the last drain, so the queue lags and overflows.
                for _ in range(N_QUERIES):
                    if subscription.get(timeout=0) is None:
                        break
        wall = time.perf_counter() - started
        peak_depth = service.bus.peak_queue_depth()
        subscription.drain()
        counters = subscription.counters()
    finally:
        service.close()
    if peak_depth > SLOW_SUB_MAXSIZE:
        raise AssertionError(
            f"peak queue depth {peak_depth} exceeded the "
            f"{SLOW_SUB_MAXSIZE}-update bound"
        )
    if counters["dropped"] == 0:
        raise AssertionError("the lazy drain never overflowed the queue")
    if counters["offered"] != counters["delivered"] + counters["dropped"]:
        raise AssertionError(
            f"update accounting is not exact after the final drain: "
            f"{counters}"
        )
    ops = len(clean) / wall
    print(
        f"  {ops:10,.0f} obj/s  (peak depth {peak_depth} <= "
        f"{SLOW_SUB_MAXSIZE}, {counters['offered']} offered = "
        f"{counters['delivered']} delivered + {counters['dropped']} "
        f"dropped, {injector.subscriber_stalls} stalls)",
        flush=True,
    )
    return {
        "objects_per_second": ops,
        "peak_queue_depth": peak_depth,
        "queue_bound": SLOW_SUB_MAXSIZE,
        "offered": counters["offered"],
        "delivered": counters["delivered"],
        "dropped": counters["dropped"],
        "subscriber_stalls": injector.subscriber_stalls,
    }


def memory_bound_cell(memory_objects: int) -> dict:
    print(
        f"memory bound ({memory_objects} objects, 32x flash crowd, "
        f"{MEMORY_BUDGET_CHUNKS}-chunk in-flight budget):",
        flush=True,
    )
    rng = random.Random(SEED + 4)
    t = 0.0
    objects = []
    for index in range(memory_objects):
        t += rng.uniform(0.05, 0.45)
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, EXTENT),
                y=rng.uniform(0.0, EXTENT),
                timestamp=t,
                weight=rng.uniform(0.5, 10.0),
                object_id=index,
                attributes={"keywords": (rng.choice(VOCABULARY),)},
            )
        )
    # 32x gap compression: the burst piles ~6x the budget into the
    # lateness window, so the bound is genuinely load-bearing.
    injector = FaultInjector(
        objects,
        seed=SEED + 4,
        disorder_fraction=0.05,
        max_disorder=MAX_LATENESS,
        flash_crowd_factor=32.0,
        flash_crowd_span=(0.3, 0.7),
    )
    arrivals = injector.materialize()
    # Two queries keep the cell about buffering, not detector throughput.
    specs = make_query_grid(
        2,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY,
    )
    service = SurgeService(
        specs,
        max_lateness=MAX_LATENESS,
        max_inflight_chunks=MEMORY_BUDGET_CHUNKS,
    )
    try:
        started = time.perf_counter()
        for _updates in service.run(iter(arrivals), chunk_size=CHUNK_SIZE):
            pass
        wall = time.perf_counter() - started
        ingest = service.ingest_stats()
    finally:
        service.close()
    bound = MEMORY_BUDGET_CHUNKS * CHUNK_SIZE
    if ingest.peak_buffered > bound:
        raise AssertionError(
            f"peak buffered {ingest.peak_buffered} arrivals exceeded the "
            f"{bound}-object in-flight budget"
        )
    if ingest.force_released == 0:
        raise AssertionError(
            "the flash crowd never pressed the in-flight budget — the "
            "memory-bound cell is not exercising backpressure"
        )
    ops = len(arrivals) / wall
    print(
        f"  {ops:10,.0f} obj/s  (peak buffered {ingest.peak_buffered} <= "
        f"{bound}, force_released {ingest.force_released})",
        flush=True,
    )
    return {
        "objects": memory_objects,
        "objects_per_second": ops,
        "peak_buffered": ingest.peak_buffered,
        "bound": bound,
        "max_inflight_chunks": MEMORY_BUDGET_CHUNKS,
        "force_released": ingest.force_released,
    }


def run_benchmark(total_objects: int, churn_objects: int,
                  memory_objects: int) -> dict:
    clean = make_stream(total_objects)

    # --- reorder overhead on a fully ordered stream -------------------
    print("ordered stream (strict vs tolerant path):", flush=True)
    strict_wall, strict_results, _ = drive(clean)
    strict_ops = total_objects / strict_wall
    print(f"  strict   path: {strict_ops:10,.0f} obj/s", flush=True)
    tolerant_wall, tolerant_results, tolerant_ingest = drive(
        clean, max_lateness=MAX_LATENESS
    )
    tolerant_ops = total_objects / tolerant_wall
    overhead = 1.0 - tolerant_ops / strict_ops
    print(
        f"  tolerant path: {tolerant_ops:10,.0f} obj/s  "
        f"(overhead {100.0 * overhead:+.1f}%)",
        flush=True,
    )
    assert_parity(strict_results, tolerant_results, "ordered/tolerant")
    if tolerant_ingest["late_dropped"] or tolerant_ingest["reordered"]:
        raise AssertionError(
            f"ordered stream produced nonzero disorder counters: "
            f"{tolerant_ingest}"
        )

    # --- disorder sweep -----------------------------------------------
    print("disorder sweep (bounded; must match the strict reference):", flush=True)
    sweep_cells = {}
    for label, fraction in DISORDER_SWEEP:
        injector = FaultInjector(
            clean,
            seed=SEED,
            disorder_fraction=fraction,
            max_disorder=MAX_LATENESS,
        )
        arrivals = injector.materialize()
        wall, results, ingest = drive(arrivals, max_lateness=MAX_LATENESS)
        ops = len(arrivals) / wall
        assert_parity(strict_results, results, f"disorder/{label}")
        if ingest["late_dropped"]:
            raise AssertionError(
                f"disorder/{label}: dropped {ingest['late_dropped']} records "
                f"despite displacement within max_lateness"
            )
        sweep_cells[label] = {
            "disorder_fraction": fraction,
            "objects_per_second": ops,
            "reordered": ingest["reordered"],
            "late_dropped": ingest["late_dropped"],
        }
        print(
            f"  {label:>5} disorder: {ops:10,.0f} obj/s  "
            f"(reordered {ingest['reordered']}, dropped 0)",
            flush=True,
        )

    # --- drop accounting beyond the bound -----------------------------
    injector = FaultInjector(
        clean,
        seed=SEED + 1,
        disorder_fraction=0.10,
        max_disorder=3.0 * MAX_LATENESS,
        duplicate_fraction=0.01,
        poison_fraction=0.005,
    )
    arrivals = injector.materialize()
    _, _, ingest = drive(arrivals, max_lateness=MAX_LATENESS)
    processed = len(arrivals) - ingest["late_dropped"] - ingest["quarantined"]
    if ingest["late_dropped"] == 0:
        raise AssertionError(
            "displacement 3x beyond max_lateness dropped nothing — the "
            "watermark is not advancing"
        )
    if ingest["quarantined"] != injector.poisoned:
        raise AssertionError(
            f"quarantined {ingest['quarantined']} != injected poison "
            f"{injector.poisoned}"
        )
    print(
        f"drop accounting (3x over-bound disorder): {len(arrivals)} arrivals "
        f"= {processed} processed + {ingest['late_dropped']} dropped + "
        f"{ingest['quarantined']} quarantined",
        flush=True,
    )
    accounting = {
        "arrivals": len(arrivals),
        "processed": processed,
        "late_dropped": ingest["late_dropped"],
        "quarantined": ingest["quarantined"],
        "duplicates_seen": ingest["duplicates_seen"],
    }

    # --- shared vs unshared under churn + skew (q64 + compaction) -----
    churn_cells = churn_skew_cell(churn_objects)

    # --- slow subscriber: bounded queue, exact accounting -------------
    slow_cell = slow_subscriber_cell(clean)

    # --- memory bound under a flash crowd -----------------------------
    memory_cell = memory_bound_cell(memory_objects)

    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "extent": EXTENT,
            "base_rect": list(BASE_RECT),
            "base_window": BASE_WINDOW,
            "alpha": ALPHA,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "n_queries": N_QUERIES,
            "churn_queries": CHURN_QUERIES,
            "total_objects": total_objects,
            "churn_objects": churn_objects,
            "memory_objects": memory_objects,
            "chunk_size": CHUNK_SIZE,
            "max_lateness": MAX_LATENESS,
            "compact_every_chunks": COMPACT_EVERY_CHUNKS,
        },
        "results": {
            "ordered": {
                "strict": {"objects_per_second": strict_ops},
                "tolerant": {
                    "objects_per_second": tolerant_ops,
                    "overhead_fraction": overhead,
                },
            },
            "disorder_sweep": sweep_cells,
            "drop_accounting": accounting,
            "churn_skew": churn_cells,
            "slow_subscriber": slow_cell,
            "memory_bound": memory_cell,
        },
    }


def _cell_ops(report: dict, path: tuple) -> float:
    node = report
    for key in path:
        node = node[key]
    return node["objects_per_second"]


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    # Schema-aware: an older-schema file (different cells, different churn
    # workload) is not comparable cell-by-cell — first write under a new
    # schema re-baselines instead of hard-failing.
    if old.get("schema") != new.get("schema"):
        print(
            f"previous file has schema {old.get('schema')!r}; "
            f"re-baselining under {new.get('schema')!r} without comparison"
        )
        return []
    regressions = []
    for name, path in GUARDED_CELLS:
        try:
            before = _cell_ops(old, path)
        except (KeyError, TypeError):
            regressions.append(
                f"{name}: previous {SCHEMA} file lacks this guarded cell"
            )
            continue
        after = _cell_ops(new, path)
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{name}: {before:,.0f} -> {after:,.0f} obj/s "
                f"({100.0 * (1.0 - after / before):.1f}% slower)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_robustness.json even on regression or "
        "overhead breach",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small streams (CI smoke mode; never overwrites the tracked "
        "trajectory file)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    total_objects = TOTAL_OBJECTS // 4 if args.quick else TOTAL_OBJECTS
    churn_objects = CHURN_OBJECTS // 4 if args.quick else CHURN_OBJECTS
    memory_objects = MEMORY_OBJECTS // 5 if args.quick else MEMORY_OBJECTS
    print(
        f"bench_robustness: queries={N_QUERIES} churn_queries={CHURN_QUERIES} "
        f"total={total_objects} churn_total={churn_objects} "
        f"memory_total={memory_objects} chunk={CHUNK_SIZE} "
        f"max_lateness={MAX_LATENESS} backend={BACKEND}"
    )
    report = run_benchmark(total_objects, churn_objects, memory_objects)

    overhead = report["results"]["ordered"]["tolerant"]["overhead_fraction"]
    if overhead > MAX_OVERHEAD_FRACTION and not args.force:
        print(
            f"reorder overhead {100.0 * overhead:.1f}% on a fully ordered "
            f"stream exceeds the {100.0 * MAX_OVERHEAD_FRACTION:.0f}% "
            f"acceptance bar",
            file=sys.stderr,
        )
        return 1
    speedup = report["results"]["churn_skew"]["shared_over_unshared"]
    if speedup < MIN_CHURN_SPEEDUP and not args.force:
        # Quick mode's quarter-size stream amortizes sharing over fewer
        # chunks, so the bar only binds at full scale.
        if args.quick:
            print(
                f"note: churn speedup {speedup:.2f}x below the "
                f"{MIN_CHURN_SPEEDUP:.1f}x bar at --quick scale "
                f"(enforced on full runs only)"
            )
        else:
            print(
                f"compacted shared plan is only {speedup:.2f}x the unshared "
                f"plan at q{CHURN_QUERIES} under churn — below the "
                f"{MIN_CHURN_SPEEDUP:.1f}x acceptance bar",
                file=sys.stderr,
            )
            return 1

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_robustness.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
