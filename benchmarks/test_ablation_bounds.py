"""Ablation (ours) — which part of Cell-CSPOT's machinery does the work?

The paper compares CCS against B-CCS (static bound only) and Base (no
bounds).  This ablation additionally disables only the Lemma 4 candidate
reuse while keeping both bounds, separating the contribution of

* the dynamic upper bound (CCS-no-candidates vs B-CCS), and
* the candidate-point maintenance (CCS vs CCS-no-candidates).

Expected shape: each mechanism removes a further chunk of the cell searches,
with the full CCS configuration searching the fewest cells.
"""

from __future__ import annotations

from benchmarks.conftest import scaled
from repro.baselines.base_cell import BaseCellDetector
from repro.baselines.bccs import StaticBoundCellCSPOT
from repro.core.cell_cspot import CellCSPOT
from repro.datasets.profiles import TAXI_PROFILE
from repro.datasets.workloads import default_query_for_profile
from repro.evaluation.experiments import prepare_stream
from repro.evaluation.tables import format_paper_expectation, format_table
from repro.streams.windows import SlidingWindowPair


def _run_ablation(n_objects: int):
    stream = prepare_stream(TAXI_PROFILE, n_objects, span_seconds=1800.0, seed=7)
    query = default_query_for_profile(TAXI_PROFILE, window_seconds=600.0)
    detectors = {
        "CCS (full)": CellCSPOT(query),
        "CCS w/o candidate reuse": CellCSPOT(query, candidate_reuse=False),
        "B-CCS (static bound only)": StaticBoundCellCSPOT(query),
        "Base (no bounds)": BaseCellDetector(query),
    }
    windows = SlidingWindowPair(query.current_length, query.past_length)
    reference_scores: list[float] = []
    for obj in stream:
        events = windows.observe(obj)
        for detector in detectors.values():
            for event in events:
                detector.process(event)
    return detectors


def test_ablation_of_bounds_and_candidates(benchmark, record):
    detectors = benchmark.pedantic(
        _run_ablation, kwargs={"n_objects": scaled(1500)}, rounds=1, iterations=1
    )
    rows = []
    for name, detector in detectors.items():
        rows.append(
            [
                name,
                detector.stats.cells_searched,
                f"{100.0 * detector.stats.search_trigger_ratio:.2f}%",
                detector.current_score(),
            ]
        )
    text = format_table(
        "Ablation: cell searches per configuration (Taxi-profile stream)",
        ["configuration", "cells searched", "events triggering search", "final score"],
        rows,
    )
    text += "\n" + format_paper_expectation(
        "every configuration reports the same (exact) score; each pruning "
        "mechanism removes additional cell searches, full CCS searches the fewest."
    )
    print("\n" + text)
    record("ablation_bounds", text)

    searches = {name: det.stats.cells_searched for name, det in detectors.items()}
    assert searches["CCS (full)"] <= searches["CCS w/o candidate reuse"]
    assert searches["CCS (full)"] <= searches["B-CCS (static bound only)"]
    assert searches["CCS (full)"] <= searches["Base (no bounds)"]

    scores = [det.current_score() for det in detectors.values()]
    for score in scores[1:]:
        assert abs(score - scores[0]) <= 1e-6 * max(1.0, scores[0])
