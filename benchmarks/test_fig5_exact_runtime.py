"""Figure 5 — runtime of the exact solutions (CCS, B-CCS, Base, aG2).

Paper (Figures 5a-5f): average per-object processing time of the exact
detectors on Taxi, UK and US, as the sliding-window length and the query
rectangle size vary.  Expected shape: CCS is the fastest by roughly an order
of magnitude over B-CCS / Base, aG2 trails CCS, and every curve grows with
the window length and the rectangle size.

The benchmark uses scaled-down streams (see DESIGN.md §4); the assertion
checks the ordering and the growth trend, not absolute microseconds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import PROFILES
from repro.evaluation.experiments import runtime_vs_rect_size, runtime_vs_window
from repro.evaluation.tables import format_paper_expectation, format_series

ALGORITHMS = ("ccs", "bccs", "base", "ag2")


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_fig5_runtime_vs_window(benchmark, record, profile_key):
    """Figures 5(a)-(c): runtime vs sliding-window length."""
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        runtime_vs_window,
        kwargs={
            "profile": profile,
            "algorithms": ALGORITHMS,
            "n_objects": scaled(1200),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Figure 5 (window sweep, {profile.name}): mean µs per object",
        "window_s",
        series,
    )
    text += "\n" + format_paper_expectation(
        "CCS fastest; B-CCS and Base about an order of magnitude slower; "
        "aG2 slower than CCS; all grow with the window length."
    )
    print("\n" + text)
    record(f"fig5_window_{profile.name.lower()}", text)

    windows = sorted(series["ccs"].keys())
    # CCS is the cheapest exact method (averaged over the sweep).  A small
    # noise allowance keeps the check robust at reduced benchmark scales,
    # where per-object times are dominated by constant overheads.
    mean = lambda name: sum(series[name].values()) / len(series[name])
    assert mean("ccs") <= 1.2 * mean("bccs")
    assert mean("ccs") <= 1.2 * mean("base")
    assert mean("ccs") <= 1.2 * mean("ag2")
    # Runtime grows with the window (compare smallest vs largest window).
    for name in ("bccs", "base", "ag2"):
        assert series[name][windows[-1]] >= 0.4 * series[name][windows[0]]


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_fig5_runtime_vs_rect_size(benchmark, record, profile_key):
    """Figures 5(d)-(f): runtime vs query-rectangle size (0.5q .. 3q)."""
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        runtime_vs_rect_size,
        kwargs={
            "profile": profile,
            "algorithms": ALGORITHMS,
            "n_objects": scaled(1200),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Figure 5 (rectangle sweep, {profile.name}): mean µs per object",
        "rect_multiplier",
        series,
    )
    text += "\n" + format_paper_expectation(
        "runtime increases with the rectangle size; CCS remains the cheapest exact method."
    )
    print("\n" + text)
    record(f"fig5_rect_{profile.name.lower()}", text)

    mean = lambda name: sum(series[name].values()) / len(series[name])
    assert mean("ccs") <= 1.2 * mean("bccs")
    assert mean("ccs") <= 1.2 * mean("base")
    multipliers = sorted(series["base"].keys())
    # Larger rectangles mean more work for the cell-sweeping baselines.
    assert series["base"][multipliers[-1]] >= 0.4 * series["base"][multipliers[0]]
