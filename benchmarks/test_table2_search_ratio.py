"""Table II — fraction of rectangle events that trigger a cell search.

Paper: with the full upper-bound machinery (CCS) only 0.2%–5% of events
trigger a search, while with the static bound alone (B-CCS) 9%–93% do —
that gap is what makes CCS an order of magnitude faster.

Expected shape here: CCS's trigger ratio is far below B-CCS's on every
dataset and window setting.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import PROFILES
from repro.evaluation.experiments import search_trigger_ratio_vs_window
from repro.evaluation.tables import format_paper_expectation, format_series


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_table2_search_trigger_ratio(benchmark, record, profile_key):
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        search_trigger_ratio_vs_window,
        kwargs={"profile": profile, "n_objects": scaled(1500)},
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Table II ({profile.name}): % of events triggering a cell search",
        "window_s",
        series,
        value_format="{:.2f}%",
    )
    text += "\n" + format_paper_expectation(
        "CCS: 0.2%-5% of events trigger a search; B-CCS: 9%-93% "
        "(the static bound alone is too loose to prune)."
    )
    print("\n" + text)
    record(f"table2_search_ratio_{profile.name.lower()}", text)

    for window in series["ccs"]:
        assert series["ccs"][window] <= series["bccs"][window] + 1e-9
    mean_ccs = sum(series["ccs"].values()) / len(series["ccs"])
    mean_bccs = sum(series["bccs"].values()) / len(series["bccs"])
    # The full machinery prunes at least twice as many events as the static
    # bound alone (the paper's gap is 10x-100x).
    assert mean_ccs <= mean_bccs / 2.0 + 1e-9
