"""Figure 8 — scalability with the arrival rate (2M to 10M objects/day).

Paper: the same objects are re-timed so the stream runs at 2, 4, 6, 8 and 10
million objects per day.  The reported metric is the processing time needed
for one hour of stream time.  Expected shape: CCS's cost per stream-hour
grows steeply with the rate (it eventually cannot keep up with the Taxi
stream), while GAPS grows only mildly and stays far below CCS.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import PROFILES
from repro.evaluation.experiments import scalability_vs_arrival_rate
from repro.evaluation.tables import format_paper_expectation, format_series

RATES = (2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000)


def _run(algorithm: str, n_objects: int):
    return scalability_vs_arrival_rate(
        [PROFILES["taxi"], PROFILES["uk"], PROFILES["us"]],
        algorithm=algorithm,
        n_objects=n_objects,
        rates_per_day=RATES,
        window_seconds=60.0,
    )


def test_fig8a_ccs_scalability(benchmark, record):
    series = benchmark.pedantic(
        _run, kwargs={"algorithm": "ccs", "n_objects": scaled(1500)}, rounds=1, iterations=1
    )
    text = format_series(
        "Figure 8(a): CCS processing time (s) per hour of stream vs arrival rate",
        "objects_per_day",
        series,
    )
    text += "\n" + format_paper_expectation(
        "grows steeply with the arrival rate; hours of processing per stream-hour "
        "at 10M/day on the paper's full-size streams."
    )
    print("\n" + text)
    record("fig8a_scalability_ccs", text)

    for dataset, points in series.items():
        rates = sorted(points)
        assert points[rates[-1] ] >= points[rates[0]], dataset


def test_fig8b_gaps_scalability(benchmark, record):
    series = benchmark.pedantic(
        _run, kwargs={"algorithm": "gaps", "n_objects": scaled(3000)}, rounds=1, iterations=1
    )
    text = format_series(
        "Figure 8(b): GAPS processing time (s) per hour of stream vs arrival rate",
        "objects_per_day",
        series,
    )
    text += "\n" + format_paper_expectation(
        "stays within seconds per stream-hour at every rate (scales well)."
    )
    print("\n" + text)
    record("fig8b_scalability_gaps", text)

    for dataset, points in series.items():
        rates = sorted(points)
        assert points[rates[-1]] >= points[rates[0]] * 0.5, dataset


def test_fig8_gaps_much_cheaper_than_ccs(benchmark, record):
    """Cross-check of the two panels: GAPS ≪ CCS at the highest rate."""

    def both():
        ccs = scalability_vs_arrival_rate(
            [PROFILES["taxi"]],
            algorithm="ccs",
            n_objects=scaled(1500),
            rates_per_day=(10_000_000,),
            window_seconds=60.0,
        )
        gaps = scalability_vs_arrival_rate(
            [PROFILES["taxi"]],
            algorithm="gaps",
            n_objects=scaled(1500),
            rates_per_day=(10_000_000,),
            window_seconds=60.0,
        )
        return ccs, gaps

    ccs, gaps = benchmark.pedantic(both, rounds=1, iterations=1)
    ccs_value = ccs["Taxi"][10_000_000]
    gaps_value = gaps["Taxi"][10_000_000]
    text = (
        "Figure 8 cross-check (Taxi @ 10M/day): "
        f"CCS = {ccs_value:.4g} s per stream-hour, GAPS = {gaps_value:.4g} s per stream-hour"
    )
    text += "\n" + format_paper_expectation(
        "GAPS is orders of magnitude cheaper than CCS at high arrival rates."
    )
    print("\n" + text)
    record("fig8_crosscheck", text)
    assert gaps_value < ccs_value
