"""Table IV — approximation ratio of GAPS / MGAPS vs the window length.

Paper: across Taxi, UK and US and all window settings, the burst score of
the region returned by GAPS is 73%–92% of the optimum and MGAPS is 84%–94%,
i.e. far above the worst-case bound and with MGAPS consistently at or above
GAPS.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import PROFILES
from repro.evaluation.experiments import ratio_vs_window
from repro.evaluation.tables import format_paper_expectation, format_series


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_table4_ratio_vs_window(benchmark, record, profile_key):
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        ratio_vs_window,
        kwargs={"profile": profile, "n_objects": scaled(1200), "sample_every": 25},
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Table IV ({profile.name}): approximation ratio (%) vs window length",
        "window_s",
        series,
        value_format="{:.1f}%",
    )
    text += "\n" + format_paper_expectation(
        "GAPS 73%-92% of the optimal burst score, MGAPS 84%-94%; "
        "MGAPS at or above GAPS on every setting."
    )
    print("\n" + text)
    record(f"table4_ratio_window_{profile.name.lower()}", text)

    alpha = 0.5  # default query alpha
    for window, ratio in series["gaps"].items():
        assert ratio >= (1.0 - alpha) / 4.0 * 100.0 - 1e-6
        assert ratio <= 100.0 + 1e-6
        # MGAPS uses strictly more grid placements; small sampling noise aside
        # it should not be materially worse than GAPS.
        assert series["mgaps"][window] >= ratio - 10.0
    assert sum(series["mgaps"].values()) / len(series["mgaps"]) >= 50.0
