"""Tracing-overhead benchmark: the obs tier's cost on the ingestion path.

The tracing layer (:mod:`repro.obs`) ships with an overhead contract:

``tracer_off``
    No tracer installed at all.  Every call site is one
    ``current() is None`` check (or one attribute load on the service) —
    this is the yardstick and exactly the ``bench_ingest`` hot path:
    ``SlidingWindowPair.observe_batch`` + ``detector.apply_events``
    through :class:`~repro.core.monitor.SurgeMonitor.push_many`.

``tracer_disabled``
    A tracer is installed but ``enabled=False``: call sites load it and
    branch on ``.enabled``, reading no clocks and allocating nothing.
    **Bar: ≤2% slower than off.**

``tracer_on``
    Full recording: two ``perf_counter`` reads and one ring append per
    span (window ingest, result settle, every sweep-kernel call).
    **Bar: ≤10% slower than off.**

Every mode ingests the same synthetic stream best-of-``REPEATS``; the
final burst score must be bit-identical across modes (tracing must never
change results).  Breaching a bar fails the run (exit 1) unless
``--force``; as with the other benchmarks, a previous ``BENCH_obs.json``
guards the ``tracer_off`` throughput against >20% regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.core.monitor import SurgeMonitor
from repro.core.query import SurgeQuery
from repro.obs import Tracer, install
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
SCHEMA = "bench_obs/v1"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20

#: Overhead bars the tracing tier must stay under, relative to tracer_off.
DISABLED_OVERHEAD_BAR = 0.02
ENABLED_OVERHEAD_BAR = 0.10

WINDOW_OBJECTS = 2000
TOTAL_OBJECTS = 6000
CHUNK_SIZE = 1024
EXTENT = 8.0
RECT_SIZE = 1.0
ALPHA = 0.5
BACKEND = "python"
ALGORITHM = "ccs"
REPEATS = 5

MODES = ("tracer_off", "tracer_disabled", "tracer_on")


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, EXTENT),
            y=rng.uniform(0.0, EXTENT),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
        )
        for index in range(total)
    ]


def tracer_for_mode(mode: str) -> Tracer | None:
    if mode == "tracer_off":
        return None
    # A large ring so the enabled run measures recording, not trimming
    # pathologies; the per-span cost is what the bar is about.
    return Tracer(enabled=(mode == "tracer_on"))


def run_once(
    mode: str, stream: list[SpatialObject], window_length: float, chunk_size: int
) -> tuple[float, float]:
    """One full ingestion under ``mode``; returns (objects/sec, final score)."""
    query = SurgeQuery(
        rect_width=RECT_SIZE,
        rect_height=RECT_SIZE,
        window_length=window_length,
        alpha=ALPHA,
    )
    monitor = SurgeMonitor(query, algorithm=ALGORITHM, backend=BACKEND)
    install(tracer_for_mode(mode))
    try:
        total = len(stream)
        result = None
        started = time.perf_counter()
        for start in range(0, total, chunk_size):
            monitor.push_many(stream[start : start + chunk_size])
            result = monitor.result()
        elapsed = time.perf_counter() - started
    finally:
        install(None)
    return total / elapsed, (result.score if result is not None else 0.0)


def run_benchmark(total_objects: int, chunk_size: int, repeats: int) -> dict:
    window_length = float(WINDOW_OBJECTS)
    stream = make_stream(total_objects)
    best: dict[str, float] = {mode: 0.0 for mode in MODES}
    scores: dict[str, float] = {}
    # Interleave the modes across repeats AND rotate the starting mode so
    # thermal / scheduling drift hits all three equally — on a noisy box
    # a fixed order biases whichever mode always runs first, which shows
    # up as a phantom overhead larger than the bars being enforced.
    for repeat in range(repeats):
        rotation = repeat % len(MODES)
        for mode in MODES[rotation:] + MODES[:rotation]:
            ops, score = run_once(mode, stream, window_length, chunk_size)
            best[mode] = max(best[mode], ops)
            previous = scores.setdefault(mode, score)
            if previous != score:
                raise AssertionError(
                    f"{mode}: non-deterministic score across repeats "
                    f"({previous!r} vs {score!r})"
                )
        print(
            f"  repeat {repeat + 1}/{repeats}: "
            + "  ".join(f"{mode} {best[mode]:9,.0f} obj/s" for mode in MODES),
            flush=True,
        )
    if len(set(scores.values())) != 1:
        raise AssertionError(
            f"tracing changed the detector result: {scores!r}"
        )
    baseline = best["tracer_off"]
    overheads = {
        mode: max(0.0, 1.0 - best[mode] / baseline) for mode in MODES[1:]
    }
    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "chunk_size": chunk_size,
            "window_objects": WINDOW_OBJECTS,
            "total_objects": total_objects,
            "repeats": repeats,
        },
        "bars": {
            "tracer_disabled": DISABLED_OVERHEAD_BAR,
            "tracer_on": ENABLED_OVERHEAD_BAR,
        },
        "results": {
            mode: {"objects_per_second": best[mode]} for mode in MODES
        },
        "overhead": overheads,
        "final_score": scores["tracer_off"],
    }


def check_bars(report: dict) -> list[str]:
    failures = []
    for mode, bar in report["bars"].items():
        overhead = report["overhead"][mode]
        if overhead > bar:
            failures.append(
                f"{mode}: {100.0 * overhead:.1f}% overhead exceeds the "
                f"{100.0 * bar:.0f}% bar"
            )
    return failures


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    regressions = []
    before = (
        old.get("results", {})
        .get("tracer_off", {})
        .get("objects_per_second")
    )
    after = new["results"]["tracer_off"]["objects_per_second"]
    if before is not None and after < before * (1.0 - tolerance):
        regressions.append(
            f"tracer_off: {before:,.0f} -> {after:,.0f} obj/s "
            f"({100.0 * (1.0 - after / before):.1f}% slower)"
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="write BENCH_obs.json even on a breached bar or regression",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream, fewer repeats (CI smoke mode; never overwrites "
        "the tracked trajectory file, and the bars are only warnings — "
        "a quick run is too noisy to enforce 2%%)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    total_objects = TOTAL_OBJECTS
    chunk_size = CHUNK_SIZE
    repeats = REPEATS
    if args.quick:
        total_objects = TOTAL_OBJECTS // 4
        chunk_size = CHUNK_SIZE // 4
        repeats = 2

    print(
        f"bench_obs: algorithm={ALGORITHM} total={total_objects} "
        f"chunk={chunk_size} repeats={repeats} backend={BACKEND}"
    )
    report = run_benchmark(total_objects, chunk_size, repeats)
    for mode in MODES[1:]:
        print(
            f"  {mode}: {100.0 * report['overhead'][mode]:.2f}% overhead "
            f"(bar {100.0 * report['bars'][mode]:.0f}%)"
        )

    failures = check_bars(report)
    if failures and not args.force:
        if args.quick:
            print(
                "quick-mode warning (not enforced):\n  " + "\n  ".join(failures),
                file=sys.stderr,
            )
        else:
            print(
                "tracing overhead bars breached:\n  " + "\n  ".join(failures),
                file=sys.stderr,
            )
            return 1

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_obs.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
