"""Shared infrastructure for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  Because
pytest captures stdout, each module also writes its formatted rows/series to
``benchmarks/results/<experiment>.txt`` so the regenerated numbers are easy to
inspect after a run (EXPERIMENTS.md is compiled from these files).

The benchmarks run the paper's protocol at a reduced scale so that the whole
harness finishes on a laptop in pure Python.  The default profile
(``REPRO_BENCH_SCALE=0.4``) completes in a few minutes; raise the environment
variable (e.g. ``REPRO_BENCH_SCALE=2``) for larger, slower configurations
whose trends are closer to the paper's full-size streams.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Global multiplier on benchmark stream sizes (REPRO_BENCH_SCALE env var).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def scaled(n: int) -> int:
    """Scale a default stream size by the configured multiplier."""
    return max(50, int(n * SCALE))


def record_output(name: str, text: str) -> Path:
    """Persist a formatted table/series under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture
def record():
    """Fixture handing benchmarks the ``record_output`` helper."""
    return record_output
