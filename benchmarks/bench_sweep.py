"""Microbenchmark of the SL-CSPOT sweep kernels: seed vs python vs numpy.

Measures rectangles-per-second of one full snapshot sweep at several sizes
and writes ``BENCH_sweep.json`` at the repository root so the performance
trajectory is tracked across PRs.  Three kernels are timed:

``python_seed``
    A faithful copy of the original pure-Python kernel (full slab rescan at
    every y event), kept here as the fixed reference point of the
    trajectory.

``python``
    The optimized pure-Python backend (incremental slab evaluation).

``numpy``
    The vectorized difference-array backend (skipped when numpy is not
    installed).

Regression guard
----------------
When a previous ``BENCH_sweep.json`` exists, the script refuses to overwrite
it if any backend regressed by more than ``REGRESSION_TOLERANCE`` (20%) on
any size, exiting non-zero; pass ``--force`` to overwrite anyway.  The seed
reference is exempt — it is the yardstick, not a shipped code path.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import time
from pathlib import Path

from repro.core.sweep_backends import available_backends, get_backend
from repro.core.sweep_backends.types import LabeledRect
from repro.geometry.primitives import Point

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
SCHEMA = "bench_sweep/v1"
SIZES = (100, 500, 2000)
SEED = 20180416  # the paper's conference date, for want of a better constant
REGRESSION_TOLERANCE = 0.20


# ----------------------------------------------------------------------
# Reference: the seed kernel (pre-backend refactor), verbatim behaviour.
# ----------------------------------------------------------------------
def seed_sweep(rect_list, alpha, current_length, past_length):
    """The original O(|ys| · |slabs|) kernel: full rescan at every y event."""
    xs = sorted({r.min_x for r in rect_list} | {r.max_x for r in rect_list})
    slab_count = 2 * len(xs) - 1
    slab_repr_x = [0.0] * slab_count
    for index, x in enumerate(xs):
        slab_repr_x[2 * index] = x
        if index + 1 < len(xs):
            slab_repr_x[2 * index + 1] = (x + xs[index + 1]) / 2.0
    x_position = {x: index for index, x in enumerate(xs)}
    slab_ranges = [
        (2 * x_position[r.min_x], 2 * x_position[r.max_x]) for r in rect_list
    ]

    ys = sorted({r.min_y for r in rect_list} | {r.max_y for r in rect_list})
    ys_desc = list(reversed(ys))
    tops, bottoms = {}, {}
    for index, rect in enumerate(rect_list):
        tops.setdefault(rect.max_y, []).append(index)
        bottoms.setdefault(rect.min_y, []).append(index)

    fc = [0.0] * slab_count
    fp = [0.0] * slab_count
    best_score = -math.inf
    best_point = None
    one_minus_alpha = 1.0 - alpha

    def evaluate(y_repr):
        nonlocal best_score, best_point
        for j in range(slab_count):
            slab_fc = fc[j]
            increase = slab_fc - fp[j]
            if increase < 0.0:
                increase = 0.0
            score = alpha * increase + one_minus_alpha * slab_fc
            if score > best_score:
                best_score = score
                best_point = Point(slab_repr_x[j], y_repr)

    def apply(index, sign):
        rect = rect_list[index]
        lo, hi = slab_ranges[index]
        delta = sign * rect.weight / (
            current_length if rect.in_current else past_length
        )
        target = fc if rect.in_current else fp
        for j in range(lo, hi + 1):
            target[j] += delta

    for position, y in enumerate(ys_desc):
        for index in tops.get(y, ()):
            apply(index, +1.0)
        evaluate(y)
        for index in bottoms.get(y, ()):
            apply(index, -1.0)
        if position + 1 < len(ys_desc):
            evaluate((y + ys_desc[position + 1]) / 2.0)

    return best_score, best_point


def make_snapshot(n: int, seed: int = SEED) -> list[LabeledRect]:
    """A reproducible random snapshot shaped like one dense detector cell."""
    rng = random.Random(seed + n)
    rects = []
    for _ in range(n):
        x = rng.uniform(0.0, 10.0)
        y = rng.uniform(0.0, 10.0)
        w = rng.uniform(0.2, 2.0)
        h = rng.uniform(0.2, 2.0)
        rects.append(
            LabeledRect(x, y, x + w, y + h, rng.uniform(0.5, 10.0), rng.random() < 0.7)
        )
    return rects


def time_call(fn, min_seconds: float = 0.25, max_repeats: int = 50) -> float:
    """Best-of wall-clock seconds for one call, repeating cheap calls."""
    best = math.inf
    elapsed_total = 0.0
    repeats = 0
    while repeats < max_repeats and (repeats < 3 or elapsed_total < min_seconds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        elapsed_total += elapsed
        repeats += 1
    return best


def run_benchmark(sizes=SIZES) -> dict:
    kernels = {
        "python_seed": lambda rects, a, wc, wp: seed_sweep(rects, a, wc, wp),
        "python": get_backend("python").sweep,
    }
    if "numpy" in available_backends():
        from repro.core.sweep_backends.numpy_backend import NumpySweepBackend

        kernels["numpy"] = get_backend("numpy").sweep
        kernels["numpy_cumsum"] = NumpySweepBackend(strategy="cumsum").sweep

    results: dict[str, dict[str, dict[str, float]]] = {}
    scores: dict[int, dict[str, float]] = {}
    for name, kernel in kernels.items():
        results[name] = {}
        for n in sizes:
            rects = make_snapshot(n)
            # Sanity: all kernels must agree on the optimum before timing.
            outcome = kernel(rects, 0.5, 300.0, 300.0)
            score = outcome[0] if isinstance(outcome, tuple) else outcome.score
            scores.setdefault(n, {})[name] = score
            seconds = time_call(lambda: kernel(rects, 0.5, 300.0, 300.0))
            results[name][str(n)] = {
                "seconds_per_sweep": seconds,
                "rects_per_second": n / seconds,
            }
            print(
                f"  {name:>12} n={n:<5} {seconds * 1e3:9.2f} ms/sweep   "
                f"{n / seconds:12.0f} rects/s",
                flush=True,
            )
    for n, per_kernel in scores.items():
        reference = per_kernel["python_seed"]
        for name, score in per_kernel.items():
            if abs(score - reference) > 1e-9 * max(1.0, abs(reference)):
                raise AssertionError(
                    f"kernel {name} disagrees with seed at n={n}: "
                    f"{score!r} vs {reference!r}"
                )

    largest = str(max(sizes))
    speedups = {}
    for name in kernels:
        if name == "python_seed":
            continue
        speedups[f"{name}_vs_seed_n{largest}"] = (
            results[name][largest]["rects_per_second"]
            / results["python_seed"][largest]["rects_per_second"]
        )
    return {
        "schema": SCHEMA,
        "config": {
            "sizes": list(sizes),
            "seed": SEED,
            "alpha": 0.5,
            "window_length": 300.0,
        },
        "results": results,
        "speedups": speedups,
    }


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    """Backends (not the seed reference) that slowed down beyond tolerance."""
    regressions = []
    for name, sizes in old.get("results", {}).items():
        if name == "python_seed":
            continue
        if name not in new["results"]:
            # Overwriting would silently drop this kernel's trajectory
            # (typically a numpy-free environment re-running the bench).
            regressions.append(
                f"{name}: kernel missing from the new run (backend not "
                "available?); refusing to drop its recorded trajectory"
            )
            continue
        for n, metrics in sizes.items():
            if n not in new["results"][name]:
                continue
            before = metrics["rects_per_second"]
            after = new["results"][name][n]["rects_per_second"]
            if after < before * (1.0 - tolerance):
                regressions.append(
                    f"{name} n={n}: {before:.0f} -> {after:.0f} rects/s "
                    f"({100.0 * (1.0 - after / before):.1f}% slower)"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force", action="store_true", help="overwrite BENCH_sweep.json even on regression"
    )
    parser.add_argument(
        "--quick", action="store_true", help="skip the largest size (CI smoke mode)"
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    sizes = SIZES[:-1] if args.quick else SIZES
    print(f"bench_sweep: sizes={list(sizes)} backends={list(available_backends())}")
    report = run_benchmark(sizes)
    for label, value in report["speedups"].items():
        print(f"  {label}: {value:.1f}x")

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        # Smoke mode: without the largest size the record would be partial,
        # so never clobber the tracked trajectory file with it.
        print("quick mode: skipping BENCH_sweep.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: performance regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
