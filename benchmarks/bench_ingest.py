"""End-to-end ingestion throughput benchmark: objects/sec per detector.

``bench_sweep.py`` tracks the inner SL-CSPOT kernel; this benchmark tracks
what actually gates serving scale in the paper's continuous-query setting —
sustained stream-to-answer throughput.  For every detector two ingestion
paths are timed over the same synthetic stream (uniform arrivals, windows
holding ``WINDOW_OBJECTS`` objects each, results read once per chunk):

``push_loop_baseline``
    The pre-batching event loop: ``SlidingWindowPair.observe`` per object,
    ``detector.process`` per window event, one ``result()`` read per chunk.
    This is exactly what ``SurgeMonitor.push_many`` did before the batched
    event path existed, kept here as the fixed reference point.

``push_many``
    The batched path ``SurgeMonitor.push_many`` uses today:
    ``SlidingWindowPair.observe_batch`` (bulk window maintenance) +
    ``detector.apply_events`` (bulk cell/bound/heap maintenance, one result
    settlement per chunk) + one ``result()`` read per chunk.

Both paths run the pure-python sweep backend so the recorded numbers do not
depend on whether numpy happens to be installed.  The slow baselines run a
scaled-down stream (recorded per detector in the JSON) so the whole
benchmark finishes in a few minutes; ``naive`` and ``ag2`` are excluded by
default because their per-event cost makes even a scaled run dominate the
suite (pass ``--detectors`` to include them).

Regression guard
----------------
As with ``BENCH_sweep.json``: if a previous ``BENCH_ingest.json`` exists,
the script refuses to overwrite it when any detector's ``push_many``
objects/sec regressed by more than ``REGRESSION_TOLERANCE`` (20%); pass
``--force`` to overwrite anyway.  The ``push_loop_baseline`` numbers are the
yardstick and are exempt.

Usage::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.core.monitor import make_detector
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"
SCHEMA = "bench_ingest/v1"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20

#: Default workload: windows of ~2000 objects each, three windows of stream.
WINDOW_OBJECTS = 2000
TOTAL_OBJECTS = 6000
CHUNK_SIZE = 1024
EXTENT = 8.0
RECT_SIZE = 1.0
ALPHA = 0.5
BACKEND = "python"

#: Detectors benchmarked by default, with a per-detector stream scale factor
#: (1.0 = the full default workload).  The unpruned baselines sweep every
#: affected cell per event, so they get a smaller stream to keep the total
#: benchmark runtime reasonable; the scale is recorded in the JSON.
DEFAULT_DETECTORS: dict[str, float] = {
    "ccs": 1.0,
    "bccs": 1.0,
    "base": 0.25,
    "gaps": 1.0,
    "mgaps": 1.0,
    "kccs": 1.0,
}


def make_stream(total: int, seed: int = SEED, extent: float = EXTENT) -> list[SpatialObject]:
    """Uniform synthetic stream: one object per second, weights in [0.5, 10]."""
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, extent),
            y=rng.uniform(0.0, extent),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
        )
        for index in range(total)
    ]


def run_path(
    name: str,
    mode: str,
    stream: list[SpatialObject],
    window_length: float,
    chunk_size: int,
) -> tuple[float, float]:
    """Time one full ingestion of ``stream``; returns (objects/sec, final score)."""
    query = SurgeQuery(
        rect_width=RECT_SIZE,
        rect_height=RECT_SIZE,
        window_length=window_length,
        alpha=ALPHA,
    )
    detector = make_detector(name, query, backend=BACKEND)
    windows = SlidingWindowPair(query.current_length, query.past_length)
    total = len(stream)
    result = None
    started = time.perf_counter()
    if mode == "loop":
        for start in range(0, total, chunk_size):
            for obj in stream[start : start + chunk_size]:
                for event in windows.observe(obj):
                    detector.process(event)
            result = detector.result()
    else:
        for start in range(0, total, chunk_size):
            batch = windows.observe_batch(stream[start : start + chunk_size])
            detector.apply_events(batch)
            result = detector.result()
    elapsed = time.perf_counter() - started
    return total / elapsed, (result.score if result is not None else 0.0)


def run_benchmark(detectors: dict[str, float], total_objects: int, chunk_size: int) -> dict:
    results: dict[str, dict] = {}
    for name, scale in detectors.items():
        total = max(chunk_size, int(total_objects * scale))
        window_length = float(max(1, int(WINDOW_OBJECTS * scale)))
        stream = make_stream(total)
        loop_ops, loop_score = run_path(name, "loop", stream, window_length, chunk_size)
        many_ops, many_score = run_path(name, "batch", stream, window_length, chunk_size)
        # Both paths must agree on the final answer (up to FP associativity).
        if abs(loop_score - many_score) > 1e-6 * max(1.0, abs(loop_score)):
            raise AssertionError(
                f"{name}: batched path disagrees with the event loop "
                f"({many_score!r} vs {loop_score!r})"
            )
        speedup = many_ops / loop_ops if loop_ops > 0 else float("inf")
        results[name] = {
            "workload": {
                "total_objects": total,
                "window_objects": int(window_length),
                "chunk_size": chunk_size,
            },
            "push_loop_baseline": {"objects_per_second": loop_ops},
            "push_many": {"objects_per_second": many_ops},
            "speedup": speedup,
        }
        print(
            f"  {name:>6}  loop {loop_ops:10,.0f} obj/s   "
            f"push_many {many_ops:10,.0f} obj/s   {speedup:5.1f}x "
            f"(n={total}, |W|={int(window_length)})",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "extent": EXTENT,
            "rect_size": RECT_SIZE,
            "alpha": ALPHA,
            "backend": BACKEND,
            "chunk_size": chunk_size,
            "window_objects": WINDOW_OBJECTS,
            "total_objects": total_objects,
        },
        "results": results,
    }


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    """Detectors whose batched throughput slowed down beyond tolerance."""
    regressions = []
    for name, record in old.get("results", {}).items():
        if name not in new["results"]:
            regressions.append(
                f"{name}: detector missing from the new run; refusing to "
                "drop its recorded trajectory"
            )
            continue
        before = record["push_many"]["objects_per_second"]
        after = new["results"][name]["push_many"]["objects_per_second"]
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{name}: {before:,.0f} -> {after:,.0f} obj/s "
                f"({100.0 * (1.0 - after / before):.1f}% slower)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_ingest.json even on regression",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream, fast detectors only (CI smoke mode; never "
        "overwrites the tracked trajectory file)",
    )
    parser.add_argument(
        "--detectors",
        nargs="+",
        metavar="NAME",
        default=None,
        help="detector names to benchmark (default: %s)"
        % " ".join(DEFAULT_DETECTORS),
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    if args.detectors is not None:
        detectors = {name: DEFAULT_DETECTORS.get(name, 1.0) for name in args.detectors}
    else:
        detectors = dict(DEFAULT_DETECTORS)
    total_objects = TOTAL_OBJECTS
    chunk_size = CHUNK_SIZE
    if args.quick:
        detectors = {name: scale for name, scale in detectors.items() if name in ("ccs", "gaps")}
        total_objects = TOTAL_OBJECTS // 4
        chunk_size = CHUNK_SIZE // 4

    print(
        f"bench_ingest: detectors={list(detectors)} total={total_objects} "
        f"chunk={chunk_size} backend={BACKEND}"
    )
    report = run_benchmark(detectors, total_objects, chunk_size)

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_ingest.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
