"""Distributed shard tier benchmark: remote-executor throughput + failover.

Two questions decide whether the fault-tolerant remote executor
(:mod:`repro.distributed`) is deployable:

``remote overhead / scaling``
    A q64 query grid over one shared stream is replayed through the
    ``remote`` executor with a fleet of 1, 2 and 4 spawned worker
    processes (4 shards, shared plan) and compared against the in-process
    serial reference.  Every cell's final results must be **bit-identical**
    to serial — the run fails otherwise — and the recorded
    ``object_query_pairs_per_second`` shows what the wire (pickled chunks
    over loopback TCP, one RPC per shard per chunk) costs against the
    in-process baselines.

``failover``
    The same workload with a 2-worker fleet and a checkpoint directory;
    one worker is SIGKILLed at mid-stream.  The run must *still* finish
    bit-identical to serial (checkpoint-base restore + ledger replay on
    the survivor), and the cell records the measured
    ``failover_seconds``, ``workers_lost`` and ``shards_failed_over``.

Regression guard
----------------
As with the other BENCH files: if a previous ``BENCH_remote.json``
exists, the script refuses to overwrite it when any fleet cell's
pairs/sec regressed by more than ``REGRESSION_TOLERANCE`` (20%);
``--force`` overrides.  The failover latency is recorded for the ROADMAP
table but not guarded (it is dominated by process death detection and
snapshot IO, both machine-noise-prone at this scale).

Usage::

    PYTHONPATH=src python benchmarks/bench_remote.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.evaluation.runner import run_service
from repro.service import SurgeService, make_query_grid
from repro.state import CheckpointPolicy
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_remote.json"
SCHEMA = "bench_remote/v1"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20

TOTAL_OBJECTS = 4096
CHUNK_SIZE = 256
N_QUERIES = 64
SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
FAILOVER_WORKERS = 2
FAILOVER_CHECKPOINT_EVERY = 8
EXTENT = 8.0
BASE_RECT = (1.0, 1.0)
BASE_WINDOW = 600.0
ALPHA = 0.5
ALGORITHM = "ccs"
BACKEND = "python"
VOCABULARY = ("traffic", "food", "weather", "sports", "news", "music", "work", "travel")

#: Fleet options shared by every remote cell (heartbeats fast enough to
#: notice the staged kill well inside the run).
FLEET = {
    "join_timeout": 120.0,
    "heartbeat_interval": 0.25,
    "heartbeat_miss_budget": 2,
}


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    """Uniform keyword-tagged stream, one object per second (stdlib only)."""
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, EXTENT),
            y=rng.uniform(0.0, EXTENT),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
            attributes={"keywords": (rng.choice(VOCABULARY),)},
        )
        for index in range(total)
    ]


def make_specs(n_queries: int):
    return make_query_grid(
        n_queries,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY,
    )


def assert_parity(reference, other, label: str) -> None:
    for query_id, result in reference.items():
        if other[query_id] != result:
            raise AssertionError(
                f"{label}: query {query_id} diverged from the serial reference"
            )


def run_fleet_cells(stream, n_queries: int) -> tuple[dict, dict]:
    specs = make_specs(n_queries)
    serial = run_service(
        specs, stream, shards=SHARDS, executor="serial", chunk_size=CHUNK_SIZE
    )
    serial_pps = serial.pairs_per_second
    print(f"  serial ({SHARDS} shards):      {serial_pps:10,.0f} pairs/s", flush=True)

    cells = {}
    for workers in WORKER_COUNTS:
        outcome = run_service(
            specs,
            stream,
            shards=SHARDS,
            executor="remote",
            executor_options=dict(FLEET, workers=workers, spawn_workers=workers),
            chunk_size=CHUNK_SIZE,
        )
        assert_parity(
            serial.final_results, outcome.final_results, f"remote workers={workers}"
        )
        pps = outcome.pairs_per_second
        cells[f"workers_{workers}"] = {
            "workers": workers,
            "object_query_pairs_per_second": pps,
            "wall_seconds": outcome.wall_seconds,
            "relative_to_serial": pps / serial_pps if serial_pps else 0.0,
        }
        print(
            f"  remote {workers} worker(s):     {pps:10,.0f} pairs/s  "
            f"({pps / serial_pps:5.2f}x serial, bit-identical)",
            flush=True,
        )
    return {"object_query_pairs_per_second": serial_pps,
            "wall_seconds": serial.wall_seconds}, cells


def run_failover_cell(stream, n_queries: int, workdir: Path) -> dict:
    """Kill one of two workers at mid-stream; the run must not notice."""
    specs = make_specs(n_queries)
    serial = run_service(
        specs, stream, shards=SHARDS, executor="serial", chunk_size=CHUNK_SIZE
    )
    chunks_total = -(-len(stream) // CHUNK_SIZE)
    kill_at = chunks_total // 2
    with SurgeService(
        specs,
        shards=SHARDS,
        executor="remote",
        executor_options=dict(
            FLEET, workers=FAILOVER_WORKERS, spawn_workers=FAILOVER_WORKERS
        ),
        checkpoint_dir=workdir / "failover",
        checkpoint_policy=CheckpointPolicy(every_chunks=FAILOVER_CHECKPOINT_EVERY),
    ) as service:
        service.results()  # warm the fleet outside the measured window
        started = time.perf_counter()
        for index, _ in enumerate(service.run(stream, CHUNK_SIZE)):
            if index == kill_at:
                os.kill(service._executor.spawned[0].pid, signal.SIGKILL)
        wall = time.perf_counter() - started
        final_results = service.results()
        distributed = service.distributed_stats()
    assert_parity(serial.final_results, final_results, "failover cell")
    if distributed["workers_lost"] < 1 or distributed["shards_failed_over"] < 1:
        raise AssertionError(
            "failover cell never lost a worker — the staged kill misfired"
        )
    print(
        f"  failover (kill 1 of {FAILOVER_WORKERS} at chunk {kill_at}): "
        f"{distributed['shards_failed_over']} shard(s) failed over in "
        f"{distributed['failover_seconds']:.3f}s, run finished bit-identical "
        f"in {wall:.2f}s",
        flush=True,
    )
    return {
        "workers": FAILOVER_WORKERS,
        "kill_at_chunk": kill_at,
        "chunks_total": chunks_total,
        "checkpoint_every_chunks": FAILOVER_CHECKPOINT_EVERY,
        "wall_seconds": wall,
        "failover_seconds": distributed["failover_seconds"],
        "workers_lost": distributed["workers_lost"],
        "shards_failed_over": distributed["shards_failed_over"],
        "rpc_retries": distributed["rpc_retries"],
        "rpc_timeouts": distributed["rpc_timeouts"],
    }


def run_benchmark(total_objects: int, n_queries: int) -> dict:
    stream = make_stream(total_objects)
    serial_cell, fleet_cells = run_fleet_cells(stream, n_queries)
    workdir = Path(tempfile.mkdtemp(prefix="bench-remote-"))
    try:
        failover_cell = run_failover_cell(stream, n_queries, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "total_objects": total_objects,
            "chunk_size": CHUNK_SIZE,
            "n_queries": n_queries,
            "shards": SHARDS,
            "worker_counts": list(WORKER_COUNTS),
            "extent": EXTENT,
            "base_rect": list(BASE_RECT),
            "base_window": BASE_WINDOW,
            "alpha": ALPHA,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "cpu_count": os.cpu_count(),
        },
        "results": {
            "serial": serial_cell,
            **fleet_cells,
            "failover": failover_cell,
        },
    }


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    """Regressions of the guarded metric (remote pairs/sec per fleet size)."""
    regressions = []
    for workers in WORKER_COUNTS:
        cell = f"workers_{workers}"
        try:
            before = old["results"][cell]["object_query_pairs_per_second"]
        except (KeyError, TypeError):
            regressions.append(
                f"{cell}: previous file is not a readable {SCHEMA} report"
            )
            continue
        after = new["results"][cell]["object_query_pairs_per_second"]
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{cell}: {before:,.0f} -> {after:,.0f} pairs/s "
                f"({100.0 * (1.0 - after / before):.1f}% slower)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_remote.json even on regression",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream and grid (CI smoke mode; never overwrites the "
        "tracked trajectory file)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    total_objects = TOTAL_OBJECTS // 4 if args.quick else TOTAL_OBJECTS
    n_queries = 16 if args.quick else N_QUERIES
    print(
        f"bench_remote: queries={n_queries} total={total_objects} "
        f"chunk={CHUNK_SIZE} shards={SHARDS} workers={list(WORKER_COUNTS)} "
        f"backend={BACKEND}"
    )
    report = run_benchmark(total_objects, n_queries)

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_remote.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
