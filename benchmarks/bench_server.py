"""Live-traffic latency harness for the network tier (``repro.server``).

``bench_service.py`` measures the engine with function calls; this harness
measures the service **as deployed**: a real :class:`~repro.server.server.
SurgeServer` on a loopback socket, hundreds of concurrent client
connections, and the full wire path — frame codec, asyncio front end,
command queue, result-bus pump threads — between an ingested object and the
subscriber that sees its effect.

Per concurrency level ``N`` (default {8, 32, 128}):

* **N registrant users** connect concurrently, each waiting a seeded
  Locust-style ``between(a, b)`` think time, then registering one query
  over the wire (grid-cycled keyword, varied priority — the full
  ``QuerySpec`` travels as JSON) and opening a *second* connection
  subscribed to just that query (``2N`` connections per cell, plus admin);
* **one feeder connection** then streams a seeded
  :class:`~repro.streams.faults.FaultInjector` workload (10% bounded
  disorder, absorbed by ``max_lateness``) in timestamp-ordered batches.
  One feeder keeps the *arrival sequence* deterministic — concurrency
  lives in the subscriber fan-out, which is where the latency is;
* each batch's send instant is recorded (``perf_counter``) and mapped to
  the chunks its ack reports dispatched; every subscriber records the
  arrival instant of each pushed result frame.  **Result lag** for a
  chunk = subscriber arrival − batch send: the end-to-end time from
  offering data to the service until a tenant holds the answer.

Recorded per cell: ingest throughput (objects/sec through the full wire
round trip) and the p50/p95/p99 of the pooled per-frame result lag.  Every
cell's final scores are cross-checked **bit-identical** against an
in-process serial reference (same specs, same arrival sequence, same
chunking) before the cell may be recorded — a fast-but-wrong transport
cannot pass.

Regression guard
----------------
As with the other BENCH files: if a previous ``BENCH_server.json`` exists,
the script refuses to overwrite it when any cell's objects/sec regressed
by more than ``REGRESSION_TOLERANCE`` (20%); ``--force`` overrides.  Lag
percentiles are recorded for trajectory, not guarded — wall-clock latency
on shared CI hosts is too noisy to gate on.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.query import SurgeQuery
from repro.server import ServerClient, SurgeServer
from repro.server.protocol import decode_result
from repro.service import QuerySpec, SurgeService
from repro.streams.faults import FaultInjector
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"
SCHEMA = "bench_server/v1"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20

TOTAL_OBJECTS = 4096
CHUNK_SIZE = 64
BATCH_SIZE = 64
EXTENT = 8.0
WINDOW = 600.0
ALPHA = 0.5
ALGORITHM = "ccs"
BACKEND = "python"
VOCABULARY = ("traffic", "food", "weather", "sports", "news", "music", "work", "travel")
CONCURRENCY_LEVELS = (8, 32, 128)
DISORDER_FRACTION = 0.10
MAX_DISORDER = 2.0
THINK_TIME = (0.001, 0.010)  # Locust-style between(a, b), seconds
SUBSCRIBER_MAXSIZE = 8192  # deep enough that no lag sample is ever dropped


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, EXTENT),
            y=rng.uniform(0.0, EXTENT),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
            attributes={"keywords": (rng.choice(VOCABULARY),)},
        )
        for index in range(total)
    ]


def make_spec(user_index: int) -> QuerySpec:
    side = 1.0 + 0.25 * (user_index % 4)
    return QuerySpec(
        query_id=f"user-{user_index:04d}",
        query=SurgeQuery(side, side, window_length=WINDOW, alpha=ALPHA),
        algorithm=ALGORITHM,
        keyword=VOCABULARY[user_index % len(VOCABULARY)],
        backend=BACKEND,
        priority=user_index % 3,
    )


def percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class SubscriberUser(threading.Thread):
    """One registrant: think, register the query, then pump result frames."""

    def __init__(self, user_index: int, port: int, ready: threading.Barrier) -> None:
        super().__init__(name=f"user-{user_index}", daemon=True)
        self.user_index = user_index
        self.port = port
        self.ready = ready
        self.spec = make_spec(user_index)
        self.rng = random.Random(SEED + 7919 * user_index)
        self.arrivals: list[tuple[int, float]] = []  # (chunk_index, recv_t)
        self.error: BaseException | None = None
        self._conn: ServerClient | None = None

    def run(self) -> None:
        try:
            time.sleep(self.rng.uniform(*THINK_TIME))
            with ServerClient("127.0.0.1", self.port, timeout=120) as admin:
                admin.register(self.spec)
            self._conn = ServerClient("127.0.0.1", self.port, timeout=120)
            self._conn.subscribe(
                maxsize=SUBSCRIBER_MAXSIZE,
                queries=[self.spec.query_id],
                name=self.spec.query_id,
            )
            self.ready.wait(timeout=120)
            while True:
                frame = self._conn.recv_raw()
                if frame.get("type") == "result":
                    self.arrivals.append(
                        (frame["chunk_index"], time.perf_counter())
                    )
        except (ConnectionError, OSError):
            pass  # server drained: the cell is over
        except BaseException as exc:
            self.error = exc
            try:
                self.ready.wait(timeout=1)
            except Exception:
                pass

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()


def serial_reference(specs, arrivals) -> dict:
    with SurgeService(specs, max_lateness=MAX_DISORDER) as service:
        for _ in service.feed(arrivals, CHUNK_SIZE):
            pass
        for _ in service.flush_pending(CHUNK_SIZE):
            pass
        return {
            query_id: (result.score if result is not None else None)
            for query_id, result in service.results().items()
        }


def run_cell(n_users: int, arrivals: list, reference_scores: dict) -> dict:
    service = SurgeService([], max_lateness=MAX_DISORDER)
    server = SurgeServer(service, port=0, chunk_size=CHUNK_SIZE)
    server.start_background()
    users: list[SubscriberUser] = []
    try:
        ready = threading.Barrier(n_users + 1)
        register_started = time.perf_counter()
        users = [SubscriberUser(index, server.port, ready) for index in range(n_users)]
        for user in users:
            user.start()
        ready.wait(timeout=300)
        failed = [user for user in users if user.error is not None]
        if failed:
            raise RuntimeError(f"user setup failed: {failed[0].error!r}")
        register_seconds = time.perf_counter() - register_started

        # Phase 2: one feeder streams the workload; batch send instants map
        # to the chunks each ack reports dispatched.
        chunk_send_t: dict[int, float] = {}
        ingest_started = time.perf_counter()
        with ServerClient("127.0.0.1", server.port, timeout=300) as feeder:
            chunk_cursor = 0
            for start in range(0, len(arrivals), BATCH_SIZE):
                batch = arrivals[start : start + BATCH_SIZE]
                sent_at = time.perf_counter()
                ack = feeder.ingest(batch)
                for chunk_index in range(chunk_cursor, ack["chunk_offset"]):
                    chunk_send_t[chunk_index] = sent_at
                chunk_cursor = ack["chunk_offset"]
            sent_at = time.perf_counter()
            ack = feeder.flush()
            for chunk_index in range(chunk_cursor, ack["chunk_offset"]):
                chunk_send_t[chunk_index] = sent_at
            total_chunks = ack["chunk_offset"]
            ingest_seconds = time.perf_counter() - ingest_started

            # Wait until every subscriber holds the final chunk's frame.
            last_chunk = total_chunks - 1
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if all(
                    user.arrivals and user.arrivals[-1][0] >= last_chunk
                    for user in users
                ):
                    break
                time.sleep(0.01)

            wire_scores = {
                query_id: (None if record is None else record["score"])
                for query_id, record in feeder.results().items()
            }
            snapshot = feeder.stats()
        if wire_scores != reference_scores:
            raise AssertionError(
                f"c{n_users}: wire results diverge from the in-process "
                f"serial reference"
            )
        for record in snapshot["subscriptions"]:
            offered = record["offered"]
            settled = record["delivered"] + record["dropped"] + record["depth"]
            if offered != settled:
                raise AssertionError(
                    f"c{n_users}: conservation violated for subscription "
                    f"{record['name']!r}: offered={offered} != "
                    f"delivered+dropped+depth={settled}"
                )
    finally:
        try:
            server.drain(timeout=120)
        finally:
            for user in users:
                user.close()
            for user in users:
                user.join(timeout=30)
            service.close()

    lags = [
        recv_t - chunk_send_t[chunk_index]
        for user in users
        for chunk_index, recv_t in user.arrivals
        if chunk_index in chunk_send_t
    ]
    expected_frames = total_chunks * n_users
    return {
        "users": n_users,
        "connections": 2 * n_users + 1,
        "objects_per_second": (
            len(arrivals) / ingest_seconds if ingest_seconds > 0 else 0.0
        ),
        "ingest_wall_seconds": ingest_seconds,
        "register_wall_seconds": register_seconds,
        "chunks": total_chunks,
        "result_frames": len(lags),
        "expected_frames": expected_frames,
        "lag_seconds": {
            "p50": percentile(lags, 0.50),
            "p95": percentile(lags, 0.95),
            "p99": percentile(lags, 0.99),
            "max": max(lags) if lags else 0.0,
            "samples": len(lags),
        },
    }


def run_benchmark(levels, total_objects: int) -> dict:
    clean = make_stream(total_objects)
    injector = FaultInjector(
        clean,
        seed=SEED,
        disorder_fraction=DISORDER_FRACTION,
        max_disorder=MAX_DISORDER,
    )
    arrivals = injector.materialize()
    results: dict[str, dict] = {}
    for n_users in levels:
        specs = [make_spec(index) for index in range(n_users)]
        reference_scores = serial_reference(specs, arrivals)
        started = time.perf_counter()
        cell = run_cell(n_users, arrivals, reference_scores)
        results[f"c{n_users}"] = cell
        lag = cell["lag_seconds"]
        print(
            f"  c{n_users:>4}  {cell['objects_per_second']:9,.0f} obj/s  "
            f"lag p50 {1000 * lag['p50']:7.1f} ms  "
            f"p95 {1000 * lag['p95']:7.1f} ms  "
            f"p99 {1000 * lag['p99']:7.1f} ms  "
            f"({cell['result_frames']}/{cell['expected_frames']} frames, "
            f"total {time.perf_counter() - started:6.1f}s)",
            flush=True,
        )
    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "total_objects": total_objects,
            "chunk_size": CHUNK_SIZE,
            "batch_size": BATCH_SIZE,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "window": WINDOW,
            "alpha": ALPHA,
            "vocabulary_size": len(VOCABULARY),
            "disorder_fraction": DISORDER_FRACTION,
            "max_lateness": MAX_DISORDER,
            "think_time": list(THINK_TIME),
            "concurrency_levels": list(levels),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    regressions = []
    for cell_key, cell in old.get("results", {}).items():
        new_cell = new["results"].get(cell_key)
        if new_cell is None:
            regressions.append(
                f"{cell_key}: cell missing from the new run; refusing to "
                "drop its recorded trajectory"
            )
            continue
        before = cell["objects_per_second"]
        after = new_cell["objects_per_second"]
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{cell_key}: {before:,.0f} -> {after:,.0f} obj/s "
                f"({100.0 * (1.0 - after / before):.1f}% slower)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_server.json even on regression",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small levels and stream (CI smoke mode; never overwrites the "
        "tracked trajectory file)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    levels, total_objects = CONCURRENCY_LEVELS, TOTAL_OBJECTS
    if args.quick:
        levels, total_objects = (4, 8), TOTAL_OBJECTS // 8

    print(
        f"bench_server: levels={list(levels)} total={total_objects} "
        f"chunk={CHUNK_SIZE} batch={BATCH_SIZE} "
        f"disorder={DISORDER_FRACTION:.0%} cpu_count={os.cpu_count()}"
    )
    report = run_benchmark(levels, total_objects)

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_server.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
