"""Durability benchmark: checkpoint overhead and crash-recovery wall time.

Two questions decide whether the checkpoint subsystem (:mod:`repro.state`)
is deployable at serving scale:

``checkpoint overhead``
    How many objects/sec does the default checkpoint policy cost?  The same
    keyword-tagged stream is replayed through the same
    :class:`repro.service.SurgeService` twice — once plain, once with a
    checkpoint directory attached (WAL append per chunk + full service
    snapshot every ``CHECKPOINT_EVERY`` chunks) — and the throughput ratio
    is recorded as ``overhead_fraction``.  The acceptance bar is **≤ 20%**
    at the default policy: the run *fails* (and refuses to write) beyond it.

``recovery speedup``
    After a crash at 75% of the stream, how does restore-plus-tail-replay
    compare to replaying everything from scratch?
    :func:`repro.evaluation.runner.measure_recovery` stages the crash,
    times both paths and asserts the recovered state is bit-identical to
    the full replay at the crash point and at the end of the stream.

Regression guard
----------------
As with the other BENCH files: if a previous ``BENCH_recovery.json``
exists, the script refuses to overwrite it when the checkpointed
objects/sec regressed by more than ``REGRESSION_TOLERANCE`` (20%);
``--force`` overrides.  The recovery wall times are recorded for the
ROADMAP table but not guarded (they measure disk + pickle latency, which is
machine-noise-prone at this scale).

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py [--force] [--quick]
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.evaluation.runner import measure_recovery, run_service
from repro.service import make_query_grid
from repro.state import CheckpointPolicy
from repro.streams.objects import SpatialObject

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
SCHEMA = "bench_recovery/v1"
SEED = 20180416
REGRESSION_TOLERANCE = 0.20
#: Acceptance bar: checkpointing at the default policy may cost at most
#: this fraction of the no-checkpoint throughput.
MAX_OVERHEAD_FRACTION = 0.20

TOTAL_OBJECTS = 16384
CHUNK_SIZE = 256
#: The default service policy (repro.service.DEFAULT_CHECKPOINT_EVERY_CHUNKS).
CHECKPOINT_EVERY = 64
#: A deliberately aggressive cadence measured alongside the default: it
#: snapshots 8x as often, so the per-snapshot cost is actually visible in
#: the throughput delta instead of vanishing into one snapshot per run.
TIGHT_CHECKPOINT_EVERY = 8
#: Cadence of the staged crash — prime, so the crash chunk is never exactly
#: a checkpoint and the timed resume always includes a real tail replay.
RECOVERY_CHECKPOINT_EVERY = 7
CRASH_FRACTION = 0.75
N_QUERIES = 8
EXTENT = 8.0
BASE_RECT = (1.0, 1.0)
BASE_WINDOW = 600.0
ALPHA = 0.5
ALGORITHM = "ccs"
BACKEND = "python"
VOCABULARY = ("traffic", "food", "weather", "sports", "news", "music", "work", "travel")


def make_stream(total: int, seed: int = SEED) -> list[SpatialObject]:
    """Uniform keyword-tagged stream, one object per second (stdlib only)."""
    rng = random.Random(seed)
    return [
        SpatialObject(
            x=rng.uniform(0.0, EXTENT),
            y=rng.uniform(0.0, EXTENT),
            timestamp=float(index),
            weight=rng.uniform(0.5, 10.0),
            object_id=index,
            attributes={"keywords": (rng.choice(VOCABULARY),)},
        )
        for index in range(total)
    ]


def make_specs():
    return make_query_grid(
        N_QUERIES,
        base_rect=BASE_RECT,
        base_window=BASE_WINDOW,
        alpha=ALPHA,
        algorithm=ALGORITHM,
        backend=BACKEND,
        keywords=VOCABULARY,
    )


def run_benchmark(total_objects: int, checkpoint_every: int) -> dict:
    stream = make_stream(total_objects)
    specs = make_specs()

    plain = run_service(specs, stream, chunk_size=CHUNK_SIZE)
    plain_ops = plain.objects_total / plain.wall_seconds
    print(f"  no checkpointing: {plain_ops:10,.0f} obj/s", flush=True)

    workdir = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        cells = {}
        for label, cadence in (
            ("checkpointed", checkpoint_every),
            ("checkpointed_tight", TIGHT_CHECKPOINT_EVERY),
        ):
            outcome = run_service(
                specs,
                stream,
                chunk_size=CHUNK_SIZE,
                checkpoint_dir=workdir / label,
                checkpoint_policy=CheckpointPolicy(every_chunks=cadence),
            )
            ops = outcome.objects_total / outcome.wall_seconds
            overhead = 1.0 - ops / plain_ops
            snapshots = (total_objects // CHUNK_SIZE) // cadence
            cells[label] = {
                "every_chunks": cadence,
                "objects_per_second": ops,
                "overhead_fraction": overhead,
                "snapshots_taken": snapshots,
            }
            print(
                f"  checkpoint every {cadence:>2} chunks: {ops:10,.0f} obj/s  "
                f"(overhead {100.0 * overhead:+.1f}%, {snapshots} snapshots)",
                flush=True,
            )
            # Final-answer parity with the plain run (same stream and specs).
            for query_id, result in plain.final_results.items():
                other = outcome.final_results[query_id]
                same = (result is None and other is None) or (
                    result is not None
                    and other is not None
                    and result.score == other.score
                )
                if not same:
                    raise AssertionError(
                        f"{query_id}: checkpointed run diverged from the plain run"
                    )

        started = time.perf_counter()
        recovery = measure_recovery(
            make_specs(),
            stream,
            workdir / "crash",
            chunk_size=CHUNK_SIZE,
            checkpoint_every=RECOVERY_CHECKPOINT_EVERY,
            crash_fraction=CRASH_FRACTION,
        )
        print(
            f"  crash at chunk {recovery.crash_chunk_offset}/"
            f"{recovery.chunks_total}: full replay "
            f"{recovery.full_replay_seconds:.3f}s vs resume "
            f"{recovery.resume_seconds:.3f}s (restore "
            f"{recovery.restore_seconds * 1000.0:.1f} ms + tail "
            f"{recovery.tail_replay_seconds:.3f}s) = "
            f"{recovery.speedup_vs_full_replay:.1f}x  "
            f"[staged in {time.perf_counter() - started:.1f}s]",
            flush=True,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "schema": SCHEMA,
        "config": {
            "seed": SEED,
            "extent": EXTENT,
            "base_rect": list(BASE_RECT),
            "base_window": BASE_WINDOW,
            "alpha": ALPHA,
            "algorithm": ALGORITHM,
            "backend": BACKEND,
            "n_queries": N_QUERIES,
            "total_objects": total_objects,
            "chunk_size": CHUNK_SIZE,
            "checkpoint_every_chunks": checkpoint_every,
            "recovery_checkpoint_every_chunks": RECOVERY_CHECKPOINT_EVERY,
            "crash_fraction": CRASH_FRACTION,
        },
        "results": {
            "no_checkpoint": {"objects_per_second": plain_ops},
            "checkpointed": cells["checkpointed"],
            "checkpointed_tight": cells["checkpointed_tight"],
            "recovery": {
                "chunks_total": recovery.chunks_total,
                "crash_chunk_offset": recovery.crash_chunk_offset,
                "checkpoint_chunk_offset": recovery.checkpoint_chunk_offset,
                "checkpoints_written": recovery.checkpoints_written,
                "full_replay_seconds": recovery.full_replay_seconds,
                "restore_seconds": recovery.restore_seconds,
                "tail_replay_seconds": recovery.tail_replay_seconds,
                "resume_seconds": recovery.resume_seconds,
                "speedup_vs_full_replay": recovery.speedup_vs_full_replay,
            },
        },
    }


def check_regression(old: dict, new: dict, tolerance: float = REGRESSION_TOLERANCE):
    """Regressions of the guarded metric (checkpointed objects/sec)."""
    regressions = []
    for cell in ("checkpointed", "checkpointed_tight"):
        try:
            before = old["results"][cell]["objects_per_second"]
        except (KeyError, TypeError):
            regressions.append(
                f"{cell}: previous file is not a readable {SCHEMA} report"
            )
            continue
        after = new["results"][cell]["objects_per_second"]
        if after < before * (1.0 - tolerance):
            regressions.append(
                f"{cell} ingestion: {before:,.0f} -> {after:,.0f} obj/s "
                f"({100.0 * (1.0 - after / before):.1f}% slower)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite BENCH_recovery.json even on regression or overhead "
        "breach",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream (CI smoke mode; never overwrites the tracked "
        "trajectory file)",
    )
    parser.add_argument("--out", default=str(OUTPUT_PATH), help="output JSON path")
    args = parser.parse_args(argv)

    total_objects = TOTAL_OBJECTS // 4 if args.quick else TOTAL_OBJECTS
    checkpoint_every = (
        RECOVERY_CHECKPOINT_EVERY if args.quick else CHECKPOINT_EVERY
    )
    print(
        f"bench_recovery: queries={N_QUERIES} total={total_objects} "
        f"chunk={CHUNK_SIZE} checkpoint_every={checkpoint_every} "
        f"backend={BACKEND}"
    )
    report = run_benchmark(total_objects, checkpoint_every)

    overhead = report["results"]["checkpointed"]["overhead_fraction"]
    if overhead > MAX_OVERHEAD_FRACTION and not args.force:
        print(
            f"checkpoint overhead {100.0 * overhead:.1f}% exceeds the "
            f"{100.0 * MAX_OVERHEAD_FRACTION:.0f}% acceptance bar at the "
            f"default policy",
            file=sys.stderr,
        )
        return 1

    out_path = Path(args.out)
    if args.quick and args.out == str(OUTPUT_PATH):
        print("quick mode: skipping BENCH_recovery.json update (pass --out to write)")
        return 0
    if out_path.exists() and not args.force:
        old = json.loads(out_path.read_text())
        regressions = check_regression(old, report)
        if regressions:
            print(
                "refusing to overwrite {}: throughput regressed >{}%\n  {}".format(
                    out_path, int(REGRESSION_TOLERANCE * 100), "\n  ".join(regressions)
                ),
                file=sys.stderr,
            )
            return 1
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
