"""Appendix L — case study: keyword-filtered bursty regions.

Paper: running cell-CSPOT on tweets containing a monitored keyword
("concert", "parade") detects bursty regions that coincide with real events
(a concert at the Walt Disney Concert Hall, the New York dance parade).

Here a keyword event is planted in a synthetic tagged stream; the benchmark
checks that the detected bursty region overlaps the planted event footprint
for both case-study keywords.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.evaluation.experiments import case_study
from repro.evaluation.tables import format_paper_expectation, format_table


@pytest.mark.parametrize("keyword", ["concert", "parade"])
def test_case_study_keyword_event_detected(benchmark, record, keyword):
    outcome = benchmark.pedantic(
        case_study,
        kwargs={"keyword": keyword, "n_background": scaled(1200), "seed": 11},
        rounds=1,
        iterations=1,
    )
    detected = outcome["detected_region"]
    rows = [
        ["keyword", keyword],
        ["objects with keyword", outcome["objects_with_keyword"]],
        ["planted event region", tuple(round(v, 3) for v in outcome["event_region"].as_tuple())],
        [
            "detected bursty region",
            tuple(round(v, 3) for v in detected.as_tuple()) if detected else None,
        ],
        ["detected burst score", outcome["detected_score"]],
        ["detected region overlaps event", outcome["hit"]],
    ]
    text = format_table(
        f"Appendix L case study ({keyword!r})", ["field", "value"], rows
    )
    text += "\n" + format_paper_expectation(
        "the detected bursty region coincides with the planted (real-world) event."
    )
    print("\n" + text)
    record(f"case_study_{keyword}", text)

    assert outcome["objects_with_keyword"] > 0
    assert outcome["hit"] is True
