"""Figure 6 — runtime of the approximate solutions (GAPS, MGAPS).

Paper (Figures 6a-6f): per-object processing time of GAP-SURGE and
MGAP-SURGE under the same window / rectangle sweeps as Figure 5.  Expected
shape: MGAPS costs roughly 2-5x GAPS (it maintains four grids), both are
essentially flat in the window and rectangle size, and both are orders of
magnitude faster than the exact solutions of Figure 5.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import PROFILES
from repro.evaluation.experiments import (
    runtime_vs_rect_size,
    runtime_vs_window,
)
from repro.evaluation.tables import format_paper_expectation, format_series

ALGORITHMS = ("gaps", "mgaps")


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_fig6_runtime_vs_window(benchmark, record, profile_key):
    """Figures 6(a)-(c): approximate detectors vs window length."""
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        runtime_vs_window,
        kwargs={
            "profile": profile,
            "algorithms": ALGORITHMS,
            "n_objects": scaled(4000),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Figure 6 (window sweep, {profile.name}): mean µs per object",
        "window_s",
        series,
    )
    text += "\n" + format_paper_expectation(
        "GAPS and MGAPS stay in the microsecond range regardless of the window; "
        "MGAPS is roughly 2-5x GAPS."
    )
    print("\n" + text)
    record(f"fig6_window_{profile.name.lower()}", text)

    mean_gaps = sum(series["gaps"].values()) / len(series["gaps"])
    mean_mgaps = sum(series["mgaps"].values()) / len(series["mgaps"])
    assert mean_mgaps >= mean_gaps
    assert mean_mgaps <= 12.0 * mean_gaps  # roughly 2-5x in the paper


@pytest.mark.parametrize("profile_key", ["taxi", "uk", "us"])
def test_fig6_runtime_vs_rect_size(benchmark, record, profile_key):
    """Figures 6(d)-(f): approximate detectors vs rectangle size."""
    profile = PROFILES[profile_key]
    series = benchmark.pedantic(
        runtime_vs_rect_size,
        kwargs={
            "profile": profile,
            "algorithms": ALGORITHMS,
            "n_objects": scaled(4000),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        f"Figure 6 (rectangle sweep, {profile.name}): mean µs per object",
        "rect_multiplier",
        series,
    )
    text += "\n" + format_paper_expectation(
        "both curves are nearly flat in the rectangle size."
    )
    print("\n" + text)
    record(f"fig6_rect_{profile.name.lower()}", text)

    for name in ALGORITHMS:
        values = list(series[name].values())
        assert max(values) <= 25.0 * max(min(values), 1e-9)
