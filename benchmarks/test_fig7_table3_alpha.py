"""Figure 7 and Table III — effect of the balance parameter α (US dataset).

Paper:

* Figure 7(a): the runtime of the exact solutions (CCS, aG2) is essentially
  unaffected by α.
* Figure 7(b): same for the approximate solutions (GAPS, MGAPS).
* Table III: the observed approximation ratio of GAPS / MGAPS decreases
  mildly as α grows (the theoretical bound (1-α)/4 shrinks with α), with
  GAPS at ~77-83% and MGAPS at ~86-91%.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.datasets.profiles import US_PROFILE
from repro.evaluation.experiments import ratio_vs_alpha, runtime_vs_alpha
from repro.evaluation.tables import format_paper_expectation, format_series


def test_fig7a_exact_runtime_vs_alpha(benchmark, record):
    series = benchmark.pedantic(
        runtime_vs_alpha,
        kwargs={
            "profile": US_PROFILE,
            "algorithms": ("ccs", "ag2"),
            "n_objects": scaled(1200),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        "Figure 7(a) (US): exact solutions, mean µs per object vs alpha",
        "alpha",
        series,
    )
    text += "\n" + format_paper_expectation("runtime is hardly affected by alpha.")
    print("\n" + text)
    record("fig7a_alpha_exact", text)

    for name, points in series.items():
        values = list(points.values())
        # "Hardly affected": no more than ~5x spread across alpha values
        # (timing noise at this scale is larger than any alpha effect).
        assert max(values) <= 5.0 * max(min(values), 1e-9), name


def test_fig7b_approx_runtime_vs_alpha(benchmark, record):
    series = benchmark.pedantic(
        runtime_vs_alpha,
        kwargs={
            "profile": US_PROFILE,
            "algorithms": ("gaps", "mgaps"),
            "n_objects": scaled(4000),
        },
        rounds=1,
        iterations=1,
    )
    text = format_series(
        "Figure 7(b) (US): approximate solutions, mean µs per object vs alpha",
        "alpha",
        series,
    )
    text += "\n" + format_paper_expectation("runtime is hardly affected by alpha.")
    print("\n" + text)
    record("fig7b_alpha_approx", text)

    for name, points in series.items():
        values = list(points.values())
        assert max(values) <= 5.0 * max(min(values), 1e-9), name


def test_table3_approximation_ratio_vs_alpha(benchmark, record):
    series = benchmark.pedantic(
        ratio_vs_alpha,
        kwargs={"profile": US_PROFILE, "n_objects": scaled(1200), "sample_every": 25},
        rounds=1,
        iterations=1,
    )
    text = format_series(
        "Table III (US): approximation ratio (%) vs alpha",
        "alpha",
        series,
        value_format="{:.1f}%",
    )
    text += "\n" + format_paper_expectation(
        "GAPS ~77-83%, MGAPS ~87-91%; both far above the worst-case (1-alpha)/4, "
        "decreasing mildly as alpha grows."
    )
    print("\n" + text)
    record("table3_ratio_alpha", text)

    for alpha, ratio in series["gaps"].items():
        assert ratio >= (1.0 - alpha) / 4.0 * 100.0 - 1e-6
        assert ratio <= 100.0 + 1e-6
        assert series["mgaps"][alpha] >= ratio - 10.0
    # Observed quality is far better than the worst case (paper: >= ~70%).
    assert sum(series["mgaps"].values()) / len(series["mgaps"]) >= 50.0
