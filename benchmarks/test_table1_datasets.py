"""Table I — dataset statistics of the UK / US / Taxi stand-ins.

Paper: three datasets of 1,000,000 spatial objects with arrival rates of
5,747 (UK), 16,802 (US) and 18,145 (Taxi) objects per hour, weights uniform in
[1, 100].  Here we generate the synthetic stand-ins at benchmark scale and
verify their measured arrival rates track the published ones.
"""

from __future__ import annotations

from benchmarks.conftest import scaled
from repro.evaluation.experiments import table1_dataset_statistics
from repro.evaluation.tables import format_paper_expectation, format_table


def test_table1_dataset_statistics(benchmark, record):
    rows = benchmark.pedantic(
        table1_dataset_statistics,
        kwargs={"n_objects": scaled(2000)},
        rounds=1,
        iterations=1,
    )
    text = format_table(
        "Table I: dataset statistics (synthetic stand-ins)",
        [
            "dataset",
            "objects",
            "target rate/h",
            "measured rate/h",
            "lon range",
            "lat range",
        ],
        [
            [
                row["dataset"],
                row["objects"],
                row["target_rate_per_hour"],
                row["measured_rate_per_hour"],
                f"{row['lon_min']:.1f}..{row['lon_max']:.1f}",
                f"{row['lat_min']:.1f}..{row['lat_max']:.1f}",
            ]
            for row in rows
        ],
    )
    text += "\n" + format_paper_expectation(
        "arrival rates: UK 5,747/h < US 16,802/h < Taxi 18,145/h; 1M objects each "
        "(scaled down here), weights uniform in [1, 100]."
    )
    print("\n" + text)
    record("table1_datasets", text)

    names = [row["dataset"] for row in rows]
    assert names == ["UK", "US", "Taxi"]
    for row in rows:
        assert row["measured_rate_per_hour"] == __import__("pytest").approx(
            row["target_rate_per_hour"], rel=0.3
        )
    # The ordering of arrival rates matches Table I.
    rates = {row["dataset"]: row["measured_rate_per_hour"] for row in rows}
    assert rates["UK"] < rates["US"] < rates["Taxi"] * 1.2
