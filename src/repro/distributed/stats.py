"""Failure-event counters of the distributed shard tier."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any


@dataclass
class DistributedStats:
    """Cumulative counters over one :class:`RemoteExecutor`'s lifetime.

    Everything that went wrong (and was survived) is counted here and
    exported through the ``stats`` frame, ``/metrics`` and the final
    ``remote:`` summary line — a cluster quietly riding its retry budget
    must be visible before it stops being quiet.
    """

    #: RPC deadline expiries that were answered by a resend (the worker
    #: deduplicates by ``seq``, so a resend can never double-apply).
    rpc_retries: int = 0
    #: RPC deadline expiries, including the final one before a worker is
    #: declared lost (``rpc_timeouts >= rpc_retries``).
    rpc_timeouts: int = 0
    #: Workers declared dead: connection drop, retry budget exhausted, or
    #: heartbeat miss budget exhausted.
    workers_lost: int = 0
    #: Shards re-restored on a surviving/new worker after their owner died.
    shards_failed_over: int = 0
    #: Wall-clock seconds spent in failover (restore + ledger replay).
    failover_seconds: float = 0.0
    #: Workers admitted over the lifetime (initial fleet + elastic joins).
    workers_joined: int = 0
    #: Shards moved to re-balance after membership changed (owner alive).
    shards_migrated: int = 0
    #: Heartbeat probes sent by the coordinator's monitor thread.
    heartbeats_sent: int = 0
    #: Heartbeat probes that expired without an answer.
    heartbeat_misses: int = 0
    #: Stale reply frames discarded (answers to a resend's earlier copy).
    replies_discarded: int = 0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


__all__ = ["DistributedStats"]
