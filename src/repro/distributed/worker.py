"""The ``repro worker`` process: a remote host for service shards.

A worker is deliberately dumb: it dials the coordinator (with the
client's connect retry + backoff, so racing the coordinator's bind is
fine), says ``hello``, then serves one frame at a time — build or
restore a :class:`~repro.service.shards.ShardState` on ``assign``, apply
one shard message on ``scatter``, answer ``heartbeat`` probes, drop a
shard on ``release``, exit on ``bye`` or coordinator EOF.  All policy
(assignment, retries, failover, rebalancing) lives coordinator-side, so
any worker can host any shard at any time — the py_experimenter model of
interchangeable pull workers, applied to resident shard state.

Exactly-once under retries: :class:`WorkerShardHost` caches its last
reply per shard and answers a repeated ``seq`` from the cache without
re-applying the message (see :mod:`repro.distributed.protocol`).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any

from repro.distributed.protocol import (
    DISTRIBUTED_SCHEMA,
    decode_payload,
    heartbeat_ack_frame,
    hello_frame,
    reply_frame,
    worker_error_frame,
)
from repro.server.client import ServerClient
from repro.server.protocol import ProtocolError
from repro.service.shards import ShardState

logger = logging.getLogger(__name__)


class WorkerShardHost:
    """Socket-free frame handler: the worker's whole brain.

    Kept separate from the connection loop so the dedupe and assignment
    semantics are directly unit-testable without a coordinator.
    """

    def __init__(self) -> None:
        self.shards: dict[int, ShardState] = {}
        #: Per-shard ``(seq, reply_frame)`` of the last applied request —
        #: the at-most-once cache consulted before applying anything.
        self._last: dict[int, tuple[int, dict[str, Any]]] = {}

    def _cached(self, shard: int, seq: int) -> dict[str, Any] | None:
        last = self._last.get(shard)
        if last is not None and last[0] == seq:
            return last[1]
        return None

    def handle_frame(self, frame: dict[str, Any]) -> dict[str, Any] | None:
        """Answer one coordinator frame; ``None`` means orderly shutdown."""
        kind = frame.get("type")
        if kind == "heartbeat":
            return heartbeat_ack_frame(int(frame.get("seq", 0)))
        if kind == "bye":
            return None
        if kind not in ("scatter", "assign", "release"):
            raise ProtocolError(f"unexpected frame type {kind!r} from coordinator")
        shard = int(frame["shard"])
        seq = int(frame["seq"])
        cached = self._cached(shard, seq)
        if cached is not None:
            return cached
        try:
            if kind == "assign":
                reply = reply_frame(shard, seq, self._assign(shard, frame))
            elif kind == "release":
                self.shards.pop(shard, None)
                reply = reply_frame(shard, seq, True)
            else:
                message = decode_payload(frame["payload"])
                state = self.shards.get(shard)
                if state is None:
                    raise KeyError(f"shard {shard} is not assigned to this worker")
                result = state.handle(message)
                reply = reply_frame(
                    shard, seq, result, ckpt=message[0] == "checkpoint"
                )
        except Exception as exc:  # deterministic shard failure, not transport
            reply = worker_error_frame(shard, seq, exc)
        self._last[shard] = (seq, reply)
        return reply

    def _assign(self, shard: int, frame: dict[str, Any]) -> list[str]:
        base = decode_payload(frame["payload"])
        base_kind, payload, shared_plan = base
        if base_kind == "specs":
            state = ShardState(payload, shared_plan)
        elif base_kind == "snapshot":
            state = ShardState((), shared_plan)
            state.restore(payload)
        else:
            raise ValueError(f"unknown assign base {base_kind!r}")
        self.shards[shard] = state
        return list(state.pipelines)


class ShardWorker:
    """One worker process: dial, say hello, serve frames until told to stop."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str | None = None,
        connect_retries: int = 10,
        connect_backoff: float = 0.1,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"worker-{os.getpid()}"
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.connect_timeout = connect_timeout

    def run(self) -> int:
        """Serve until ``bye``/EOF; returns a process exit code."""
        try:
            client = ServerClient(
                self.host,
                self.port,
                timeout=None,  # the coordinator paces the connection
                connect_retries=self.connect_retries,
                connect_backoff=self.connect_backoff,
                connect_timeout=self.connect_timeout,
            )
        except OSError as exc:
            print(
                f"worker {self.name}: cannot reach coordinator "
                f"{self.host}:{self.port}: {exc}",
                file=sys.stderr,
            )
            return 1
        host = WorkerShardHost()
        try:
            client.send(hello_frame(self.name, os.getpid()))
            ack = client.recv_raw()
            if ack.get("type") != "hello_ack" or ack.get("schema") != DISTRIBUTED_SCHEMA:
                print(
                    f"worker {self.name}: coordinator refused admission: {ack}",
                    file=sys.stderr,
                )
                return 1
            print(
                f"worker {self.name}: joined coordinator "
                f"{self.host}:{self.port} as worker {ack.get('worker_id')}",
                file=sys.stderr,
                flush=True,
            )
            while True:
                try:
                    frame = client.recv_raw()
                except ConnectionError:
                    # The coordinator went away (crash or close without a
                    # bye); shard state dies with this process — by design,
                    # it is reconstructible from the checkpoint directory.
                    logger.info("worker %s: coordinator connection closed", self.name)
                    return 0
                reply = host.handle_frame(frame)
                if reply is None:
                    return 0
                client.send(reply)
        except ProtocolError as exc:
            print(f"worker {self.name}: protocol error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"worker {self.name}: connection error: {exc}", file=sys.stderr)
            return 1
        finally:
            client.close()


__all__ = ["ShardWorker", "WorkerShardHost"]
