"""Distributed shard tier: remote workers behind the executor registry.

This package turns the service's shard executor into a small distributed
system while keeping the bit-identity bar of every other backend:

* :mod:`repro.distributed.protocol` — the worker dialect of the network
  tier's length-prefixed JSON frame protocol (``hello`` / ``heartbeat`` /
  ``scatter`` / ``ckpt_ack`` frame kinds) with pickled shard-message
  payloads and per-shard sequence numbers for at-most-once delivery;
* :mod:`repro.distributed.worker` — the ``repro worker`` process: dials
  the coordinator (connect retry + backoff), hosts :class:`ShardState`
  instances, and deduplicates retried scatters by sequence number so a
  retry can never double-apply a chunk;
* :mod:`repro.distributed.executor` — :class:`RemoteExecutor`, the
  coordinator: shard→worker assignment, per-RPC deadlines with bounded
  exponential-backoff retries, heartbeats with a miss budget, and
  checkpoint-driven failover (restore the dead worker's shards from
  their latest durable generation elsewhere, then replay the message
  ledger recorded since that checkpoint);
* :mod:`repro.distributed.stats` — :class:`DistributedStats`, the
  failure-event counters exported through ``stats`` / ``/metrics``.

The tier assumes a trusted network and shared checkpoint storage, the
same trust model as the checkpoint files themselves (payloads are
pickles, exactly like the process executor's pipes).
"""

from repro.distributed.executor import (
    RemoteExecutor,
    RemoteShardError,
    WorkerLostError,
)
from repro.distributed.protocol import DISTRIBUTED_SCHEMA
from repro.distributed.stats import DistributedStats
from repro.distributed.worker import ShardWorker, WorkerShardHost

__all__ = [
    "DISTRIBUTED_SCHEMA",
    "DistributedStats",
    "RemoteExecutor",
    "RemoteShardError",
    "ShardWorker",
    "WorkerLostError",
    "WorkerShardHost",
]
