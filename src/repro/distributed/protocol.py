"""Worker dialect of the length-prefixed frame protocol.

Frames reuse the network tier's codec (:mod:`repro.server.protocol`): a
4-byte big-endian length prefix plus one JSON object with a ``"type"``
key.  Shard messages and replies are Python object graphs
(:class:`~repro.streams.objects.SpatialObject` chunks,
:class:`~repro.service.bus.QueryUpdate` lists, detector results), so they
ride inside the JSON frame as a base85-encoded pickle — the same trust
model and the same exact float round-trip as the process executor's
pipes and the snapshot files.

Worker → coordinator
--------------------
``hello``          first frame on a new connection: schema, worker name,
                   pid.  Answered with ``hello_ack`` (or ``error``).
``reply``          the answer to one ``scatter``/``assign``/``release``:
                   carries the shard index, the request's ``seq`` and the
                   pickled result.
``ckpt_ack``       a ``reply`` whose request was a ``("checkpoint", ...)``
                   shard message — called out as its own frame kind
                   because receiving *all* of them is the coordinator's
                   signal that the generation is durable and the replay
                   ledger can be truncated.
``heartbeat_ack``  liveness answer.
``error``          a deterministic failure inside the shard (not a
                   transport failure): carries ``seq``, the exception
                   text and type name.

Coordinator → worker
--------------------
``hello_ack``      admission; carries the coordinator-assigned worker id.
``assign``         host a shard: the payload is either
                   ``("specs", specs, shared_plan)`` — build fresh
                   pipelines — or ``("snapshot", path, shared_plan)`` —
                   restore the shard's latest durable generation from
                   shared checkpoint storage (the failover path).
``scatter``        one shard message (chunk/advance/add/remove/results/
                   checkpoint/restore/trace/...), tagged with a per-shard
                   monotonic ``seq``.
``release``        drop a shard (live migration after rebalance).
``heartbeat``      liveness probe.
``bye``            orderly shutdown.

At-most-once delivery: every shard-scoped request carries a per-shard
monotonically increasing ``seq``.  The worker caches its last reply per
shard; a request re-sent with the same ``seq`` (the coordinator's
deadline expired but the worker was merely slow) returns the cached
reply without re-applying the message — a retried scatter can never
double-apply a chunk.  The coordinator discards replies whose ``seq``
does not match the request in flight (they are answers to a resend's
earlier copy).
"""

from __future__ import annotations

import base64
import pickle
from typing import Any

from repro.server.protocol import (  # noqa: F401  (re-exported for callers)
    ProtocolError,
    recv_frame,
    send_frame,
)

#: Protocol version spoken by both sides; a mismatched worker is refused.
DISTRIBUTED_SCHEMA = "remote-shard/v1"

#: ``shard`` value of shard-less frames (heartbeats).
NO_SHARD = -1


def encode_payload(obj: Any) -> str:
    """Pickle an object graph into a JSON-safe ASCII string."""
    return base64.b85encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(text: str) -> Any:
    return pickle.loads(base64.b85decode(text.encode("ascii")))


# ----------------------------------------------------------------------
# Frame constructors
# ----------------------------------------------------------------------
def hello_frame(name: str, pid: int) -> dict[str, Any]:
    return {
        "type": "hello",
        "schema": DISTRIBUTED_SCHEMA,
        "name": name,
        "pid": pid,
    }


def hello_ack_frame(worker_id: int) -> dict[str, Any]:
    return {
        "type": "hello_ack",
        "schema": DISTRIBUTED_SCHEMA,
        "worker_id": worker_id,
    }


def assign_frame(shard: int, seq: int, base: tuple) -> dict[str, Any]:
    return {
        "type": "assign",
        "shard": shard,
        "seq": seq,
        "payload": encode_payload(base),
    }


def scatter_frame(shard: int, seq: int, message: tuple) -> dict[str, Any]:
    return {
        "type": "scatter",
        "shard": shard,
        "seq": seq,
        "payload": encode_payload(message),
    }


def release_frame(shard: int, seq: int) -> dict[str, Any]:
    return {"type": "release", "shard": shard, "seq": seq}


def heartbeat_frame(seq: int) -> dict[str, Any]:
    return {"type": "heartbeat", "shard": NO_SHARD, "seq": seq}


def heartbeat_ack_frame(seq: int) -> dict[str, Any]:
    return {"type": "heartbeat_ack", "shard": NO_SHARD, "seq": seq}


def reply_frame(shard: int, seq: int, result: Any, *, ckpt: bool = False) -> dict[str, Any]:
    return {
        "type": "ckpt_ack" if ckpt else "reply",
        "shard": shard,
        "seq": seq,
        "payload": encode_payload(result),
    }


def worker_error_frame(shard: int, seq: int, exc: BaseException) -> dict[str, Any]:
    return {
        "type": "error",
        "shard": shard,
        "seq": seq,
        "error": str(exc),
        "error_type": type(exc).__name__,
    }


def bye_frame() -> dict[str, Any]:
    return {"type": "bye"}


__all__ = [
    "DISTRIBUTED_SCHEMA",
    "NO_SHARD",
    "ProtocolError",
    "assign_frame",
    "bye_frame",
    "decode_payload",
    "encode_payload",
    "heartbeat_ack_frame",
    "heartbeat_frame",
    "hello_ack_frame",
    "hello_frame",
    "recv_frame",
    "release_frame",
    "reply_frame",
    "scatter_frame",
    "send_frame",
    "worker_error_frame",
]
