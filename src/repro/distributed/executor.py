"""The coordinator: :class:`RemoteExecutor`, a fault-tolerant shard backend.

The executor listens on a TCP endpoint; ``repro worker`` processes dial
in and are admitted with a ``hello``/``hello_ack`` exchange.  Shards are
assigned round-robin over the fleet and every shard message becomes one
RPC over the worker's connection:

* **Deadlines + bounded retries** — each RPC has a deadline
  (``rpc_timeout``); on expiry the request is re-sent with the same
  per-shard ``seq`` after an exponential backoff, up to ``rpc_retries``
  times.  The worker deduplicates by ``seq`` (see
  :mod:`repro.distributed.worker`), so a resend can never double-apply a
  chunk; stale replies to earlier copies are discarded by ``seq`` match.
* **Heartbeats** — a monitor thread probes idle workers every
  ``heartbeat_interval`` seconds (a worker busy computing a chunk is
  skipped: its held RPC lock *is* liveness).  ``heartbeat_miss_budget``
  consecutive unanswered probes declare the worker dead.
* **Checkpoint-driven failover** — the executor records, per shard, the
  snapshot file of the last acknowledged checkpoint generation (its
  *base*, on shared storage) and keeps a replay ledger of every
  state-mutating message since (the WAL bounds this tail: the service's
  checkpoint floor guarantees a checkpoint at least every
  ``REMOTE_CHECKPOINT_FLOOR_CHUNKS`` chunks).  When a worker dies, each
  of its shards is re-assigned to a surviving/new worker, restored from
  its base, and the ledger is replayed in order — bit-identical to
  having never crashed, because :class:`ShardState` is deterministic.
  The message in flight when the worker died is then re-dispatched
  normally.
* **Elastic membership** — workers may join at any time; the coordinator
  rebalances at the next safe chunk boundary (executor calls happen
  between chunks by construction of the service loop) by migrating
  shards through the same restore-and-replay path.  A worker may leave
  by dropping its connection; its shards fail over.

Everything observable goes through :class:`DistributedStats` and the
``remote.scatter`` / ``remote.failover`` tracer spans.
"""

from __future__ import annotations

import logging
import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.distributed.protocol import (
    DISTRIBUTED_SCHEMA,
    assign_frame,
    bye_frame,
    decode_payload,
    heartbeat_frame,
    hello_ack_frame,
    recv_frame,
    release_frame,
    scatter_frame,
    send_frame,
)
from repro.distributed.stats import DistributedStats
from repro.obs.tracer import current as _current_tracer
from repro.server.protocol import ProtocolError, error_frame
from repro.service.shards import ShardExecutor
from repro.service.spec import QuerySpec
from repro.state.snapshot import SnapshotError

logger = logging.getLogger(__name__)

#: Maximum chunks between checkpoints the service enforces when running
#: remote: a shard can only fail over to its last durable generation plus
#: the replay ledger, so the ledger tail must stay bounded.
REMOTE_CHECKPOINT_FLOOR_CHUNKS = 64

#: Shard-message kinds that mutate shard state and therefore enter the
#: replay ledger.  Read-only kinds (results/top_k/stats) and the kinds
#: with their own bookkeeping (checkpoint/restore/trace) stay out.
_MUTATING_KINDS = frozenset({"chunk", "advance", "add", "remove", "compact"})


class WorkerLostError(RuntimeError):
    """Transport-level loss of a worker (drop, or retry budget exhausted)."""

    def __init__(self, worker: "_WorkerHandle", reason: str) -> None:
        super().__init__(f"worker {worker.name} (id {worker.id}) lost: {reason}")
        self.worker = worker


class RemoteShardError(RuntimeError):
    """A deterministic failure inside a remote shard, re-raised here.

    Not retried and not a failover trigger: the same message would fail
    the same way on any worker (exactly the in-process behaviour).
    """


class _WorkerHandle:
    """Coordinator-side state of one admitted worker connection."""

    def __init__(self, sock: socket.socket, worker_id: int, name: str) -> None:
        self.sock = sock
        self.id = worker_id
        self.name = name
        #: Serialises RPCs on the connection; held for the whole
        #: request/reply exchange.  The heartbeat thread only probes when
        #: it can take this without blocking — a held lock is liveness.
        self.lock = threading.Lock()
        self.alive = True
        self.shards: set[int] = set()
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<worker {self.name} id={self.id} alive={self.alive} shards={sorted(self.shards)}>"


class RemoteExecutor(ShardExecutor):
    """Dispatch shard messages to remote worker processes, fault-tolerantly."""

    name = "remote"

    def __init__(
        self,
        shard_specs: Sequence[Sequence[QuerySpec]],
        shared_plan: bool = True,
        *,
        workers: int = 1,
        listen: tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: int = 0,
        rpc_timeout: float = 30.0,
        rpc_retries: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 1.0,
        heartbeat_interval: float = 1.0,
        heartbeat_miss_budget: int = 3,
        join_timeout: float = 60.0,
        on_listening=None,
    ) -> None:
        super().__init__(shard_specs, shared_plan)
        if workers < 1:
            raise ValueError("the remote executor needs at least one worker")
        self._specs = [tuple(specs) for specs in shard_specs]
        self.rpc_timeout = float(rpc_timeout)
        self.rpc_retries = int(rpc_retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_max = float(retry_backoff_max)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_miss_budget = int(heartbeat_miss_budget)
        self.join_timeout = float(join_timeout)
        self.stats = DistributedStats()

        #: Guards membership (worker list, alive flags) and wakes waiters
        #: on join/loss.
        self._membership = threading.Condition()
        self._workers: list[_WorkerHandle] = []
        self._next_worker_id = 0
        self._rebalance_pending = False
        self._closed = False

        # Dispatch-side state: only ever touched by the service thread.
        self._owner: list[_WorkerHandle | None] = [None] * self.n_shards
        self._seq = [0] * self.n_shards
        self._hb_seq = 0
        #: Per-shard snapshot path of the last acknowledged checkpoint /
        #: restore generation; ``None`` = no durable base yet (failover
        #: rebuilds from specs and replays the full ledger).
        self._base: list[str | None] = [None] * self.n_shards
        #: Mutating messages since the last acknowledged checkpoint:
        #: ``("b", None, message)`` for broadcasts, ``("s", shard,
        #: message)`` for single-shard sends.
        self._ledger: list[tuple[str, int | None, tuple]] = []
        self._trace_enabled = False
        self._tracer = None  # set by the owning service via set_tracer()

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(tuple(listen))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="remote-accept", daemon=True
        )
        self._accept_thread.start()
        if on_listening is not None:
            on_listening(self.host, self.port)

        self.spawned: list[subprocess.Popen] = []
        if spawn_workers:
            self._spawn(spawn_workers)

        try:
            self._wait_for_workers(workers)
            with self._membership:
                fleet = [w for w in self._workers if w.alive]
                self._rebalance_pending = False
            for shard in range(self.n_shards):
                target = fleet[shard % len(fleet)]
                self._install_shard(target, shard)
        except BaseException:
            self.close()
            raise

        self._hb_stop = threading.Event()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, name="remote-heartbeat", daemon=True
        )
        self._hb_thread.start()
        #: Batches run one thread per worker; the fleet never needs more
        #: concurrent batches than it has shards.
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="remote-dispatch"
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _spawn(self, count: int) -> None:
        """Launch local worker subprocesses pointed at this coordinator."""
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        for index in range(count):
            self.spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        "from repro.cli import main; raise SystemExit(main())",
                        "worker",
                        "--connect",
                        f"{self.host}:{self.port}",
                        "--name",
                        f"spawned-{index}",
                        "--connect-retries",
                        "10",
                    ],
                    env=env,
                    stderr=subprocess.DEVNULL,
                )
            )

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                conn.settimeout(10.0)
                hello = recv_frame(conn)
                if (
                    hello.get("type") != "hello"
                    or hello.get("schema") != DISTRIBUTED_SCHEMA
                ):
                    send_frame(
                        conn,
                        error_frame(
                            400,
                            f"expected a {DISTRIBUTED_SCHEMA} hello, got "
                            f"{hello.get('type')!r}/{hello.get('schema')!r}",
                        ),
                    )
                    conn.close()
                    continue
                with self._membership:
                    if self._closed:
                        conn.close()
                        return
                    worker = _WorkerHandle(
                        conn,
                        self._next_worker_id,
                        str(hello.get("name") or f"worker-{self._next_worker_id}"),
                    )
                    self._next_worker_id += 1
                    # The admission ack must hit the socket before any
                    # assignment RPC can (FIFO per connection), so send it
                    # while the membership lock still hides the worker
                    # from dispatch.
                    conn.settimeout(None)
                    send_frame(conn, hello_ack_frame(worker.id))
                    self._workers.append(worker)
                    self.stats.workers_joined += 1
                    self._rebalance_pending = True
                    self._membership.notify_all()
                logger.info(
                    "remote: worker %s joined (%d total)",
                    worker.name,
                    len(self._workers),
                    extra={"event": "remote_worker_joined", "worker": worker.name},
                )
            except (ProtocolError, OSError, ConnectionError):
                try:
                    conn.close()
                except OSError:
                    pass

    def _wait_for_workers(self, count: int) -> None:
        deadline = time.monotonic() + self.join_timeout
        with self._membership:
            while sum(1 for w in self._workers if w.alive) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    alive = sum(1 for w in self._workers if w.alive)
                    raise RuntimeError(
                        f"only {alive} of {count} workers joined the "
                        f"coordinator at {self.host}:{self.port} within "
                        f"{self.join_timeout:.0f}s — start workers with "
                        f"`repro worker --connect {self.host}:{self.port}`"
                    )
                self._membership.wait(remaining)

    def _declare_lost(self, worker: _WorkerHandle, reason: str) -> None:
        with self._membership:
            if not worker.alive:
                return
            worker.alive = False
            self.stats.workers_lost += 1
            self._membership.notify_all()
        try:
            worker.sock.close()
        except OSError:
            pass
        logger.warning(
            "remote: worker %s declared lost: %s (its %d shard(s) will "
            "fail over from their last checkpoint generation)",
            worker.name,
            reason,
            len(worker.shards),
            extra={
                "event": "remote_worker_lost",
                "worker": worker.name,
                "reason": reason,
                "shards": sorted(worker.shards),
            },
        )

    def _alive_workers(self) -> list[_WorkerHandle]:
        with self._membership:
            return [w for w in self._workers if w.alive]

    def _pick_target(self) -> _WorkerHandle:
        """The least-loaded live worker, waiting for an elastic join if none."""
        deadline = time.monotonic() + self.join_timeout
        with self._membership:
            while True:
                alive = [w for w in self._workers if w.alive]
                if alive:
                    return min(alive, key=lambda w: (len(w.shards), w.id))
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"no live workers left and none joined within "
                        f"{self.join_timeout:.0f}s — shard state is intact "
                        f"in the checkpoint directory; start workers with "
                        f"`repro worker --connect {self.host}:{self.port}` "
                        f"and resume"
                    )
                self._membership.wait(remaining)

    # ------------------------------------------------------------------
    # RPC core
    # ------------------------------------------------------------------
    def _next_seq(self, shard: int) -> int:
        self._seq[shard] += 1
        return self._seq[shard]

    def _exchange(
        self,
        worker: _WorkerHandle,
        frame: dict[str, Any],
        *,
        timeout: float,
        retries: int,
    ) -> dict[str, Any]:
        """One request/reply on a connection whose lock the caller holds."""
        expected_shard = frame.get("shard")
        expected_seq = frame.get("seq")
        try:
            worker.sock.settimeout(timeout)
            send_frame(worker.sock, frame)
            attempt = 0
            while True:
                try:
                    reply = recv_frame(worker.sock)
                except socket.timeout:
                    self.stats.rpc_timeouts += 1
                    if attempt >= retries:
                        raise WorkerLostError(
                            worker,
                            f"no reply to {frame.get('type')} seq {expected_seq} "
                            f"after {attempt + 1} deadline(s) of {timeout:.1f}s",
                        ) from None
                    backoff = min(
                        self.retry_backoff_max, self.retry_backoff * (2.0**attempt)
                    )
                    time.sleep(backoff)
                    attempt += 1
                    self.stats.rpc_retries += 1
                    # Resend with the same seq: the worker answers from its
                    # dedupe cache if the first copy already applied.
                    send_frame(worker.sock, frame)
                    continue
                if (
                    reply.get("shard") != expected_shard
                    or reply.get("seq") != expected_seq
                ):
                    self.stats.replies_discarded += 1
                    continue
                if reply.get("type") == "error":
                    error_type = reply.get("error_type", "Exception")
                    detail = (
                        f"shard {expected_shard} on worker {worker.name}: "
                        f"{error_type}: {reply.get('error', 'unknown error')}"
                    )
                    if error_type in ("SnapshotError", "SnapshotSchemaError"):
                        # Keep the snapshot-error type across the wire:
                        # SurgeService.restore's fallback to the previous
                        # manifest generation catches SnapshotError.
                        raise SnapshotError(detail)
                    raise RemoteShardError(detail)
                return reply
        except WorkerLostError:
            raise
        except (RemoteShardError, SnapshotError):
            raise
        except (ProtocolError, ConnectionError, OSError) as exc:
            raise WorkerLostError(worker, str(exc)) from exc

    def _rpc(self, worker: _WorkerHandle, frame: dict[str, Any]) -> Any:
        with worker.lock:
            if not worker.alive:
                raise WorkerLostError(worker, "connection already declared lost")
            reply = self._exchange(
                worker, frame, timeout=self.rpc_timeout, retries=self.rpc_retries
            )
        payload = reply.get("payload")
        return decode_payload(payload) if payload is not None else None

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat_interval):
            for worker in self._alive_workers():
                if not worker.lock.acquire(blocking=False):
                    # Busy with an RPC — the in-flight exchange's own
                    # deadline covers a hang; don't double-probe.
                    continue
                try:
                    if not worker.alive:
                        continue
                    self._hb_seq += 1
                    self.stats.heartbeats_sent += 1
                    self._exchange(
                        worker,
                        heartbeat_frame(self._hb_seq),
                        timeout=self.heartbeat_interval,
                        retries=0,
                    )
                    worker.misses = 0
                except WorkerLostError:
                    worker.misses += 1
                    self.stats.heartbeat_misses += 1
                    if worker.misses >= self.heartbeat_miss_budget:
                        self._declare_lost(
                            worker,
                            f"{worker.misses} consecutive heartbeat misses",
                        )
                except RemoteShardError:  # pragma: no cover - defensive
                    pass
                finally:
                    worker.lock.release()

    # ------------------------------------------------------------------
    # Assignment, failover, rebalance
    # ------------------------------------------------------------------
    def _install_shard(
        self, target: _WorkerHandle, shard: int, *, replay: bool = False
    ) -> None:
        """Assign ``shard`` to ``target`` from its base, optionally replaying."""
        base_path = self._base[shard]
        if base_path is None:
            base = ("specs", self._specs[shard], self.shared_plan)
        else:
            base = ("snapshot", base_path, self.shared_plan)
        self._rpc(target, assign_frame(shard, self._next_seq(shard), base))
        old = self._owner[shard]
        if old is not None:
            old.shards.discard(shard)
            if old.alive and old is not target:
                try:
                    self._rpc(old, release_frame(shard, self._next_seq(shard)))
                except WorkerLostError as exc:
                    self._declare_lost(old, str(exc))
        self._owner[shard] = target
        target.shards.add(shard)
        if self._trace_enabled:
            # Snapshots never carry a tracer (ShardState drops it when
            # pickled), so re-arm tracing before any replayed message.
            self._rpc(
                target, scatter_frame(shard, self._next_seq(shard), ("trace", True))
            )
        if replay:
            for kind, target_shard, message in self._ledger:
                if kind == "b" or target_shard == shard:
                    self._rpc(
                        target, scatter_frame(shard, self._next_seq(shard), message)
                    )

    def _failover(self, shards: Sequence[int]) -> None:
        started = time.perf_counter()
        for shard in sorted(shards):
            target = self._pick_target()
            logger.warning(
                "remote: failing shard %d over to worker %s "
                "(base=%s, ledger=%d message(s))",
                shard,
                target.name,
                self._base[shard] or "fresh specs",
                len(self._ledger),
                extra={
                    "event": "remote_shard_failover",
                    "shard": shard,
                    "worker": target.name,
                },
            )
            self._install_shard(target, shard, replay=True)
            self.stats.shards_failed_over += 1
        elapsed = time.perf_counter() - started
        self.stats.failover_seconds += elapsed
        self._record_span(
            "remote.failover",
            started,
            started + elapsed,
            meta={"shards": len(shards)},
        )

    def _maintenance(self) -> None:
        """Safe-boundary work before a dispatch: failover + rebalance."""
        dead_shards = [
            shard
            for shard, owner in enumerate(self._owner)
            if owner is not None and not owner.alive
        ]
        if dead_shards:
            self._failover(dead_shards)
        if not self._rebalance_pending:
            return
        self._rebalance_pending = False
        alive = self._alive_workers()
        if len(alive) < 2:
            return
        quota = -(-self.n_shards // len(alive))  # ceil
        for worker in sorted(alive, key=lambda w: -len(w.shards)):
            while len(worker.shards) > quota:
                target = min(alive, key=lambda w: (len(w.shards), w.id))
                if target is worker or len(target.shards) + 1 > quota:
                    break
                shard = min(worker.shards)
                logger.info(
                    "remote: rebalancing shard %d from worker %s to %s",
                    shard,
                    worker.name,
                    target.name,
                    extra={"event": "remote_shard_migrated", "shard": shard},
                )
                self._install_shard(target, shard, replay=True)
                self.stats.shards_migrated += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _worker_batch(
        self, worker: _WorkerHandle, items: list[tuple[int, tuple]]
    ) -> list[tuple[int, str, Any]]:
        """Run one worker's share of a dispatch; never raises."""
        outcomes: list[tuple[int, str, Any]] = []
        for shard, message in items:
            try:
                frame = scatter_frame(shard, self._next_seq(shard), message)
                outcomes.append((shard, "ok", self._rpc(worker, frame)))
            except WorkerLostError as exc:
                self._declare_lost(worker, str(exc))
                outcomes.append((shard, "lost", None))
            except (RemoteShardError, SnapshotError) as exc:
                outcomes.append((shard, "fail", exc))
        return outcomes

    def _dispatch(self, pairs: Sequence[tuple[int, tuple]]) -> dict[int, Any]:
        """Deliver one message per (shard, message) pair, surviving losses."""
        started = time.perf_counter()
        self._maintenance()
        pending: dict[int, tuple] = dict(pairs)
        replies: dict[int, Any] = {}
        while pending:
            lost = [
                shard
                for shard in pending
                if self._owner[shard] is None or not self._owner[shard].alive
            ]
            if lost:
                self._failover(lost)
            by_worker: dict[_WorkerHandle, list[tuple[int, tuple]]] = {}
            for shard, message in pending.items():
                by_worker.setdefault(self._owner[shard], []).append((shard, message))
            futures = [
                self._pool.submit(self._worker_batch, worker, items)
                for worker, items in by_worker.items()
            ]
            failure: Exception | None = None
            for future in futures:
                for shard, status, value in future.result():
                    if status == "ok":
                        replies[shard] = value
                        del pending[shard]
                    elif status == "fail":
                        failure = value
                    # "lost" stays pending: the next loop iteration fails
                    # the shard over and re-dispatches the same message.
            if failure is not None:
                raise failure
        self._record_span(
            "remote.scatter",
            started,
            time.perf_counter(),
            meta={"messages": len(pairs)},
        )
        return replies

    def send(self, shard_index: int, message: tuple) -> Any:
        reply = self._dispatch([(shard_index, message)])[shard_index]
        if message[0] in _MUTATING_KINDS:
            self._ledger.append(("s", shard_index, message))
        return reply

    def broadcast(self, message: tuple) -> list[Any]:
        replies = self._dispatch(
            [(shard, message) for shard in range(self.n_shards)]
        )
        kind = message[0]
        if kind == "trace":
            self._trace_enabled = bool(message[1])
        elif kind in _MUTATING_KINDS:
            self._ledger.append(("b", None, message))
        return [replies[shard] for shard in range(self.n_shards)]

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        replies = self._dispatch(list(enumerate(messages)))
        kinds = {message[0] for message in messages}
        if kinds <= {"checkpoint", "restore"} and kinds:
            # All shards are durable at the paths just written/read: they
            # become the new failover bases and the ledger restarts empty.
            for shard, message in enumerate(messages):
                self._base[shard] = message[1]
            self._ledger.clear()
        else:
            for shard, message in enumerate(messages):
                if message[0] == "trace":
                    self._trace_enabled = bool(message[1])
                elif message[0] in _MUTATING_KINDS:
                    self._ledger.append(("s", shard, message))
        return [replies[shard] for shard in range(self.n_shards)]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def set_tracer(self, tracer) -> None:
        """Adopt the owning service's tracer for coordinator-side spans."""
        self._tracer = tracer

    def _record_span(
        self, stage: str, started: float, ended: float, *, meta: dict | None = None
    ) -> None:
        tracer = self._tracer if self._tracer is not None else _current_tracer()
        if tracer is None or not tracer.enabled:
            return
        tracer.record(stage, started, ended, lane="remote", meta=meta)

    def stats_snapshot(self) -> dict[str, Any]:
        """Counters plus live fleet gauges, for the stats/metrics surface."""
        with self._membership:
            alive = sum(1 for w in self._workers if w.alive)
            total = len(self._workers)
        snapshot = self.stats.to_dict()
        snapshot["workers_alive"] = alive
        snapshot["workers_total"] = total
        snapshot["ledger_depth"] = len(self._ledger)
        return snapshot

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._membership:
            if self._closed:
                return
            self._closed = True
        if hasattr(self, "_hb_stop"):
            self._hb_stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for worker in self._alive_workers():
            try:
                with worker.lock:
                    send_frame(worker.sock, bye_frame())
            except (OSError, ConnectionError):
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        if hasattr(self, "_pool"):
            self._pool.shutdown(wait=True)
        for proc in self.spawned:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)


__all__ = [
    "REMOTE_CHECKPOINT_FLOOR_CHUNKS",
    "RemoteExecutor",
    "RemoteShardError",
    "WorkerLostError",
]
