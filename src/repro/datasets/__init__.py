"""Dataset substrate: synthetic stand-ins for the paper's UK / US / Taxi data.

The original evaluation uses one million geo-tagged tweets from the UK and
the US and one million Rome taxi GPS records (Table I).  Those datasets are
not redistributable, so this package generates synthetic streams that match
the published statistics — spatial extent, average arrival rate, object
count, and weights drawn uniformly from ``[1, 100]`` — and additionally
plants localized bursts so that the burst-score machinery is genuinely
exercised.  See DESIGN.md §4 for the substitution rationale.
"""

from repro.datasets.profiles import (
    DatasetProfile,
    TAXI_PROFILE,
    UK_PROFILE,
    US_PROFILE,
    PROFILES,
)
from repro.datasets.synthetic import (
    BurstSpec,
    StreamConfig,
    generate_stream,
    generate_profile_stream,
)
from repro.datasets.keywords import KeywordEvent, attach_keywords, generate_keyword_stream
from repro.datasets.workloads import (
    default_query_for_profile,
    scaled_stream,
    window_sweep_values,
    rect_size_multipliers,
)

__all__ = [
    "DatasetProfile",
    "UK_PROFILE",
    "US_PROFILE",
    "TAXI_PROFILE",
    "PROFILES",
    "BurstSpec",
    "StreamConfig",
    "generate_stream",
    "generate_profile_stream",
    "KeywordEvent",
    "attach_keywords",
    "generate_keyword_stream",
    "default_query_for_profile",
    "scaled_stream",
    "window_sweep_values",
    "rect_size_multipliers",
]
