"""Dataset substrate: synthetic stand-ins for the paper's UK / US / Taxi data.

The original evaluation uses one million geo-tagged tweets from the UK and
the US and one million Rome taxi GPS records (Table I).  Those datasets are
not redistributable, so this package generates synthetic streams that match
the published statistics — spatial extent, average arrival rate, object
count, and weights drawn uniformly from ``[1, 100]`` — and additionally
plants localized bursts so that the burst-score machinery is genuinely
exercised.  See DESIGN.md §4 for the substitution rationale.
"""

from repro.datasets.profiles import (
    DatasetProfile,
    TAXI_PROFILE,
    UK_PROFILE,
    US_PROFILE,
    PROFILES,
)

#: Exports resolved lazily (PEP 562): the synthetic generators need the
#: optional ``numpy`` dependency, and importing them eagerly would drag it
#: into every consumer of the numpy-free parts of the package (``io``,
#: ``profiles``) — including the CLI ``run`` path and the detectors.
_LAZY_EXPORTS = {
    "BurstSpec": "repro.datasets.synthetic",
    "StreamConfig": "repro.datasets.synthetic",
    "generate_stream": "repro.datasets.synthetic",
    "generate_profile_stream": "repro.datasets.synthetic",
    "KeywordEvent": "repro.datasets.keywords",
    "attach_keywords": "repro.datasets.keywords",
    "generate_keyword_stream": "repro.datasets.keywords",
    "default_query_for_profile": "repro.datasets.workloads",
    "scaled_stream": "repro.datasets.workloads",
    "window_sweep_values": "repro.datasets.workloads",
    "rect_size_multipliers": "repro.datasets.workloads",
    "zipf_keyword_stream": "repro.datasets.workloads",
    "hot_cell_burst_stream": "repro.datasets.workloads",
    "churn_storm_schedule": "repro.datasets.workloads",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "DatasetProfile",
    "UK_PROFILE",
    "US_PROFILE",
    "TAXI_PROFILE",
    "PROFILES",
    "BurstSpec",
    "StreamConfig",
    "generate_stream",
    "generate_profile_stream",
    "KeywordEvent",
    "attach_keywords",
    "generate_keyword_stream",
    "default_query_for_profile",
    "scaled_stream",
    "window_sweep_values",
    "rect_size_multipliers",
]
