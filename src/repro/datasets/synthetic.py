"""Synthetic spatial-object stream generation.

The generator produces streams with the same macroscopic properties as the
paper's datasets (Table I) while giving the burst-detection machinery
something to find:

* arrivals follow a Poisson process at the profile's average rate
  (exponential inter-arrival gaps),
* locations are drawn from a mixture of Gaussian hotspots covering the
  profile's spatial extent plus a uniform background component — geo-tagged
  tweets and taxi requests are strongly clustered around cities and venues,
* weights are uniform over the profile's weight range (``[1, 100]`` in the
  paper), and
* optional *bursts* temporarily add a high-rate, tightly localized component
  (a concert letting out, a subway disruption) so that the maximum burst
  score genuinely moves around during the stream.

Everything is driven by an explicit ``numpy`` random generator seed, so every
experiment and test in this repository is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.profiles import DatasetProfile
from repro.geometry.primitives import Rect
from repro.streams.objects import SpatialObject


@dataclass(frozen=True)
class BurstSpec:
    """One planted burst: a localized surge of arrivals during a time span.

    Parameters
    ----------
    center_x, center_y:
        Centre of the burst region.
    radius_x, radius_y:
        Standard deviation of the burst's Gaussian footprint along each axis.
    start_time, duration:
        When the burst is active (seconds, stream time).
    rate_multiplier:
        Arrival-rate multiplier of the burst component relative to the
        background rate while it is active.
    weight_multiplier:
        Factor applied to the weights of burst objects (1.0 keeps the
        background weight law).
    """

    center_x: float
    center_y: float
    radius_x: float
    radius_y: float
    start_time: float
    duration: float
    rate_multiplier: float = 3.0
    weight_multiplier: float = 1.0


@dataclass(frozen=True)
class StreamConfig:
    """Full specification of one synthetic stream."""

    extent: Rect
    n_objects: int
    arrival_rate_per_hour: float
    weight_range: tuple[float, float] = (1.0, 100.0)
    hotspot_count: int = 10
    #: Fraction of background objects drawn uniformly instead of from hotspots.
    uniform_fraction: float = 0.2
    #: Hotspot standard deviation as a fraction of the extent per axis.
    hotspot_spread: float = 0.02
    bursts: tuple[BurstSpec, ...] = field(default_factory=tuple)
    integer_weights: bool = True
    start_time: float = 0.0
    seed: int = 7


def _sample_locations(
    rng: np.random.Generator, config: StreamConfig, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` background locations from the hotspot mixture."""
    extent = config.extent
    hotspot_x = rng.uniform(extent.min_x, extent.max_x, size=config.hotspot_count)
    hotspot_y = rng.uniform(extent.min_y, extent.max_y, size=config.hotspot_count)
    hotspot_weights = rng.dirichlet(np.ones(config.hotspot_count))

    uniform_mask = rng.random(count) < config.uniform_fraction
    assignments = rng.choice(config.hotspot_count, size=count, p=hotspot_weights)

    spread_x = extent.width * config.hotspot_spread
    spread_y = extent.height * config.hotspot_spread
    xs = hotspot_x[assignments] + rng.normal(0.0, spread_x, size=count)
    ys = hotspot_y[assignments] + rng.normal(0.0, spread_y, size=count)

    xs = np.where(uniform_mask, rng.uniform(extent.min_x, extent.max_x, size=count), xs)
    ys = np.where(uniform_mask, rng.uniform(extent.min_y, extent.max_y, size=count), ys)

    xs = np.clip(xs, extent.min_x, extent.max_x)
    ys = np.clip(ys, extent.min_y, extent.max_y)
    return xs, ys


def _sample_weights(
    rng: np.random.Generator, config: StreamConfig, count: int
) -> np.ndarray:
    low, high = config.weight_range
    if config.integer_weights:
        return rng.integers(int(low), int(high) + 1, size=count).astype(float)
    return rng.uniform(low, high, size=count)


def generate_stream(config: StreamConfig) -> list[SpatialObject]:
    """Generate a timestamp-ordered synthetic stream according to ``config``."""
    if config.n_objects <= 0:
        return []
    rng = np.random.default_rng(config.seed)

    # --- background arrivals: Poisson process at the configured rate -------
    mean_gap = 3600.0 / config.arrival_rate_per_hour
    gaps = rng.exponential(mean_gap, size=config.n_objects)
    timestamps = config.start_time + np.cumsum(gaps)
    xs, ys = _sample_locations(rng, config, config.n_objects)
    weights = _sample_weights(rng, config, config.n_objects)

    objects = [
        SpatialObject(
            x=float(xs[i]),
            y=float(ys[i]),
            timestamp=float(timestamps[i]),
            weight=float(weights[i]),
            object_id=i,
        )
        for i in range(config.n_objects)
    ]

    # --- planted bursts ------------------------------------------------------
    next_id = config.n_objects
    extent = config.extent
    for burst in config.bursts:
        burst_rate_per_second = (
            config.arrival_rate_per_hour / 3600.0
        ) * burst.rate_multiplier
        expected = burst_rate_per_second * burst.duration
        burst_count = int(rng.poisson(expected))
        if burst_count == 0:
            continue
        times = rng.uniform(
            burst.start_time, burst.start_time + burst.duration, size=burst_count
        )
        bx = np.clip(
            rng.normal(burst.center_x, burst.radius_x, size=burst_count),
            extent.min_x,
            extent.max_x,
        )
        by = np.clip(
            rng.normal(burst.center_y, burst.radius_y, size=burst_count),
            extent.min_y,
            extent.max_y,
        )
        bw = _sample_weights(rng, config, burst_count) * burst.weight_multiplier
        for i in range(burst_count):
            objects.append(
                SpatialObject(
                    x=float(bx[i]),
                    y=float(by[i]),
                    timestamp=float(times[i]),
                    weight=float(bw[i]),
                    object_id=next_id,
                    attributes={"burst": True},
                )
            )
            next_id += 1

    objects.sort(key=lambda o: (o.timestamp, o.object_id))
    return objects


def default_bursts_for_profile(
    profile: DatasetProfile, n_objects: int, seed: int = 7, count: int = 3
) -> tuple[BurstSpec, ...]:
    """A small set of plausible bursts spread over the stream's time span."""
    rng = np.random.default_rng(seed + 1)
    duration_total = n_objects * profile.mean_interarrival_seconds
    # Bursts are sized relative to the generated stream so that scaled-down
    # streams stay roughly at the profile's average arrival rate: each burst
    # is active for ~5% of the stream and adds ~15% extra objects.
    burst_duration = min(profile.default_window_seconds, 0.05 * duration_total)
    bursts = []
    for index in range(count):
        start = duration_total * (index + 0.5) / (count + 0.5)
        bursts.append(
            BurstSpec(
                center_x=float(
                    rng.uniform(profile.extent.min_x, profile.extent.max_x)
                ),
                center_y=float(
                    rng.uniform(profile.extent.min_y, profile.extent.max_y)
                ),
                radius_x=profile.default_rect_width,
                radius_y=profile.default_rect_height,
                start_time=float(start),
                duration=float(burst_duration),
                rate_multiplier=3.0,
            )
        )
    return tuple(bursts)


def generate_profile_stream(
    profile: DatasetProfile,
    n_objects: int,
    seed: int = 7,
    with_bursts: bool = True,
) -> list[SpatialObject]:
    """Generate a stream mimicking one of the Table I datasets.

    ``n_objects`` scales the dataset down (or up) while keeping the arrival
    rate, extent and weight law of the profile, which is how the benchmarks
    keep pure-Python running times manageable.
    """
    bursts = (
        default_bursts_for_profile(profile, n_objects, seed=seed)
        if with_bursts
        else ()
    )
    config = StreamConfig(
        extent=profile.extent,
        n_objects=n_objects,
        arrival_rate_per_hour=profile.arrival_rate_per_hour,
        weight_range=profile.weight_range,
        hotspot_count=profile.hotspot_count,
        bursts=bursts,
        seed=seed,
    )
    return generate_stream(config)
