"""Experiment workload helpers: queries, sweeps, and stream scaling.

These helpers encode the parameter grid of Section VII so that the
benchmarks, the experiment drivers and the examples all agree on what "the
paper's setting" means:

* default query rectangle = 1/1000 of the dataset extent per side,
* default window = 1 hour (UK, US) or 5 minutes (Taxi),
* window sweeps of {30 min, 1 h, 2 h, 5 h, 12 h} resp. {1, 5, 10, 20, 30} min,
* rectangle sweeps of {0.5 q, q, 2 q, 3 q},
* α sweep of {0.1, 0.3, 0.5, 0.7, 0.9},
* arrival-rate sweep of {2, 4, 6, 8, 10} million objects per day.
"""

from __future__ import annotations

from repro.core.query import SurgeQuery
from repro.datasets.profiles import DatasetProfile
from repro.datasets.synthetic import generate_profile_stream
from repro.streams.objects import SpatialObject
from repro.streams.sources import stretch_to_rate

#: Rectangle-size multipliers used in Figures 5(d-f) and 6(d-f).
RECT_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0)

#: α values used in Figure 7 and Table III.
ALPHA_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Arrival rates (objects per day) used in Figure 8.
ARRIVAL_RATE_SWEEP = (2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000)

#: k values used in Figures 9(d-f).
K_SWEEP = (3, 5, 7, 9)

#: Window sweeps (seconds) per dataset, matching Figures 5, 6 and 9.
WINDOW_SWEEPS: dict[str, tuple[float, ...]] = {
    "Taxi": (60.0, 300.0, 600.0, 1200.0, 1800.0),
    "UK": (1800.0, 3600.0, 7200.0, 18_000.0, 43_200.0),
    "US": (1800.0, 3600.0, 7200.0, 18_000.0, 43_200.0),
}


def default_query_for_profile(
    profile: DatasetProfile,
    window_seconds: float | None = None,
    rect_multiplier: float = 1.0,
    alpha: float = 0.5,
    k: int = 1,
) -> SurgeQuery:
    """The paper's default query for a dataset, with optional overrides."""
    return SurgeQuery(
        rect_width=profile.default_rect_width * rect_multiplier,
        rect_height=profile.default_rect_height * rect_multiplier,
        window_length=(
            window_seconds if window_seconds is not None else profile.default_window_seconds
        ),
        alpha=alpha,
        area=profile.extent,
        k=k,
    )


def window_sweep_values(profile: DatasetProfile) -> tuple[float, ...]:
    """The window lengths (seconds) swept for this dataset in Figures 5/6/9."""
    return WINDOW_SWEEPS[profile.name]


def rect_size_multipliers() -> tuple[float, ...]:
    """The query-rectangle multipliers swept in Figures 5(d-f) / 6(d-f)."""
    return RECT_MULTIPLIERS


def scaled_stream(
    profile: DatasetProfile,
    n_objects: int,
    seed: int = 7,
    arrivals_per_day: float | None = None,
    with_bursts: bool = True,
) -> list[SpatialObject]:
    """A profile-shaped stream, optionally re-timed to a target arrival rate.

    ``arrivals_per_day`` implements the Figure 8 protocol: the same objects
    are kept but their arrival times are rescaled so the stream runs at the
    requested daily rate.
    """
    stream = generate_profile_stream(
        profile, n_objects=n_objects, seed=seed, with_bursts=with_bursts
    )
    if arrivals_per_day is not None:
        stream = stretch_to_rate(stream, arrivals_per_day)
    return stream
