"""Experiment workload helpers: queries, sweeps, and stream scaling.

These helpers encode the parameter grid of Section VII so that the
benchmarks, the experiment drivers and the examples all agree on what "the
paper's setting" means:

* default query rectangle = 1/1000 of the dataset extent per side,
* default window = 1 hour (UK, US) or 5 minutes (Taxi),
* window sweeps of {30 min, 1 h, 2 h, 5 h, 12 h} resp. {1, 5, 10, 20, 30} min,
* rectangle sweeps of {0.5 q, q, 2 q, 3 q},
* α sweep of {0.1, 0.3, 0.5, 0.7, 0.9},
* arrival-rate sweep of {2, 4, 6, 8, 10} million objects per day.

Beyond the paper's grid, the module provides the *adversarial* workload
generators of the robustness benchmark (``benchmarks/bench_robustness.py``):
Zipf-skewed keyword streams (a handful of keywords dominate, stressing the
inverted routing of the shared plan), hot-cell spatial bursts (a single
query-rectangle-sized cell receives a large share of all arrivals,
stressing per-cell detector state), and query churn storms (a schedule of
add/remove operations against a running service).  These are stdlib-only:
they must run on the numpy-free CI leg.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.query import SurgeQuery
from repro.datasets.profiles import DatasetProfile
from repro.streams.objects import SpatialObject
from repro.streams.sources import stretch_to_rate

#: Rectangle-size multipliers used in Figures 5(d-f) and 6(d-f).
RECT_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0)

#: α values used in Figure 7 and Table III.
ALPHA_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Arrival rates (objects per day) used in Figure 8.
ARRIVAL_RATE_SWEEP = (2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000)

#: k values used in Figures 9(d-f).
K_SWEEP = (3, 5, 7, 9)

#: Window sweeps (seconds) per dataset, matching Figures 5, 6 and 9.
WINDOW_SWEEPS: dict[str, tuple[float, ...]] = {
    "Taxi": (60.0, 300.0, 600.0, 1200.0, 1800.0),
    "UK": (1800.0, 3600.0, 7200.0, 18_000.0, 43_200.0),
    "US": (1800.0, 3600.0, 7200.0, 18_000.0, 43_200.0),
}


def default_query_for_profile(
    profile: DatasetProfile,
    window_seconds: float | None = None,
    rect_multiplier: float = 1.0,
    alpha: float = 0.5,
    k: int = 1,
) -> SurgeQuery:
    """The paper's default query for a dataset, with optional overrides."""
    return SurgeQuery(
        rect_width=profile.default_rect_width * rect_multiplier,
        rect_height=profile.default_rect_height * rect_multiplier,
        window_length=(
            window_seconds if window_seconds is not None else profile.default_window_seconds
        ),
        alpha=alpha,
        area=profile.extent,
        k=k,
    )


def window_sweep_values(profile: DatasetProfile) -> tuple[float, ...]:
    """The window lengths (seconds) swept for this dataset in Figures 5/6/9."""
    return WINDOW_SWEEPS[profile.name]


def rect_size_multipliers() -> tuple[float, ...]:
    """The query-rectangle multipliers swept in Figures 5(d-f) / 6(d-f)."""
    return RECT_MULTIPLIERS


def scaled_stream(
    profile: DatasetProfile,
    n_objects: int,
    seed: int = 7,
    arrivals_per_day: float | None = None,
    with_bursts: bool = True,
) -> list[SpatialObject]:
    """A profile-shaped stream, optionally re-timed to a target arrival rate.

    ``arrivals_per_day`` implements the Figure 8 protocol: the same objects
    are kept but their arrival times are rescaled so the stream runs at the
    requested daily rate.
    """
    # Imported lazily: the synthetic profile generator needs the optional
    # numpy dependency, but the adversarial generators below are stdlib-only
    # and must import on the numpy-free leg.
    from repro.datasets.synthetic import generate_profile_stream

    stream = generate_profile_stream(
        profile, n_objects=n_objects, seed=seed, with_bursts=with_bursts
    )
    if arrivals_per_day is not None:
        stream = stretch_to_rate(stream, arrivals_per_day)
    return stream


# ----------------------------------------------------------------------
# Adversarial workloads (robustness benchmark; stdlib-only by design)
# ----------------------------------------------------------------------
def zipf_keyword_stream(
    n_objects: int,
    *,
    seed: int,
    vocabulary: Sequence[str] = ("concert", "parade", "festival", "derby",
                                 "marathon", "protest", "storm", "expo"),
    exponent: float = 1.2,
    extent: float = 6.0,
    mean_gap: float = 0.25,
) -> list[SpatialObject]:
    """A keyword-tagged stream with Zipf-skewed keyword popularity.

    Keyword ``vocabulary[i]`` is drawn with probability proportional to
    ``1 / (i + 1) ** exponent`` — the head keyword dominates, the tail is
    sparse.  This is the adversarial case for the shared plan's inverted
    keyword routing: the hot keyword's bucket carries almost every object,
    so sharing wins little there, while the tail queries ride on nearly
    empty buckets.
    """
    if n_objects < 0:
        raise ValueError(f"n_objects must be >= 0, got {n_objects}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(vocabulary))]
    t = 0.0
    objects: list[SpatialObject] = []
    for index in range(n_objects):
        t += rng.expovariate(1.0 / mean_gap)
        keyword = rng.choices(vocabulary, weights=weights)[0]
        objects.append(
            SpatialObject(
                x=rng.uniform(0.0, extent),
                y=rng.uniform(0.0, extent),
                timestamp=t,
                weight=rng.uniform(0.5, 8.0),
                object_id=index,
                attributes={"keywords": (keyword,)},
            )
        )
    return objects


def hot_cell_burst_stream(
    n_objects: int,
    *,
    seed: int,
    extent: float = 6.0,
    cell_size: float = 1.0,
    hot_fraction: float = 0.4,
    burst_span: tuple[float, float] = (0.45, 0.7),
    mean_gap: float = 0.25,
) -> list[SpatialObject]:
    """Uniform background traffic plus one spatially-hot burst cell.

    During the ``burst_span`` fraction of the stream, ``hot_fraction`` of
    arrivals land inside one ``cell_size``-sized cell — the worst case for
    per-cell detector state (one cell's record absorbs a large share of all
    updates) and the textbook flash-crowd shape the paper's detectors are
    meant to flag.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = random.Random(seed)
    # A fixed hot cell well inside the extent, chosen from the seed so
    # different seeds stress different cells.
    hot_x = rng.uniform(cell_size, max(cell_size, extent - 2 * cell_size))
    hot_y = rng.uniform(cell_size, max(cell_size, extent - 2 * cell_size))
    lo = int(n_objects * burst_span[0])
    hi = int(n_objects * burst_span[1])
    t = 0.0
    objects: list[SpatialObject] = []
    for index in range(n_objects):
        t += rng.expovariate(1.0 / mean_gap)
        if lo <= index < hi and rng.random() < hot_fraction:
            x = hot_x + rng.uniform(0.0, cell_size)
            y = hot_y + rng.uniform(0.0, cell_size)
        else:
            x = rng.uniform(0.0, extent)
            y = rng.uniform(0.0, extent)
        objects.append(
            SpatialObject(
                x=x,
                y=y,
                timestamp=t,
                weight=rng.uniform(0.5, 8.0),
                object_id=index,
            )
        )
    return objects


def churn_storm_schedule(
    n_events: int,
    *,
    seed: int,
    vocabulary: Sequence[str] = ("concert", "parade", "festival", "derby"),
    window_length: float = 30.0,
    rect: tuple[float, float] = (1.0, 1.0),
) -> list[tuple[str, dict]]:
    """A query churn storm: interleaved add/remove operations.

    Returns ``(op, payload)`` pairs: ``("add", spec_kwargs)`` registers a
    fresh query (unique id, keyword drawn from the vocabulary, ``None`` for
    a city-wide query) and ``("remove", {"query_id": ...})`` drops a
    previously added one.  Roughly 60% adds / 40% removes, never removing
    more than was added — a driver applies them between chunks to stress
    registry churn under load (the shared plan re-buckets its inverted
    routing on every change).
    """
    rng = random.Random(seed)
    live: list[str] = []
    counter = 0
    schedule: list[tuple[str, dict]] = []
    for _ in range(n_events):
        if live and rng.random() < 0.4:
            victim = live.pop(rng.randrange(len(live)))
            schedule.append(("remove", {"query_id": victim}))
        else:
            keyword = rng.choice([*vocabulary, None])
            query_id = f"churn-{counter}"
            counter += 1
            live.append(query_id)
            schedule.append(
                (
                    "add",
                    {
                        "query_id": query_id,
                        "keyword": keyword,
                        "rect": rect,
                        "window_length": window_length,
                    },
                )
            )
    return schedule
