"""Dataset profiles matching Table I of the paper.

A :class:`DatasetProfile` captures the properties of one of the three
evaluation datasets that actually matter to the SURGE algorithms: the spatial
extent, the average arrival rate, the object count, and the weight
distribution.  The profiles below mirror Table I:

=========  ===========  =====================  =========================
Dataset    Objects      Arrival rate (per h)   Spatial extent
=========  ===========  =====================  =========================
UK         1,000,000    5,747                  mainland UK bounding box
US         1,000,000    16,802                 contiguous US bounding box
Taxi       1,000,000    18,145                 Rome (lat 41.6–42.2,
                                               lon 12.0–12.9)
=========  ===========  =====================  =========================

The latitude/longitude ranges printed for UK and US in the paper's Table I
are garbled by the PDF extraction; we use the standard bounding boxes of the
two countries instead, which is what the published arrival densities imply.
Weights are drawn uniformly from ``[1, 100]`` exactly as in Section VII-A.

The paper's default experimental parameters are also encoded here: sliding
windows of one hour for UK/US and five minutes for Taxi, and a query
rectangle whose side is 1/1000 of the coordinate range of the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.primitives import Rect


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical profile of one evaluation dataset."""

    #: Human-readable dataset name ("UK", "US", "Taxi").
    name: str
    #: Number of spatial objects in the full dataset.
    total_objects: int
    #: Average arrival rate, objects per hour.
    arrival_rate_per_hour: float
    #: Spatial extent (longitude on x, latitude on y).
    extent: Rect
    #: Inclusive weight range; weights are drawn uniformly from it.
    weight_range: tuple[float, float]
    #: Default sliding-window length in seconds (Section VII-A).
    default_window_seconds: float
    #: Number of background hotspots used by the synthetic generator.
    hotspot_count: int

    # ------------------------------------------------------------------
    # Derived quantities used throughout the experiments
    # ------------------------------------------------------------------
    @property
    def lon_range(self) -> float:
        """Extent along the x (longitude) axis."""
        return self.extent.width

    @property
    def lat_range(self) -> float:
        """Extent along the y (latitude) axis."""
        return self.extent.height

    @property
    def default_rect_width(self) -> float:
        """The paper's default query-rectangle width: 1/1000 of the x range."""
        return self.lon_range / 1000.0

    @property
    def default_rect_height(self) -> float:
        """The paper's default query-rectangle height: 1/1000 of the y range."""
        return self.lat_range / 1000.0

    @property
    def mean_interarrival_seconds(self) -> float:
        """Average gap between consecutive arrivals, in seconds."""
        return 3600.0 / self.arrival_rate_per_hour


UK_PROFILE = DatasetProfile(
    name="UK",
    total_objects=1_000_000,
    arrival_rate_per_hour=5_747,
    extent=Rect(-8.0, 49.9, 1.8, 58.7),
    weight_range=(1.0, 100.0),
    default_window_seconds=3600.0,
    hotspot_count=12,
)

US_PROFILE = DatasetProfile(
    name="US",
    total_objects=1_000_000,
    arrival_rate_per_hour=16_802,
    extent=Rect(-124.8, 24.5, -66.9, 49.4),
    weight_range=(1.0, 100.0),
    default_window_seconds=3600.0,
    hotspot_count=25,
)

TAXI_PROFILE = DatasetProfile(
    name="Taxi",
    total_objects=1_000_000,
    arrival_rate_per_hour=18_145,
    extent=Rect(12.0, 41.6, 12.9, 42.2),
    weight_range=(1.0, 100.0),
    default_window_seconds=300.0,
    hotspot_count=8,
)

#: All three profiles keyed by their lower-case name.
PROFILES: dict[str, DatasetProfile] = {
    "uk": UK_PROFILE,
    "us": US_PROFILE,
    "taxi": TAXI_PROFILE,
}
