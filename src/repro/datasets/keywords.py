"""Keyword-tagged streams for the case-study workloads (Appendix L).

The paper's case study filters the tweet stream by a keyword ("concert",
"parade", Zika-related terms, ...) before running the detector, then shows
that the detected bursty region coincides with a real-world event.  This
module provides the same pipeline over synthetic data: a background stream
whose objects carry random keywords, plus planted :class:`KeywordEvent`\\ s —
localized, time-bounded surges of objects tagged with a specific keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.geometry.primitives import Rect
from repro.streams.objects import SpatialObject

# The synthetic generators (and numpy, which they need) are imported lazily
# inside the functions that use them: the keyword *predicates* below are part
# of the multi-query routing path (repro.service) and must work on the
# zero-dependency install.

#: Background vocabulary assigned to non-event objects.
DEFAULT_VOCABULARY = (
    "traffic",
    "food",
    "weather",
    "sports",
    "news",
    "music",
    "work",
    "travel",
)


@dataclass(frozen=True)
class KeywordEvent:
    """A planted real-world event: a keyword bursting at a place and time."""

    keyword: str
    center_x: float
    center_y: float
    start_time: float
    duration: float
    radius_x: float
    radius_y: float
    rate_multiplier: float = 5.0

    def to_burst(self):
        """The burst specification that realises this event spatially."""
        from repro.datasets.synthetic import BurstSpec

        return BurstSpec(
            center_x=self.center_x,
            center_y=self.center_y,
            radius_x=self.radius_x,
            radius_y=self.radius_y,
            start_time=self.start_time,
            duration=self.duration,
            rate_multiplier=self.rate_multiplier,
        )

    @property
    def region(self) -> Rect:
        """A rectangle around the event footprint (two standard deviations)."""
        return Rect(
            self.center_x - 2 * self.radius_x,
            self.center_y - 2 * self.radius_y,
            self.center_x + 2 * self.radius_x,
            self.center_y + 2 * self.radius_y,
        )


def attach_keywords(
    objects: list[SpatialObject],
    vocabulary: tuple[str, ...] = DEFAULT_VOCABULARY,
    seed: int = 11,
) -> list[SpatialObject]:
    """Return a copy of the stream with a random keyword attached to each object."""
    import numpy as np

    rng = np.random.default_rng(seed)
    choices = rng.choice(len(vocabulary), size=len(objects))
    tagged = []
    for obj, choice in zip(objects, choices):
        attributes = dict(obj.attributes)
        attributes.setdefault("keywords", (vocabulary[int(choice)],))
        tagged.append(
            SpatialObject(
                x=obj.x,
                y=obj.y,
                timestamp=obj.timestamp,
                weight=obj.weight,
                object_id=obj.object_id,
                attributes=attributes,
            )
        )
    return tagged


def generate_keyword_stream(
    extent: Rect,
    n_background: int,
    arrival_rate_per_hour: float,
    events: tuple[KeywordEvent, ...],
    vocabulary: tuple[str, ...] = DEFAULT_VOCABULARY,
    seed: int = 11,
) -> list[SpatialObject]:
    """A keyword-tagged stream: background chatter plus the planted events.

    Background objects carry a random keyword from ``vocabulary``; event
    objects carry the event's keyword.  The result is timestamp-ordered.
    """
    import numpy as np

    from repro.datasets.synthetic import StreamConfig, generate_stream

    background_config = StreamConfig(
        extent=extent,
        n_objects=n_background,
        arrival_rate_per_hour=arrival_rate_per_hour,
        seed=seed,
    )
    background = attach_keywords(
        generate_stream(background_config), vocabulary=vocabulary, seed=seed
    )

    rng = np.random.default_rng(seed + 13)
    next_id = max((obj.object_id for obj in background), default=-1) + 1
    event_objects: list[SpatialObject] = []
    for event in events:
        rate_per_second = arrival_rate_per_hour / 3600.0 * event.rate_multiplier
        count = int(rng.poisson(rate_per_second * event.duration))
        xs = rng.normal(event.center_x, event.radius_x, size=count)
        ys = rng.normal(event.center_y, event.radius_y, size=count)
        times = rng.uniform(event.start_time, event.start_time + event.duration, size=count)
        weights = rng.integers(1, 101, size=count).astype(float)
        for i in range(count):
            event_objects.append(
                SpatialObject(
                    x=float(np.clip(xs[i], extent.min_x, extent.max_x)),
                    y=float(np.clip(ys[i], extent.min_y, extent.max_y)),
                    timestamp=float(times[i]),
                    weight=float(weights[i]),
                    object_id=next_id,
                    attributes={"keywords": (event.keyword,), "event": event.keyword},
                )
            )
            next_id += 1

    merged = background + event_objects
    merged.sort(key=lambda o: (o.timestamp, o.object_id))
    return merged


def matches_keyword(obj: SpatialObject, keyword: str | None) -> bool:
    """Whether an object passes the case-study keyword filter.

    ``None`` matches every object (an unfiltered query); otherwise the
    object's ``keywords`` attribute tuple must contain ``keyword``.
    """
    if keyword is None:
        return True
    return keyword in obj.attributes.get("keywords", ())


def keyword_predicate(keyword: str | None) -> Callable[[SpatialObject], bool]:
    """The routing predicate for one keyword (``None`` accepts everything).

    This is the per-query filter the multi-query service
    (:class:`repro.service.SurgeService`) applies when multiplexing a shared
    stream across registered queries.
    """
    if keyword is None:
        return lambda obj: True

    def predicate(obj: SpatialObject) -> bool:
        return keyword in obj.attributes.get("keywords", ())

    return predicate


def filter_by_keyword(objects: list[SpatialObject], keyword: str) -> list[SpatialObject]:
    """Objects whose keyword set contains ``keyword`` (the case-study filter)."""
    predicate = keyword_predicate(keyword)
    return [obj for obj in objects if predicate(obj)]
