"""Reading and writing spatial-object streams (CSV and JSON Lines).

Real deployments of SURGE consume recorded traces — ride requests exported
from a dispatch system, geo-tagged messages collected from an API — so the
library ships simple, dependency-free readers and writers for the two common
interchange formats:

* **CSV** with the columns ``timestamp, x, y, weight[, object_id][, keywords]``
  (extra columns are preserved as string attributes), and
* **JSON Lines**, one object per line with the same required keys and an
  optional ``attributes`` object.

Both readers stream lazily, validate each record, and either skip or raise on
malformed rows depending on ``on_error``.

The ``keywords`` attribute — the routing key of the multi-query service and
the case-study filter — survives the round-trip in both formats: it is
written as a ``|``-joined CSV column / a JSON list, and normalised back to
the in-memory tuple-of-strings form on read.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, Literal

from repro.streams.objects import SpatialObject

#: Required CSV columns (``object_id`` is optional and auto-assigned).
REQUIRED_COLUMNS = ("timestamp", "x", "y")

OnError = Literal["raise", "skip"]


class StreamFormatError(ValueError):
    """Raised for malformed records when ``on_error='raise'``."""


def _build_object(
    record: dict[str, object], index: int, source: str
) -> SpatialObject:
    """Validate one parsed record and turn it into a :class:`SpatialObject`."""
    try:
        timestamp = float(record["timestamp"])  # type: ignore[arg-type]
        x = float(record["x"])  # type: ignore[arg-type]
        y = float(record["y"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise StreamFormatError(f"{source}: bad record at index {index}: {exc}") from exc
    weight = record.get("weight", 1.0)
    try:
        weight = float(weight) if weight not in (None, "") else 1.0
    except (TypeError, ValueError) as exc:
        raise StreamFormatError(
            f"{source}: bad weight at index {index}: {record.get('weight')!r}"
        ) from exc
    raw_id = record.get("object_id")
    try:
        object_id = int(raw_id) if raw_id not in (None, "") else index
    except (TypeError, ValueError) as exc:
        raise StreamFormatError(
            f"{source}: bad object_id at index {index}: {raw_id!r}"
        ) from exc
    attributes = record.get("attributes")
    if not isinstance(attributes, dict):
        attributes = {
            key: value
            for key, value in record.items()
            if key not in {"timestamp", "x", "y", "weight", "object_id", "attributes"}
            and value not in (None, "")
        }
    keywords = attributes.get("keywords")
    if keywords is not None and not isinstance(keywords, tuple):
        # Normalise the serialised forms (CSV "a|b" column, JSON list) back
        # to the tuple-of-strings the keyword predicates expect.
        attributes = dict(attributes)
        if isinstance(keywords, str):
            attributes["keywords"] = tuple(k for k in keywords.split("|") if k)
        else:
            try:
                attributes["keywords"] = tuple(str(k) for k in keywords)
            except TypeError as exc:
                raise StreamFormatError(
                    f"{source}: bad keywords at index {index}: {keywords!r} "
                    f"(expected a string or a list of strings)"
                ) from exc
    if weight < 0:
        raise StreamFormatError(f"{source}: negative weight at index {index}")
    return SpatialObject(
        x=x,
        y=y,
        timestamp=timestamp,
        weight=weight,
        object_id=object_id,
        attributes=attributes,
    )


def _handle(
    record: dict[str, object], index: int, source: str, on_error: OnError
) -> SpatialObject | None:
    try:
        return _build_object(record, index, source)
    except StreamFormatError:
        if on_error == "raise":
            raise
        return None


# ---------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------
def read_csv_stream(path: str | Path, on_error: OnError = "raise") -> Iterator[SpatialObject]:
    """Lazily read spatial objects from a CSV file.

    The file must have a header row containing at least ``timestamp``, ``x``
    and ``y``; ``weight`` and ``object_id`` are optional, and any further
    columns become string attributes of the object.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not set(REQUIRED_COLUMNS) <= set(reader.fieldnames):
            raise StreamFormatError(
                f"{path}: CSV header must contain the columns {REQUIRED_COLUMNS}"
            )
        for index, row in enumerate(reader):
            obj = _handle(dict(row), index, str(path), on_error)
            if obj is not None:
                yield obj


def write_csv_stream(path: str | Path, objects: Iterable[SpatialObject]) -> int:
    """Write spatial objects to a CSV file; returns the number of rows written.

    The ``keywords`` attribute tuple, when present, is written as a
    ``|``-joined column so keyword-routed queries work on replayed files.
    ``|`` inside a keyword would make the round-trip lossy, so it is
    rejected rather than silently corrupted.
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "x", "y", "weight", "object_id", "keywords"])
        for obj in objects:
            parts = [str(k) for k in obj.attributes.get("keywords", ())]
            for part in parts:
                if "|" in part:
                    raise ValueError(
                        f"object id={obj.object_id}: keyword {part!r} contains "
                        f"the CSV keyword delimiter '|' and would not survive "
                        f"the round-trip; use the JSONL format for such streams"
                    )
            writer.writerow(
                [obj.timestamp, obj.x, obj.y, obj.weight, obj.object_id, "|".join(parts)]
            )
            count += 1
    return count


# ---------------------------------------------------------------------------
# JSON Lines
# ---------------------------------------------------------------------------
def read_jsonl_stream(path: str | Path, on_error: OnError = "raise") -> Iterator[SpatialObject]:
    """Lazily read spatial objects from a JSON Lines file."""
    path = Path(path)
    with path.open() as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if on_error == "raise":
                    raise StreamFormatError(f"{path}: invalid JSON on line {index + 1}") from exc
                continue
            if not isinstance(record, dict):
                if on_error == "raise":
                    raise StreamFormatError(f"{path}: line {index + 1} is not an object")
                continue
            obj = _handle(record, index, str(path), on_error)
            if obj is not None:
                yield obj


def write_jsonl_stream(path: str | Path, objects: Iterable[SpatialObject]) -> int:
    """Write spatial objects to a JSON Lines file; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for obj in objects:
            record = {
                "timestamp": obj.timestamp,
                "x": obj.x,
                "y": obj.y,
                "weight": obj.weight,
                "object_id": obj.object_id,
            }
            if obj.attributes:
                record["attributes"] = dict(obj.attributes)
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_stream(
    path: str | Path, on_error: OnError = "raise", *, sort: bool = True
) -> list[SpatialObject]:
    """Load a whole stream from a ``.csv`` / ``.jsonl`` / ``.json`` file, sorted by time.

    ``sort=False`` preserves the file's *arrival order* instead — required
    when the file records a disordered feed for the disorder-tolerant
    ingestion tier to absorb (sorting would silently repair the disorder
    being measured, and a poison record's NaN timestamp makes the sort
    comparison itself undefined).
    """
    path = Path(path)
    if path.suffix.lower() == ".csv":
        objects = list(read_csv_stream(path, on_error=on_error))
    elif path.suffix.lower() in {".jsonl", ".json", ".ndjson"}:
        objects = list(read_jsonl_stream(path, on_error=on_error))
    else:
        raise StreamFormatError(f"unsupported stream file extension: {path.suffix!r}")
    if sort:
        objects.sort(key=lambda o: (o.timestamp, o.object_id))
    return objects
