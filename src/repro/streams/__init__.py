"""Stream substrate: spatial objects, window events, and stream sources.

The paper's detectors consume a stream of *events* rather than raw objects:
whenever a spatial object arrives, the two consecutive sliding windows
(current ``Wc`` and past ``Wp``) advance, which produces

* one ``NEW`` event for the arriving object,
* a ``GROWN`` event for every object whose creation time falls out of the
  current window into the past window, and
* an ``EXPIRED`` event for every object that leaves the past window.

:class:`~repro.streams.windows.SlidingWindowPair` performs this conversion;
:mod:`repro.streams.sources` provides stream iterators, merging, and the
arrival-rate stretching used by the scalability experiment (Figure 8).
"""

from repro.streams.objects import (
    EventBatch,
    EventKind,
    RectangleObject,
    SpatialObject,
    WindowEvent,
)
from repro.streams.windows import OutOfOrderError, SlidingWindowPair, WindowState
from repro.streams.sources import (
    ListSource,
    merge_streams,
    stretch_to_rate,
    stretch_to_duration,
)
from repro.streams.watermark import (
    IngestStats,
    WatermarkReorderBuffer,
    classify_bad_record,
)
from repro.streams.faults import FaultInjector, FaultProfile

__all__ = [
    "EventBatch",
    "EventKind",
    "RectangleObject",
    "SpatialObject",
    "WindowEvent",
    "OutOfOrderError",
    "SlidingWindowPair",
    "WindowState",
    "ListSource",
    "merge_streams",
    "stretch_to_rate",
    "stretch_to_duration",
    "IngestStats",
    "WatermarkReorderBuffer",
    "classify_bad_record",
    "FaultInjector",
    "FaultProfile",
]
