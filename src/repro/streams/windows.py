"""The two consecutive sliding windows and their event stream.

Section III of the paper defines, at stream time ``t`` and for a window
length ``|W|``:

* the current window  ``Wc = (t - |W|,  t]``
* the past window     ``Wp = (t - 2|W|, t - |W|]``

:class:`SlidingWindowPair` ingests spatial objects in timestamp order and
emits the ``NEW`` / ``GROWN`` / ``EXPIRED`` events that the detectors consume
(Section IV-C).  Ingestion comes in two flavours:

* :meth:`SlidingWindowPair.observe` — one object at a time, returning the
  events it triggers in timeline order (the paper's per-event model);
* :meth:`SlidingWindowPair.observe_batch` — a whole timestamp-ordered chunk
  at once, returning an :class:`~repro.streams.objects.EventBatch` whose
  events are grouped by kind.  The batch path computes the window cutoffs
  once per chunk and drains the deques in bulk, so the per-object
  bookkeeping cost is amortised over the chunk; detectors exploit it through
  :meth:`repro.core.base.BurstyRegionDetector.apply_events`.

It also exposes the exact contents of both windows at any point in time via
:class:`WindowState`, which the brute-force ground-truth algorithms and the
approximation-ratio harness rely on.  Snapshots are materialised lazily: the
tuple copies are built on the first :meth:`SlidingWindowPair.state` read
after a mutation and cached until the next mutation, so harnesses probing
the state on every object no longer pay an O(n) rebuild per probe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.streams.objects import EventBatch, EventKind, SpatialObject, WindowEvent


class OutOfOrderError(ValueError):
    """An arrival (or clock advance) would move stream time backwards.

    Subclasses :class:`ValueError` so historical ``except ValueError``
    callers keep working, while the service's strict mode and the
    quarantine path can catch it precisely — and act on the attributes —
    without string matching.

    Attributes
    ----------
    object_id:
        Id of the offending object, or ``None`` for a bare
        :meth:`SlidingWindowPair.advance_time` call.
    timestamp:
        The offending (earlier) timestamp.
    last_time:
        The last-accepted stream time it fell behind.
    """

    def __init__(
        self,
        message: str,
        *,
        object_id: int | None = None,
        timestamp: float,
        last_time: float,
    ) -> None:
        super().__init__(message)
        self.object_id = object_id
        self.timestamp = timestamp
        self.last_time = last_time


@dataclass(frozen=True, slots=True)
class WindowState:
    """An immutable snapshot of the two sliding windows.

    ``current`` and ``past`` hold the objects whose creation times fall in
    ``Wc`` and ``Wp`` respectively, ordered by creation time; ``time`` is the
    stream time of the snapshot and ``window_length`` is ``|W|``.
    """

    time: float
    window_length: float
    current: tuple[SpatialObject, ...]
    past: tuple[SpatialObject, ...]

    @property
    def total_objects(self) -> int:
        """Number of objects alive in either window."""
        return len(self.current) + len(self.past)


class SlidingWindowPair:
    """Maintains ``Wc`` and ``Wp`` and converts arrivals into window events.

    Parameters
    ----------
    window_length:
        Length ``|W|`` shared by the current and past windows (the paper's
        default setting; different lengths are supported through
        ``past_window_length``).
    past_window_length:
        Optional distinct length for the past window.

    Notes
    -----
    Objects must be observed in non-decreasing timestamp order; the class
    raises :class:`OutOfOrderError` (a :class:`ValueError`) otherwise,
    because out-of-order arrivals would silently corrupt every detector's
    incremental state.  Callers that tolerate bounded disorder re-sort ahead
    of the windows with :class:`repro.streams.watermark.WatermarkReorderBuffer`.
    """

    def __init__(self, window_length: float, past_window_length: float | None = None) -> None:
        if window_length <= 0:
            raise ValueError("window_length must be positive")
        if past_window_length is not None and past_window_length <= 0:
            raise ValueError("past_window_length must be positive")
        self.window_length = float(window_length)
        self.past_window_length = float(
            past_window_length if past_window_length is not None else window_length
        )
        self._current: deque[SpatialObject] = deque()
        self._past: deque[SpatialObject] = deque()
        self._time = float("-inf")
        self._expired_seen = False
        self._state_cache: WindowState | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(self, obj: SpatialObject) -> list[WindowEvent]:
        """Ingest one spatial object and return the resulting window events.

        The returned list contains the ``GROWN`` and ``EXPIRED`` events caused
        by advancing the stream time to ``obj.timestamp`` (oldest first),
        followed by the ``NEW`` event for ``obj`` itself.
        """
        if obj.timestamp < self._time:
            raise OutOfOrderError(
                f"out-of-order arrival: object id={obj.object_id} has "
                f"timestamp t={obj.timestamp}, which is earlier than the "
                f"last-accepted stream time t={self._time} (arrivals must "
                f"be in non-decreasing timestamp order)",
                object_id=obj.object_id,
                timestamp=obj.timestamp,
                last_time=self._time,
            )
        events = self.advance_time(obj.timestamp)
        self._current.append(obj)
        self._state_cache = None
        events.append(WindowEvent(kind=EventKind.NEW, obj=obj, time=obj.timestamp))
        return events

    def observe_batch(self, objects: Iterable[SpatialObject]) -> EventBatch:
        """Ingest a timestamp-ordered chunk and return its events as a batch.

        Equivalent to calling :meth:`observe` for every object, except that

        * the window cutoffs are computed once (at the chunk's final
          timestamp) and both deques are drained in one bulk pass, instead of
          re-scanning the deque heads per object;
        * all ``GROWN`` / ``EXPIRED`` events are stamped with the batch end
          time rather than the individual arrival that triggered them;
        * the events come back grouped by kind in an
          :class:`~repro.streams.objects.EventBatch` (whose ``events`` tuple
          preserves a lifecycle-safe order for per-event appliers).

        The final window contents, the emitted event kinds per object, and
        their per-object ordering are identical to the per-object path.
        """
        objs = objects if isinstance(objects, Sequence) else list(objects)
        if not objs:
            return EventBatch(time=self._time, events=(), new=(), grown=(), expired=())
        previous = self._time
        for index, obj in enumerate(objs):
            if obj.timestamp < previous:
                raise OutOfOrderError(
                    f"out-of-order arrival in batch: object id={obj.object_id} "
                    f"(chunk position {index}) has timestamp t={obj.timestamp}, "
                    f"which is earlier than the last-accepted stream time "
                    f"t={previous} (arrivals must be in non-decreasing "
                    f"timestamp order)",
                    object_id=obj.object_id,
                    timestamp=obj.timestamp,
                    last_time=previous,
                )
            previous = obj.timestamp

        end_time = objs[-1].timestamp
        current_cutoff = end_time - self.window_length
        # Summing the lengths before subtracting matches the paper's
        # ``t - 2|W|`` boundary bit for bit (see advance_time).
        past_cutoff = end_time - (self.window_length + self.past_window_length)

        # Pre-existing objects: advancing the clock to the end of the chunk
        # is exactly one bulk drain of both deques (and shares advance_time's
        # cutoff arithmetic instead of duplicating it).  The grouped views
        # are then filled alongside the lifecycle-safe event list.
        events = self.advance_time(end_time)
        new_events: list[WindowEvent] = []
        grown_events: list[WindowEvent] = []
        expired_events: list[WindowEvent] = []
        for event in events:
            if event.kind is EventKind.GROWN:
                grown_events.append(event)
            else:
                expired_events.append(event)

        # Arrivals, classified directly against the end-of-chunk cutoffs.  An
        # arrival that is already out of the current window by the end of the
        # chunk emits its whole lifecycle here, in order.
        current = self._current
        past = self._past
        for obj in objs:
            event = WindowEvent(kind=EventKind.NEW, obj=obj, time=obj.timestamp)
            events.append(event)
            new_events.append(event)
            if obj.timestamp > current_cutoff:
                current.append(obj)
                continue
            event = WindowEvent(kind=EventKind.GROWN, obj=obj, time=end_time)
            events.append(event)
            grown_events.append(event)
            if obj.timestamp <= past_cutoff:
                self._expired_seen = True
                event = WindowEvent(kind=EventKind.EXPIRED, obj=obj, time=end_time)
                events.append(event)
                expired_events.append(event)
            else:
                past.append(obj)

        self._state_cache = None
        return EventBatch(
            time=end_time,
            events=tuple(events),
            new=tuple(new_events),
            grown=tuple(grown_events),
            expired=tuple(expired_events),
        )

    def advance_time(self, time: float) -> list[WindowEvent]:
        """Advance the stream clock to ``time`` without inserting an object.

        Returns the ``GROWN`` and ``EXPIRED`` events triggered by the advance
        (oldest first).  Useful to flush the windows at the end of a stream or
        to evaluate the detector state at an arbitrary instant.
        """
        if time < self._time:
            raise OutOfOrderError(
                f"cannot move stream time backwards: requested t={time} is "
                f"earlier than the last-accepted stream time t={self._time}",
                timestamp=time,
                last_time=self._time,
            )
        self._time = time
        self._state_cache = None
        events: list[WindowEvent] = []
        current_cutoff = time - self.window_length
        # Summing the lengths before subtracting matches the paper's
        # ``t - 2|W|`` boundary bit for bit (subtracting twice rounds
        # differently and can mis-expire an object sitting exactly on it).
        past_cutoff = time - (self.window_length + self.past_window_length)

        # Objects falling out of the past window expire first (they are the
        # oldest), then objects falling out of the current window grow into
        # the past window.  Processing in this order keeps both deques sorted.
        while self._past and self._past[0].timestamp <= past_cutoff:
            expired = self._past.popleft()
            self._expired_seen = True
            events.append(WindowEvent(kind=EventKind.EXPIRED, obj=expired, time=time))

        while self._current and self._current[0].timestamp <= current_cutoff:
            grown = self._current.popleft()
            if grown.timestamp <= past_cutoff:
                # The clock jumped by more than a full window: the object
                # skips the past window entirely.  Emit both transitions so
                # detectors see a consistent lifecycle.
                self._expired_seen = True
                events.append(WindowEvent(kind=EventKind.GROWN, obj=grown, time=time))
                events.append(WindowEvent(kind=EventKind.EXPIRED, obj=grown, time=time))
            else:
                self._past.append(grown)
                events.append(WindowEvent(kind=EventKind.GROWN, obj=grown, time=time))
        return events

    def observe_many(self, objects: Iterable[SpatialObject]) -> Iterator[WindowEvent]:
        """Ingest a whole stream, yielding events in order."""
        for obj in objects:
            yield from self.observe(obj)

    def clone(self) -> "SlidingWindowPair":
        """An independent copy with bit-identical window state.

        Used by the multi-query service to *un-share* a window pair when a
        shard checkpointed under the shared execution plan is restored with
        the plan disabled: every member pipeline then gets its own pair,
        each continuing the stream exactly as the shared one would have.
        """
        twin = SlidingWindowPair(
            self.window_length, past_window_length=self.past_window_length
        )
        twin._current = deque(self._current)
        twin._past = deque(self._past)
        twin._time = self._time
        twin._expired_seen = self._expired_seen
        return twin

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        """The current stream time (arrival time of the latest object)."""
        return self._time

    @property
    def current_window(self) -> Sequence[SpatialObject]:
        """Objects currently in ``Wc`` (oldest first)."""
        return self.state().current

    @property
    def past_window(self) -> Sequence[SpatialObject]:
        """Objects currently in ``Wp`` (oldest first)."""
        return self.state().past

    def state(self) -> WindowState:
        """An immutable snapshot of both windows.

        The snapshot is materialised lazily and cached: repeated reads
        between mutations return the same :class:`WindowState` object, so a
        harness probing the state after every object pays the O(n) tuple
        construction only when something actually changed.
        """
        cached = self._state_cache
        if cached is None:
            cached = WindowState(
                time=self._time,
                window_length=self.window_length,
                current=tuple(self._current),
                past=tuple(self._past),
            )
            self._state_cache = cached
        return cached

    def is_stable(self) -> bool:
        """Whether the system has reached the paper's "stable" regime.

        The experimental protocol of Section VII starts measuring only once
        at least one object has expired from the past window, i.e. the
        stream has been running for longer than ``|Wc| + |Wp|``.
        """
        return self._expired_seen

    def __len__(self) -> int:
        """Total number of objects alive in either window."""
        return len(self._current) + len(self._past)
