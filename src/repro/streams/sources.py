"""Stream sources and stream transformations.

The evaluation of the paper manipulates streams in a few recurring ways:

* replaying a finite list of objects in timestamp order (all experiments),
* merging several sub-streams (e.g. background traffic + a planted event),
* *stretching* a stream so that the same objects arrive over a shorter or
  longer span — this is exactly how the paper's scalability experiment
  (Figure 8) varies the arrival rate from 2 to 10 million objects per day
  while reusing the same datasets.

This module provides those operations on plain iterables of
:class:`~repro.streams.objects.SpatialObject`.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Iterable, Iterator, Sequence

from repro.streams.objects import SpatialObject


class ListSource:
    """A replayable stream backed by a sorted list of spatial objects.

    Objects are sorted by ``(timestamp, object_id)`` on construction so that
    replays are deterministic even when the input order is arbitrary.
    """

    def __init__(self, objects: Iterable[SpatialObject]) -> None:
        self._objects = sorted(objects, key=lambda o: (o.timestamp, o.object_id))

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def __getitem__(self, index: int) -> SpatialObject:
        return self._objects[index]

    @property
    def objects(self) -> Sequence[SpatialObject]:
        """The underlying sorted object list."""
        return self._objects

    @property
    def duration(self) -> float:
        """Time span between the first and last arrival (0 for ≤1 object)."""
        if len(self._objects) < 2:
            return 0.0
        return self._objects[-1].timestamp - self._objects[0].timestamp

    def arrival_rate(self, per: float = 3600.0) -> float:
        """Average number of arrivals per ``per`` seconds (default: per hour)."""
        if self.duration <= 0:
            return float("inf") if self._objects else 0.0
        return len(self._objects) / self.duration * per


def merge_streams(*streams: Iterable[SpatialObject]) -> list[SpatialObject]:
    """Merge several timestamp-ordered streams into one sorted list.

    Inputs need not be individually sorted; the result is always sorted by
    ``(timestamp, object_id)``.
    """
    merged = [obj for stream in streams for obj in stream]
    merged.sort(key=lambda o: (o.timestamp, o.object_id))
    return merged


def stretch_to_duration(
    objects: Sequence[SpatialObject], target_duration: float
) -> list[SpatialObject]:
    """Linearly rescale arrival times so the stream spans ``target_duration`` seconds.

    The first object keeps its timestamp; every subsequent inter-arrival gap
    is scaled by the same factor.  This mirrors the paper's protocol of
    "shrinking the arrival time of each object" so that 1 million objects
    arrive in 24 hours (Section VII-E).
    """
    if target_duration <= 0:
        raise ValueError("target_duration must be positive")
    if not objects:
        return []
    ordered = sorted(objects, key=lambda o: (o.timestamp, o.object_id))
    start = ordered[0].timestamp
    duration = ordered[-1].timestamp - start
    if duration <= 0:
        # All arrivals are simultaneous: spread them uniformly instead, so a
        # positive-rate stream is still produced.
        step = target_duration / max(len(ordered) - 1, 1)
        return [
            replace(obj, timestamp=start + index * step)
            for index, obj in enumerate(ordered)
        ]
    factor = target_duration / duration
    return [
        replace(obj, timestamp=start + (obj.timestamp - start) * factor)
        for obj in ordered
    ]


def stretch_to_rate(
    objects: Sequence[SpatialObject], arrivals_per_day: float
) -> list[SpatialObject]:
    """Rescale arrival times so the stream has the given average daily rate.

    Used by the scalability experiment (Figure 8), which varies the rate from
    2 to 10 million objects per day.
    """
    if arrivals_per_day <= 0:
        raise ValueError("arrivals_per_day must be positive")
    if not objects:
        return []
    target_duration = len(objects) / arrivals_per_day * 86_400.0
    return stretch_to_duration(objects, target_duration)


def interleave_sorted(*streams: Iterable[SpatialObject]) -> Iterator[SpatialObject]:
    """Lazily merge already-sorted streams (k-way merge by timestamp)."""
    yield from heapq.merge(*streams, key=lambda o: (o.timestamp, o.object_id))


def iter_chunks(
    stream: Iterable[SpatialObject], chunk_size: int, start_offset: int = 0
) -> Iterator[list[SpatialObject]]:
    """Split a stream into consecutive chunks of at most ``chunk_size`` objects.

    This is the shared chunker of the batched ingestion paths
    (:meth:`repro.core.monitor.SurgeMonitor.run` with a chunk size,
    :class:`repro.service.SurgeService`): one pass over the stream, no
    materialisation of the whole input, last chunk possibly short.

    ``start_offset`` skips the first that-many *chunks*: the yielded chunks
    are exactly those an uninterrupted ``iter_chunks(stream, chunk_size)``
    would have produced from chunk ``start_offset`` on.  This is the replay
    primitive of checkpoint recovery (:mod:`repro.state`): a consumer that
    durably recorded having applied ``k`` chunks resumes with
    ``start_offset=k`` and sees each remaining chunk exactly once.  Sequence
    sources seek directly; plain iterators are drained and the skipped
    prefix discarded.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if start_offset < 0:
        raise ValueError(f"start_offset must be non-negative, got {start_offset}")
    if isinstance(stream, Sequence):
        for start in range(start_offset * chunk_size, len(stream), chunk_size):
            chunk = stream[start : start + chunk_size]
            yield chunk if isinstance(chunk, list) else list(chunk)
        return
    chunk: list[SpatialObject] = []
    skipped = 0
    for obj in stream:
        chunk.append(obj)
        if len(chunk) >= chunk_size:
            if skipped < start_offset:
                skipped += 1
            else:
                yield chunk
            chunk = []
    if chunk and skipped >= start_offset:
        yield chunk
