"""Seeded fault injection for chaos tests, smokes and robustness benchmarks.

:class:`FaultInjector` wraps a clean, timestamp-ordered stream and replays
it with composable, *deterministic* (seeded) imperfections:

* **bounded disorder** — a fraction of objects arrive late, displaced by up
  to ``max_disorder`` stream seconds.  The injector perturbs each chosen
  object's *sort key* (its timestamp plus a uniform delay) and re-sorts the
  arrival order by the perturbed keys, so an object is emitted after peers
  up to ``max_disorder`` seconds ahead of it — exactly the bound
  :class:`~repro.streams.watermark.WatermarkReorderBuffer` absorbs losslessly
  when ``max_lateness >= max_disorder``;
* **duplicate object ids** — a fraction of arrivals is re-emitted shortly
  after the original with the same ``object_id`` (the retry/replay failure
  mode), offset within ``duplicate_delay`` so they stay inside the same
  reorder horizon;
* **malformed / poison records** — records that must never reach a sliding
  window: NaN timestamps, non-finite coordinates, raw dicts, broken
  ``keywords`` payloads.  The kinds are selectable so file-based harnesses
  can restrict themselves to kinds their serialisation can round-trip;
* **flash-crowd ramps** — a burst window during which arrival gaps are
  compressed by ``flash_crowd_factor``, modelling a sudden crowd without
  changing object contents (timestamps are rewritten, which is why this
  profile is applied to the *clean* stream before disorder, and why
  :meth:`FaultInjector.reference` returns the post-ramp stream as the
  ground truth);
* **slow subscribers** — :meth:`FaultInjector.make_slow_subscriber` wraps a
  result callback so a seeded fraction of deliveries blocks for a bounded
  wall-clock delay, the consumer-side failure mode the service's bounded
  :class:`~repro.service.bus.Subscription` queues and overload watermarks
  must absorb;
* **detector stalls** — :meth:`FaultInjector.make_stall_gate` returns a
  per-chunk gate that blocks on a seeded fraction of chunk indices,
  modelling a slow detector/executor that lets ingest back up.

The sleeps are wall-clock (they model *latency*, not stream content), but
*which* deliveries or chunks stall is seeded — two runs with the same
profile and seed stall at the same points, so a chaos replay after a crash
meets the same slowdown schedule.

The injector is pure: :meth:`materialize` always returns the same arrival
list for the same input and profile, and :meth:`reference` returns the
matching fault-free, pre-sorted stream the detectors' output is compared
against.  Tests, ``scripts/chaos_smoke.py`` and
``benchmarks/bench_robustness.py`` all share it, so "10% disorder" means
the same thing everywhere.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Sequence

from repro.streams.objects import SpatialObject

__all__ = ["FaultProfile", "FaultInjector", "POISON_KINDS"]

#: All poison-record kinds the injector can produce.  ``nan_timestamp`` /
#: ``nan_x`` / ``inf_weight`` survive CSV round-trips (float('nan')/'inf'
#: parse back), so file-based harnesses use those; ``raw_dict`` and
#: ``bad_keywords`` only exist in-memory.
POISON_KINDS = ("nan_timestamp", "nan_x", "inf_weight", "raw_dict", "bad_keywords")


@dataclass(frozen=True)
class FaultProfile:
    """A composable description of what to inject.

    All fractions are of the clean stream's length; every fault class is
    disabled at its default.  Fields compose freely — e.g. disorder plus
    duplicates plus poison is the chaos smoke's profile.
    """

    #: Fraction of objects emitted out of order, displaced by up to
    #: ``max_disorder`` stream seconds.
    disorder_fraction: float = 0.0
    #: Upper bound (stream seconds) on any injected displacement.
    max_disorder: float = 0.0
    #: Fraction of arrivals re-emitted with the same object id.
    duplicate_fraction: float = 0.0
    #: Re-emission delay bound (stream seconds) for duplicates.
    duplicate_delay: float = 1.0
    #: Fraction of *extra* malformed records interleaved into the stream.
    poison_fraction: float = 0.0
    #: Which poison kinds to draw from (subset of :data:`POISON_KINDS`).
    poison_kinds: tuple[str, ...] = ("nan_timestamp", "nan_x", "inf_weight")
    #: Arrival-gap compression factor inside the flash-crowd window
    #: (> 1 = faster arrivals); 1.0 disables the ramp.
    flash_crowd_factor: float = 1.0
    #: Flash-crowd window as fractions of the stream's index range.
    flash_crowd_span: tuple[float, float] = (0.4, 0.6)
    #: Fraction of subscriber deliveries that block (0 disables the
    #: slow-subscriber profile; see :meth:`FaultInjector.make_slow_subscriber`).
    slow_subscriber_fraction: float = 0.0
    #: Upper bound (wall seconds) on one blocked delivery's sleep.
    slow_subscriber_delay: float = 0.005
    #: Fraction of chunk indices at which the detector-stall gate blocks
    #: (0 disables the profile; see :meth:`FaultInjector.make_stall_gate`).
    detector_stall_fraction: float = 0.0
    #: Upper bound (wall seconds) on one stalled chunk's sleep.
    detector_stall_delay: float = 0.005

    def __post_init__(self) -> None:
        for name in (
            "disorder_fraction",
            "duplicate_fraction",
            "poison_fraction",
            "slow_subscriber_fraction",
            "detector_stall_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("slow_subscriber_delay", "detector_stall_delay"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        if self.disorder_fraction > 0 and self.max_disorder <= 0:
            raise ValueError(
                "disorder_fraction > 0 requires a positive max_disorder bound"
            )
        if self.duplicate_delay < 0:
            raise ValueError(f"duplicate_delay must be >= 0, got {self.duplicate_delay!r}")
        if self.flash_crowd_factor < 1.0:
            raise ValueError(
                f"flash_crowd_factor must be >= 1, got {self.flash_crowd_factor!r}"
            )
        unknown = set(self.poison_kinds) - set(POISON_KINDS)
        if unknown:
            raise ValueError(
                f"unknown poison kinds {sorted(unknown)}; choose from {POISON_KINDS}"
            )


class FaultInjector:
    """Deterministically replays a clean stream with injected faults.

    Parameters
    ----------
    objects:
        The clean stream (sorted by ``(timestamp, object_id)`` on entry so
        the reference is well defined regardless of input order).
    profile:
        The :class:`FaultProfile` to apply; keyword overrides build one
        in place (``FaultInjector(objs, seed=7, disorder_fraction=0.1,
        max_disorder=5.0)``).
    seed:
        Seed for the private RNG — same seed, same arrival sequence.

    After :meth:`materialize` (or iteration) the injected counts are
    available as ``disordered``, ``duplicates``, ``poisoned``.  Replayed
    through the tolerant tier, ``duplicates`` and ``poisoned`` match the
    ``duplicates_seen`` / ``quarantined`` :class:`~repro.streams.watermark.
    IngestStats` counters exactly; ``disordered`` upper-bounds ``reordered``
    (a delayed object that no peer actually overtook still arrives in
    order).

    Displacement bound: an object's arrival is displaced by at most
    ``max_disorder`` stream seconds, a *duplicate's* by at most
    ``max_disorder + duplicate_delay`` — size the tolerant tier's
    ``max_lateness`` to at least their sum for a lossless (zero
    ``late_dropped``) replay.
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        profile: FaultProfile | None = None,
        *,
        seed: int,
        **overrides: Any,
    ) -> None:
        if profile is None:
            profile = FaultProfile(**overrides)
        elif overrides:
            profile = replace(profile, **overrides)
        self.profile = profile
        self.seed = seed
        clean = sorted(objects, key=lambda o: (o.timestamp, o.object_id))
        self._reference = self._apply_flash_crowd(clean)
        self._arrivals: list[Any] | None = None
        self.disordered = 0
        self.duplicates = 0
        self.poisoned = 0
        self.subscriber_stalls = 0
        self.detector_stalls = 0

    # ------------------------------------------------------------------
    # The faulty stream and its ground truth
    # ------------------------------------------------------------------
    def reference(self) -> list[SpatialObject]:
        """The fault-free, pre-sorted stream results are compared against.

        Flash-crowd timestamp rewriting (which changes the *true* stream) is
        included; disorder, duplicates and poison (which the tolerant tier
        must absorb) are not.
        """
        return list(self._reference)

    def materialize(self) -> list[Any]:
        """The faulty arrival sequence (cached; iteration uses it too).

        Entries are :class:`~repro.streams.objects.SpatialObject` instances
        plus, when ``poison_fraction > 0``, the malformed records — which may
        be non-``SpatialObject`` values (e.g. raw dicts), hence the loose
        element type.
        """
        if self._arrivals is None:
            self._arrivals = self._build()
        return list(self._arrivals)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.materialize())

    def __len__(self) -> int:
        return len(self.materialize())

    # ------------------------------------------------------------------
    # Latency profiles (consumer- and detector-side slowness)
    # ------------------------------------------------------------------
    def make_slow_subscriber(
        self, inner: Any | None = None
    ) -> "Callable[[Any], None]":
        """A result callback that blocks on a seeded fraction of deliveries.

        Wraps ``inner`` (a ``bus.subscribe`` callback, or ``None`` for a
        sink): each call draws from a private RNG seeded off the injector's
        seed; with probability ``slow_subscriber_fraction`` it sleeps up to
        ``slow_subscriber_delay`` wall seconds before forwarding.  The stall
        schedule (which delivery numbers block) is deterministic; the
        injector counts blocked deliveries in ``subscriber_stalls``.
        """
        profile = self.profile
        rng = random.Random(f"{self.seed}:slow_subscriber")

        def callback(update: Any) -> None:
            if (
                profile.slow_subscriber_fraction > 0
                and rng.random() < profile.slow_subscriber_fraction
            ):
                self.subscriber_stalls += 1
                time.sleep(rng.uniform(0.0, profile.slow_subscriber_delay))
            if inner is not None:
                inner(update)

        return callback

    def make_stall_gate(self) -> "Callable[[int], None]":
        """A per-chunk gate that blocks on a seeded fraction of chunks.

        Call it with each chunk index between ``push_many`` calls (or from a
        subscriber loop): a private RNG keyed off the injector's seed *and
        the chunk index* decides whether that chunk stalls for up to
        ``detector_stall_delay`` wall seconds — keying off the index means a
        replay that revisits chunk ``i`` meets the same decision, whatever
        order calls arrive in.  Stalls are counted in ``detector_stalls``.
        """
        profile = self.profile
        seed = self.seed

        def gate(chunk_index: int) -> None:
            if profile.detector_stall_fraction <= 0:
                return
            rng = random.Random(f"{seed}:detector_stall:{chunk_index}")
            if rng.random() < profile.detector_stall_fraction:
                self.detector_stalls += 1
                time.sleep(rng.uniform(0.0, profile.detector_stall_delay))

        return gate

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _apply_flash_crowd(self, clean: list[SpatialObject]) -> list[SpatialObject]:
        profile = self.profile
        if profile.flash_crowd_factor == 1.0 or len(clean) < 3:
            return clean
        lo_frac, hi_frac = profile.flash_crowd_span
        lo = max(1, int(len(clean) * lo_frac))
        hi = max(lo + 1, int(len(clean) * hi_frac))
        # Rebuild timestamps from inter-arrival gaps, compressing the gaps
        # inside [lo, hi) by the factor; everything after the window shifts
        # earlier by the time saved, so the stream stays ordered throughout.
        out = list(clean)
        previous = out[0].timestamp
        for index in range(1, len(out)):
            gap = clean[index].timestamp - clean[index - 1].timestamp
            if lo <= index < hi:
                gap /= profile.flash_crowd_factor
            previous += gap
            out[index] = replace(out[index], timestamp=previous)
        return out

    def _build(self) -> list[Any]:
        rng = random.Random(self.seed)
        profile = self.profile
        reference = self._reference
        self.disordered = 0
        self.duplicates = 0
        self.poisoned = 0

        # Arrival order: perturb chosen objects' sort keys by a uniform
        # delay in (0, max_disorder], then stable-sort by perturbed key.
        # An object can then only be overtaken by peers whose true
        # timestamps are within max_disorder of its own — the displacement
        # bound the reorder buffer's watermark needs.
        keyed: list[tuple[float, int, Any]] = []
        for index, obj in enumerate(reference):
            key = obj.timestamp
            if profile.disorder_fraction > 0 and rng.random() < profile.disorder_fraction:
                key += rng.uniform(0.0, profile.max_disorder)
                if key != obj.timestamp:
                    self.disordered += 1
            keyed.append((key, index, obj))
            if profile.duplicate_fraction > 0 and rng.random() < profile.duplicate_fraction:
                delay = rng.uniform(0.0, profile.duplicate_delay)
                keyed.append((key + delay, index, obj))
                self.duplicates += 1
        keyed.sort(key=lambda entry: (entry[0], entry[1]))
        arrivals: list[Any] = [entry[2] for entry in keyed]

        if profile.poison_fraction > 0 and reference:
            count = max(1, int(len(reference) * profile.poison_fraction))
            self.poisoned = count
            for _ in range(count):
                position = rng.randrange(len(arrivals) + 1)
                template = reference[rng.randrange(len(reference))]
                arrivals.insert(position, self._make_poison(rng, template))
        return arrivals

    def _make_poison(self, rng: random.Random, template: SpatialObject) -> Any:
        kind = rng.choice(self.profile.poison_kinds)
        if kind == "nan_timestamp":
            return replace(template, timestamp=float("nan"))
        if kind == "nan_x":
            return replace(template, x=float("nan"))
        if kind == "inf_weight":
            return replace(template, weight=float("inf"))
        if kind == "raw_dict":
            return {"x": template.x, "y": template.y, "timestamp": template.timestamp}
        assert kind == "bad_keywords"
        return replace(template, attributes={"keywords": 7})
