"""Watermark-based bounded-disorder ingestion: buffer, re-sort, count, drop.

The paper's model assumes a perfectly ordered stream, and the detectors'
incremental state genuinely requires it — :class:`~repro.streams.windows.
SlidingWindowPair` raises :class:`~repro.streams.windows.OutOfOrderError`
on a backwards timestamp because accepting it would silently corrupt every
downstream window and cell record.  Real traffic is not so polite: events
are delayed, batched, retried and replayed, so arrivals are *late* by
bounded amounts almost all the time and by unbounded amounts occasionally.

:class:`WatermarkReorderBuffer` is the standard streaming answer (low
watermarks in the Millwheel/Beam/Flink sense) specialised to this
reproduction's bit-identity bar:

* arrivals are buffered and re-sorted within a configurable ``max_lateness``
  (stream seconds);
* the **watermark** trails the maximum observed timestamp by
  ``max_lateness`` and only ever advances; everything strictly behind it is
  released in ``(timestamp, object_id)`` order, so the emitted stream is
  always non-decreasing;
* an arrival already strictly behind the watermark cannot be emitted
  without breaking the order of what was already released, so it is
  **counted and dropped** (``late_dropped``) — graceful degradation instead
  of a crash, with the loss observable;
* **provable exactness inside the bound**: if every arrival's displacement
  is within ``max_lateness`` (formally: no object arrives after an object
  whose timestamp exceeds its own by more than ``max_lateness``), then no
  arrival is ever behind the watermark, nothing is dropped, and the emitted
  sequence is *exactly* ``sorted(arrivals, key=(timestamp, object_id))`` —
  so every downstream detector result is bit-identical to running over the
  pre-sorted stream.  ``tests/test_service_robustness.py`` locks this with a
  Hypothesis property across detectors, plans and executors.

The buffer is plain picklable Python state (a heap plus counters), which is
what lets :class:`~repro.service.SurgeService` include its held-back events
in checkpoint snapshots: SIGKILL-and-resume under disorder replays the raw
stream from the recorded offset into the restored buffer and stays
exactly-once (``scripts/chaos_smoke.py``).

:class:`IngestStats` is the observable surface of the whole disorder-
tolerant tier (reordering, drops, duplicates, quarantined poison records,
subscriber faults), exported through
:class:`~repro.service.bus.ServiceStats`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.streams.objects import SpatialObject

__all__ = [
    "IngestStats",
    "WatermarkReorderBuffer",
    "classify_bad_record",
]


@dataclass
class IngestStats:
    """Counters of everything the disorder-tolerant ingestion tier absorbed.

    ``reordered``
        Arrivals whose timestamp was behind the maximum already observed —
        they arrived out of order and were re-sorted inside the buffer.
    ``late_dropped``
        Arrivals already strictly behind the watermark (displaced by more
        than ``max_lateness``): emitting them would break the order of what
        was already released, so they were counted and discarded.
    ``duplicates_seen``
        Arrivals whose object id was already observed within the reorder
        horizon.  Duplicates are *processed as distinct arrivals* (the
        paper's model has no dedup — two objects may legitimately share an
        id), so this is an observability counter, not a filter.
    ``quarantined``
        Malformed/poison records screened out before they reached any
        window (see :func:`classify_bad_record`).
    ``subscriber_errors``
        Exceptions raised by result-bus subscriber callbacks and isolated
        by :meth:`~repro.service.bus.ResultBus.publish`.
    ``force_released``
        Held-back arrivals released *early* by the in-flight-chunk budget
        (``SurgeService(max_inflight_chunks=)``) before the watermark
        reached them — the memory bound traded a slice of the reorder
        horizon for boundedness.
    ``spill_errors``
        Quarantine spill writes that failed (unwritable/full
        ``quarantine_dir``); the records were still counted and skipped,
        ingestion continued.
    ``peak_buffered``
        The most raw arrivals ever buffered ahead of the shards (reorder
        heap plus pending chunk) — with ``max_inflight_chunks`` set this
        stays ``<= max_inflight_chunks * chunk_size``.
    """

    reordered: int = 0
    late_dropped: int = 0
    duplicates_seen: int = 0
    quarantined: int = 0
    subscriber_errors: int = 0
    force_released: int = 0
    spill_errors: int = 0
    peak_buffered: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON form stored in service checkpoint manifests."""
        return {
            "reordered": self.reordered,
            "late_dropped": self.late_dropped,
            "duplicates_seen": self.duplicates_seen,
            "quarantined": self.quarantined,
            "subscriber_errors": self.subscriber_errors,
            "force_released": self.force_released,
            "spill_errors": self.spill_errors,
            "peak_buffered": self.peak_buffered,
        }

    @staticmethod
    def from_dict(record: Mapping[str, Any]) -> "IngestStats":
        return IngestStats(
            reordered=int(record.get("reordered", 0)),
            late_dropped=int(record.get("late_dropped", 0)),
            duplicates_seen=int(record.get("duplicates_seen", 0)),
            quarantined=int(record.get("quarantined", 0)),
            subscriber_errors=int(record.get("subscriber_errors", 0)),
            force_released=int(record.get("force_released", 0)),
            spill_errors=int(record.get("spill_errors", 0)),
            peak_buffered=int(record.get("peak_buffered", 0)),
        )


def classify_bad_record(record: Any) -> str | None:
    """Why ``record`` must not reach a sliding window (``None`` = it may).

    The screen admits exactly the records the rest of the pipeline is
    specified over: a :class:`~repro.streams.objects.SpatialObject` with
    finite coordinates, timestamp and weight, and (when present) a
    ``keywords`` attribute the keyword router can iterate.  Anything else —
    a raw dict from a decoder, a NaN timestamp from a corrupt row, a
    ``keywords: 7`` — would either crash deep inside a detector or, worse,
    silently poison window arithmetic (NaN never compares, so a NaN
    timestamp defeats every cutoff test).
    """
    if not isinstance(record, SpatialObject):
        return f"not a SpatialObject (got {type(record).__name__})"
    try:
        if not math.isfinite(record.timestamp):
            return f"non-finite timestamp {record.timestamp!r}"
        if not math.isfinite(record.x) or not math.isfinite(record.y):
            return f"non-finite location ({record.x!r}, {record.y!r})"
        if not math.isfinite(record.weight):
            return f"non-finite weight {record.weight!r}"
    except TypeError:
        return "non-numeric coordinates, timestamp or weight"
    if record.weight < 0:
        return f"negative weight {record.weight!r}"
    attributes = record.attributes
    if attributes:
        if not isinstance(attributes, Mapping):
            return f"attributes is not a mapping (got {type(attributes).__name__})"
        keywords = attributes.get("keywords")
        if keywords is not None and not isinstance(keywords, str):
            if not isinstance(keywords, Iterable):
                return (
                    f"keywords attribute is not a string or iterable "
                    f"(got {type(keywords).__name__})"
                )
            try:
                if any(not isinstance(keyword, str) for keyword in keywords):
                    return "keywords attribute contains non-string entries"
            except TypeError:  # pragma: no cover - exotic iterables
                return "keywords attribute is not iterable"
    return None


class WatermarkReorderBuffer:
    """Re-sorts bounded-disorder arrivals behind an advancing watermark.

    Parameters
    ----------
    max_lateness:
        How far (in stream seconds) an arrival's timestamp may trail the
        maximum timestamp observed so far and still be re-sorted into place.
        Must be positive — ``max_lateness == 0`` *is* the strict mode, in
        which the caller skips the buffer entirely and out-of-order input
        fails fast with :class:`~repro.streams.windows.OutOfOrderError`.

    Contract
    --------
    * :meth:`push` returns the arrivals released by this push, in
      ``(timestamp, object_id)`` order; concatenating all released lists
      (plus a final :meth:`flush`) yields a globally non-decreasing stream.
    * Only objects with ``timestamp < watermark`` are released, and only
      objects with ``timestamp < watermark`` are refused — so an input
      stream whose disorder stays within ``max_lateness`` loses nothing and
      comes out exactly sorted (see the module docstring for the argument).
    * The buffer is plain picklable state; a pickled copy resumes the
      arrival sequence with identical releases, drops and counters, which is
      what makes held-back events checkpointable.
    """

    def __init__(self, max_lateness: float) -> None:
        max_lateness = float(max_lateness)
        if not math.isfinite(max_lateness) or max_lateness <= 0:
            raise ValueError(
                f"max_lateness must be a positive number of stream seconds, "
                f"got {max_lateness!r} (lateness 0 is strict mode: skip the "
                f"buffer and let out-of-order input fail fast)"
            )
        self.max_lateness = max_lateness
        #: Held-back arrivals as a heap of ``(timestamp, object_id, seq, obj)``
        #: — ``seq`` makes ties total so heap order is deterministic and
        #: release order is stable for exact-duplicate arrivals.
        self._heap: list[tuple[float, int, int, SpatialObject]] = []
        self._seq = 0
        self._max_timestamp = float("-inf")
        #: Object ids observed within the reorder horizon: id → latest
        #: timestamp, pruned as the watermark passes them.  Bounds memory to
        #: the ids alive inside one lateness window while still catching the
        #: duplicates that can actually interleave with reordering.
        self._recent_ids: dict[int, float] = {}
        #: Order floor raised by :meth:`force_release`: arrivals behind it
        #: would trail an already force-released object, so they are refused
        #: even when the watermark alone would still admit them.
        self._floor = float("-inf")
        self.reordered = 0
        self.late_dropped = 0
        self.duplicates_seen = 0
        self.force_released = 0

    def __setstate__(self, state: dict) -> None:
        # Buffers pickled before the overload tier lack the floor/counter.
        self.__dict__.update(state)
        if "_floor" not in state:
            self._floor = float("-inf")
        if "force_released" not in state:
            self.force_released = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Completeness frontier: everything before it has been released.

        ``-inf`` until the first arrival.  The watermark trails the maximum
        observed timestamp by ``max_lateness`` and never retreats.
        """
        return self._max_timestamp - self.max_lateness

    def __len__(self) -> int:
        """Number of held-back arrivals."""
        return len(self._heap)

    def push(self, obj: SpatialObject) -> list[SpatialObject]:
        """Accept one arrival; return the objects it released, oldest first.

        A straggler already strictly behind the watermark is counted in
        ``late_dropped`` and discarded (releasing it would break the order
        of the already-released prefix).  Everything else is buffered, the
        watermark advances to ``obj.timestamp - max_lateness`` if that is
        ahead of it, and every held-back object strictly behind the new
        watermark comes out in ``(timestamp, object_id)`` order.
        """
        timestamp = obj.timestamp
        if timestamp < self._max_timestamp:
            self.reordered += 1
            if timestamp < self.watermark or timestamp < self._floor:
                # Behind the watermark, or behind the order floor a
                # force-release raised: emitting it would break the order
                # of the already-released prefix either way.
                self.late_dropped += 1
                return []
        object_id = obj.object_id
        known = self._recent_ids.get(object_id)
        if known is not None:
            self.duplicates_seen += 1
            if timestamp > known:
                self._recent_ids[object_id] = timestamp
        else:
            self._recent_ids[object_id] = timestamp
        heapq.heappush(self._heap, (timestamp, object_id, self._seq, obj))
        self._seq += 1
        if timestamp > self._max_timestamp:
            self._max_timestamp = timestamp
            return self._release(self.watermark)
        return []

    def push_many(self, objects: Iterable[SpatialObject]) -> list[SpatialObject]:
        """Accept several arrivals; return everything they released, in order."""
        released: list[SpatialObject] = []
        for obj in objects:
            released.extend(self.push(obj))
        return released

    def flush(self) -> list[SpatialObject]:
        """Release every held-back arrival (end of stream), oldest first.

        The watermark itself does not move: a subsequent arrival within the
        lateness bound of the maximum observed timestamp would still be
        accepted — but anything it releases now trails an already-flushed
        object, so flushing mid-stream forfeits the sorted-output guarantee.
        Callers flush exactly once, after the last arrival.
        """
        return self._release(float("inf"))

    def force_release(self, count: int) -> list[SpatialObject]:
        """Release the ``count`` oldest held-back arrivals *now*, in order.

        The backpressure valve: when the in-flight budget is exceeded the
        service trades a slice of the reorder horizon for a memory bound.
        Released objects still come out in ``(timestamp, object_id)``
        order, and the order floor rises to the last released timestamp so
        a later straggler behind it is dropped (counted in
        ``late_dropped``) instead of breaking the sorted-output guarantee.
        A disorder-free stream is unaffected: early release only changes
        outcomes for stragglers that would have landed behind the floor.
        """
        released: list[SpatialObject] = []
        heap = self._heap
        for _ in range(min(int(count), len(heap))):
            timestamp, object_id, _, obj = heapq.heappop(heap)
            released.append(obj)
            known = self._recent_ids.get(object_id)
            if known is not None and known <= timestamp:
                del self._recent_ids[object_id]
        if released:
            self.force_released += len(released)
            if released[-1].timestamp > self._floor:
                self._floor = released[-1].timestamp
        return released

    def _release(self, frontier: float) -> list[SpatialObject]:
        released: list[SpatialObject] = []
        heap = self._heap
        while heap and heap[0][0] < frontier:
            timestamp, object_id, _, obj = heapq.heappop(heap)
            released.append(obj)
            # Prune the duplicate horizon: once the watermark passed this
            # timestamp, a same-id arrival could not legally recur anyway.
            known = self._recent_ids.get(object_id)
            if known is not None and known <= timestamp:
                del self._recent_ids[object_id]
        return released

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> list[SpatialObject]:
        """The held-back arrivals in release order (a sorted copy)."""
        return [entry[3] for entry in sorted(self._heap)]

    def counters(self) -> dict[str, int]:
        """The buffer's counters as a plain dict."""
        return {
            "reordered": self.reordered,
            "late_dropped": self.late_dropped,
            "duplicates_seen": self.duplicates_seen,
            "force_released": self.force_released,
        }

    def depths(self) -> dict[str, float | int]:
        """Instantaneous hold state, cheap enough for per-chunk sampling.

        The slow-chunk detector captures this alongside the span tree: a
        chunk that stalled because the reorder buffer was holding thousands
        of arrivals looks very different from one that stalled in a sweep.
        """
        heap = self._heap
        return {
            "held_back": len(heap),
            "watermark": self.watermark,
            "oldest_held": heap[0][0] if heap else None,
            "recent_ids": len(self._recent_ids),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WatermarkReorderBuffer(max_lateness={self.max_lateness}, "
            f"pending={len(self._heap)}, watermark={self.watermark})"
        )
