"""Core stream data types: spatial objects, rectangle objects, window events.

Terminology follows Section III of the paper:

* a **spatial object** ``o = ⟨w, ρ, tc⟩`` carries a weight, a location and a
  creation time; optional free-form attributes (e.g. keywords) support the
  case-study workloads;
* a **rectangle object** ``g = ⟨w, ρ, tc⟩`` is the ``a × b`` rectangle whose
  bottom-left corner is the spatial object's location — the unit the CSPOT
  detectors operate on (Definition 3);
* a **window event** records an object entering the current window
  (``NEW``), moving from the current to the past window (``GROWN``), or
  leaving the past window (``EXPIRED``) — Section IV-C.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.geometry.primitives import Point, Rect, rect_from_bottom_left


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """A weighted, timestamped point object from the stream.

    Parameters
    ----------
    x, y:
        Location of the object (longitude / latitude or any planar frame).
    timestamp:
        Creation time ``tc`` in seconds (any monotone unit works as long as
        window lengths use the same unit).
    weight:
        Non-negative weight ``w``; e.g. relevance of a tweet or number of
        passengers of a trip request.
    object_id:
        Stable identifier; events referring to the same object share it.
    attributes:
        Optional application payload (keywords, category, ...) used by the
        case-study workloads and ignored by the detectors.
    """

    x: float
    y: float
    timestamp: float
    weight: float = 1.0
    object_id: int = -1
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"object weight must be non-negative, got {self.weight}")

    @property
    def location(self) -> Point:
        """The object location as a :class:`~repro.geometry.Point`."""
        return Point(self.x, self.y)

    def to_rectangle(self, width: float, height: float) -> "RectangleObject":
        """Map this spatial object to its rectangle object (Section IV-A).

        The rectangle has size ``width × height`` and its bottom-left corner
        at the object location; weight and creation time carry over.
        """
        return RectangleObject(
            x=self.x,
            y=self.y,
            width=width,
            height=height,
            timestamp=self.timestamp,
            weight=self.weight,
            object_id=self.object_id,
        )


@dataclass(frozen=True, slots=True)
class RectangleObject:
    """The rectangle object generated from a spatial object (Definition 3)."""

    x: float
    y: float
    width: float
    height: float
    timestamp: float
    weight: float = 1.0
    object_id: int = -1

    @property
    def rect(self) -> Rect:
        """The geometric extent of the rectangle object."""
        return rect_from_bottom_left(Point(self.x, self.y), self.width, self.height)

    @property
    def location(self) -> Point:
        """The bottom-left corner (the originating object location)."""
        return Point(self.x, self.y)

    def covers(self, x: float, y: float) -> bool:
        """Whether the rectangle covers the point ``(x, y)`` (closed edges)."""
        return (
            self.x <= x <= self.x + self.width
            and self.y <= y <= self.y + self.height
        )

    def covers_point(self, point: Point) -> bool:
        """Whether the rectangle covers ``point``."""
        return self.covers(point.x, point.y)


class EventKind(enum.Enum):
    """The three window-transition events of Section IV-C."""

    #: The object just arrived and entered the current window ``Wc``.
    NEW = "new"
    #: The object left the current window and entered the past window ``Wp``.
    GROWN = "grown"
    #: The object left the past window and no longer contributes to any score.
    EXPIRED = "expired"


@dataclass(frozen=True, slots=True)
class WindowEvent:
    """A window transition for one spatial object.

    ``time`` is the stream time at which the transition is observed (the
    arrival time of the object that triggered the window advance), which is
    at least ``obj.timestamp`` for ``NEW`` and strictly later for ``GROWN``
    and ``EXPIRED`` events.  Events coming from a batched ingestion step
    (:meth:`repro.streams.windows.SlidingWindowPair.observe_batch`) stamp
    ``GROWN`` / ``EXPIRED`` transitions with the batch end time instead of
    the individual triggering arrival.
    """

    kind: EventKind
    obj: SpatialObject
    time: float

    @property
    def is_new(self) -> bool:
        return self.kind is EventKind.NEW

    @property
    def is_grown(self) -> bool:
        return self.kind is EventKind.GROWN

    @property
    def is_expired(self) -> bool:
        return self.kind is EventKind.EXPIRED


@dataclass(frozen=True, slots=True)
class EventBatch:
    """All window events produced by one batched ingestion step.

    ``events`` is the authoritative, lifecycle-safe ordering: each object's
    transitions appear in ``NEW`` → ``GROWN`` → ``EXPIRED`` order, so
    applying the events one by one is always equivalent to the per-object
    ingestion path.  ``new`` / ``grown`` / ``expired`` are grouped views of
    the same events (each in timestamp order within its kind) for appliers
    that can process a whole kind in bulk.

    Consumers of the grouped views must be aware of *intra-batch lifecycles*:
    when the batch spans more than a window length, an object can appear in
    ``new`` **and** ``grown`` / ``expired`` at once, so applying the grouped
    lists in a fixed kind order (e.g. all expirations first) would process
    that object's expiry before its arrival.  Detectors that consume the
    grouped views therefore either iterate ``events`` for per-record updates
    or otherwise handle such objects explicitly.

    ``time`` is the stream time at the end of the batch.
    """

    time: float
    events: tuple["WindowEvent", ...]
    new: tuple["WindowEvent", ...]
    grown: tuple["WindowEvent", ...]
    expired: tuple["WindowEvent", ...]

    @staticmethod
    def from_events(time: float, events: list["WindowEvent"]) -> "EventBatch":
        """Build a batch from a lifecycle-safe event list, grouping by kind."""
        new: list[WindowEvent] = []
        grown: list[WindowEvent] = []
        expired: list[WindowEvent] = []
        buckets = {
            EventKind.NEW: new,
            EventKind.GROWN: grown,
            EventKind.EXPIRED: expired,
        }
        for event in events:
            buckets[event.kind].append(event)
        return EventBatch(
            time=time,
            events=tuple(events),
            new=tuple(new),
            grown=tuple(grown),
            expired=tuple(expired),
        )

    @property
    def arrivals(self) -> int:
        """Number of spatial objects that arrived in this batch."""
        return len(self.new)

    def __iter__(self):
        """Iterate over the events in lifecycle-safe order."""
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
