"""Command-line interface for the SURGE reproduction.

Three subcommands cover the most common standalone uses of the library:

``run``
    Replay a recorded stream (CSV or JSON Lines, see
    :mod:`repro.datasets.io`) through any detector and print the bursty
    region(s) at a configurable reporting interval.

``serve``
    Replay a stream through the multi-query service
    (:class:`repro.service.SurgeService`): N registered queries from a
    ``queries.json`` file, keyword routing, sharded execution with a
    selectable backend, per-query results at a reporting interval.
    With ``--listen HOST:PORT`` (and no stream file) the service is
    served over TCP instead — length-prefixed JSON frames for ingest /
    register / subscribe, an optional ``--metrics HOST:PORT`` Prometheus
    endpoint, and a graceful SIGINT/SIGTERM drain (final checkpoint,
    exit 0).  Both modes drain gracefully on SIGINT/SIGTERM.

``trace``
    The perf workbench: replay a stream through the service with the
    tracing tier (:mod:`repro.obs`) enabled, print a per-stage latency
    table, and export the recorded spans as Chrome ``trace_event`` JSON —
    loadable in Perfetto or ``chrome://tracing``, one lane per shard.

``generate``
    Produce a synthetic stream that mimics one of the paper's datasets
    (UK / US / Taxi) and write it to CSV or JSON Lines, so that ``run`` —
    or an external system — has something to consume.

``serve`` grows the same tracing tier behind ``--trace-dir DIR`` (write
``trace.json`` + a stage table on exit), ``--slow-chunk SECONDS`` (flag
slow dispatches with their span tree and queue depths), ``--log-json``
(structured JSON log lines), and the ``REPRO_TRACE`` / ``REPRO_LOG_JSON``
environment switches.

Examples
--------
::

    python -m repro.cli generate --profile taxi --objects 5000 --out /tmp/taxi.csv
    python -m repro.cli run /tmp/taxi.csv --algorithm ccs --rect 0.001 0.0006 \
        --window 300 --alpha 0.5 --report-every 500
    python -m repro.cli serve /tmp/taxi.csv --queries queries.json \
        --shards 4 --executor process --chunk-size 1024
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from pathlib import Path
from typing import Sequence

from repro.core.monitor import DETECTOR_NAMES, SurgeMonitor
from repro.core.query import SurgeQuery
from repro.datasets.io import load_stream, write_csv_stream, write_jsonl_stream
from repro.datasets.profiles import PROFILES
from repro.obs import (
    Tracer,
    enable_json_logging,
    format_stage_table,
    install as install_tracer,
    write_chrome_trace,
)
from repro.service import OverloadConfig, OverloadError, SurgeService, load_query_specs
from repro.service.overload import OVERLOAD_POLICIES
from repro.service.shards import EXECUTOR_NAMES

#: Environment switches of the observability tier (see repro.obs): truthy
#: values enable tracing / JSON logging without the corresponding flag.
TRACE_ENV_VAR = "REPRO_TRACE"
LOG_JSON_ENV_VAR = "REPRO_LOG_JSON"


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Continuous bursty-region detection (SURGE, ICDE 2018) over spatial streams.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="replay a stream file through a detector")
    run.add_argument("stream", help="path to a .csv or .jsonl stream file")
    run.add_argument(
        "--algorithm",
        default="ccs",
        choices=sorted(DETECTOR_NAMES),
        help="detector to use (default: ccs, the exact Cell-CSPOT)",
    )
    run.add_argument(
        "--rect",
        nargs=2,
        type=float,
        metavar=("WIDTH", "HEIGHT"),
        required=True,
        help="query rectangle size a b",
    )
    run.add_argument("--window", type=float, required=True, help="window length |W| in seconds")
    run.add_argument("--alpha", type=float, default=0.5, help="burst-score balance parameter")
    run.add_argument("--k", type=int, default=1, help="number of bursty regions to maintain")
    run.add_argument(
        "--backend",
        default=None,
        choices=("auto", "python", "numpy"),
        help="SL-CSPOT sweep kernel: pure python, vectorized numpy, or "
        "size-adaptive auto-selection (default: the REPRO_SWEEP_BACKEND "
        "environment variable, else auto)",
    )
    run.add_argument(
        "--report-every",
        type=int,
        default=1000,
        help="print the current result every N objects (default 1000)",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="ingest the stream in batches of N objects through the batched "
        "event path (SlidingWindowPair.observe_batch -> detector."
        "apply_events), which amortises window maintenance, cell-bound "
        "invalidation and result recomputation over each chunk; must not "
        "exceed --report-every (the default is one chunk per reporting "
        "interval)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="replay a stream through the multi-query service (N queries, sharded)",
    )
    serve.add_argument(
        "stream",
        nargs="?",
        default=None,
        help="path to a .csv or .jsonl stream file (omit with --listen: "
        "the stream then arrives over the network as ingest frames)",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="serve over TCP instead of replaying a file: accept "
        "length-prefixed JSON frames (ingest/register/unregister/"
        "subscribe/stats, see repro.server.protocol) on this endpoint; "
        "PORT 0 picks a free port (printed on stdout).  With --resume "
        "and no --listen, the endpoint recorded in the checkpoint is "
        "re-served",
    )
    serve.add_argument(
        "--metrics",
        default=None,
        metavar="[HOST:]PORT",
        help="with --listen: also serve GET /metrics (Prometheus text "
        "format) and /healthz on this HTTP endpoint",
    )
    serve.add_argument(
        "--max-queued-batches",
        type=int,
        default=256,
        metavar="N",
        help="with --listen: admission bound on queued ingest batches; "
        "batches beyond it are refused with a typed 503 overloaded "
        "reply instead of buffering without bound (default 256)",
    )
    serve.add_argument(
        "--queries",
        default=None,
        help="path to a queries.json file (list of query records, see "
        "repro.service.spec); required unless --resume restores the "
        "registry from a checkpoint",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of shards the queries are spread over (default 1; with "
        "--resume the checkpoint's shard layout is restored and this flag "
        "is ignored)",
    )
    serve.add_argument(
        "--executor",
        default=None,
        choices=EXECUTOR_NAMES,
        help="shard execution backend (default: serial, or — with --resume — "
        "the backend recorded in the checkpoint; results are bit-identical "
        "across backends)",
    )
    serve.add_argument(
        "--chunk-size",
        type=int,
        default=512,
        help="shared-chunker batch size: every chunk is broadcast to each "
        "shard once and each query's monitor ingests its keyword-filtered "
        "slice through the batched push_many path (default 512)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="with --executor remote: size of the worker fleet the "
        "coordinator waits for before serving (default 1); workers join "
        "with 'repro worker --connect HOST:PORT' against the endpoint "
        "printed as 'workers on HOST:PORT', and may join or leave while "
        "serving (shards are rebalanced at safe chunk boundaries)",
    )
    serve.add_argument(
        "--worker-listen",
        default=None,
        metavar="[HOST:]PORT",
        help="with --executor remote: the endpoint the coordinator accepts "
        "worker connections on (default 127.0.0.1:0 — an ephemeral port, "
        "printed on stdout as 'workers on HOST:PORT')",
    )
    serve.add_argument(
        "--spawn-workers",
        action="store_true",
        help="with --executor remote: spawn the --workers worker processes "
        "locally instead of waiting for external 'repro worker' processes "
        "(single-command distributed mode)",
    )
    plan = serve.add_mutually_exclusive_group()
    plan.add_argument(
        "--no-shared-plan",
        dest="shared_plan",
        action="store_const",
        const=False,
        default=None,
        help="disable the shared-work execution plan (inverted keyword "
        "routing + shared window groups/detector units) and route every "
        "chunk through each query's own predicate scan instead; results "
        "are bit-identical either way — this is an escape hatch and the "
        "baseline the plan is benchmarked against (with --resume the "
        "checkpoint's recorded plan is kept unless one of the plan flags "
        "is given)",
    )
    plan.add_argument(
        "--shared-plan",
        dest="shared_plan",
        action="store_const",
        const=True,
        help="force the shared-work execution plan on (the default for a "
        "fresh service); with --resume this overrides a checkpoint that "
        "was recorded with the plan off — restore re-normalises the "
        "snapshot to the requested plan, bit-identically",
    )
    serve.add_argument(
        "--report-every",
        type=int,
        default=4096,
        help="print per-query results every N objects (default 4096; "
        "rounded up to whole chunks)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for durable state (per-shard snapshot files + "
        "write-ahead log, see repro.state); the service checkpoints there "
        "while serving and --resume restarts from the last checkpoint",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="CHUNKS",
        help="take a checkpoint every N ingested chunks (requires "
        "--checkpoint-dir; default 64 when a checkpoint dir is given)",
    )
    serve.add_argument(
        "--checkpoint-every-seconds",
        type=float,
        default=None,
        metavar="STREAM_SECONDS",
        help="also checkpoint whenever the stream clock advanced this far "
        "since the last checkpoint (requires --checkpoint-dir)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore the service from --checkpoint-dir and replay only the "
        "chunks after the last checkpoint (the stream file and --chunk-size "
        "must match the original run; --queries is ignored — the query "
        "registry comes from the checkpoint)",
    )
    serve.add_argument(
        "--max-lateness",
        type=float,
        default=None,
        metavar="STREAM_SECONDS",
        help="absorb out-of-order arrivals displaced by up to this many "
        "stream seconds (watermark reorder buffer ahead of the chunker); "
        "stragglers past the bound are counted and dropped, and results "
        "for within-bound disorder are bit-identical to the pre-sorted "
        "stream.  Default/0: strict mode — any out-of-order arrival "
        "aborts with OutOfOrderError.  With --resume the checkpoint's "
        "recorded lateness is restored and a differing value is refused "
        "(it shapes the replayed chunking)",
    )
    serve.add_argument(
        "--quarantine-dir",
        default=None,
        help="screen malformed records (NaN timestamps/coordinates, "
        "non-finite weights, broken keyword payloads) out of the stream "
        "instead of crashing, and append them as JSON lines to "
        "quarantine.jsonl in this directory; quarantined records are "
        "counted in the ingest stats",
    )
    serve.add_argument(
        "--max-inflight-chunks",
        type=int,
        default=None,
        metavar="CHUNKS",
        help="bound the ingest tier's buffered backlog (reorder buffer + "
        "pending remainder) to this many chunks' worth of objects; over "
        "budget, the oldest held-back arrivals are force-released early "
        "(still in order, counted in the ingest stats) so memory stays "
        "bounded through any flash crowd.  Requires --max-lateness > 0",
    )
    serve.add_argument(
        "--overload-high",
        type=float,
        default=None,
        metavar="CHUNKS",
        help="enter degraded mode when the queue depth (ingest backlog or "
        "slowest subscriber queue, in chunks) reaches this watermark; "
        "enables the overload tier.  With --resume the checkpoint's "
        "recorded overload configuration is restored and a differing "
        "value is refused (shed decisions replay deterministically)",
    )
    serve.add_argument(
        "--overload-low",
        type=float,
        default=None,
        metavar="CHUNKS",
        help="leave degraded mode when the queue depth falls back to this "
        "watermark (hysteresis; default: a quarter of --overload-high)",
    )
    serve.add_argument(
        "--overload-policy",
        choices=sorted(OVERLOAD_POLICIES),
        default=None,
        help="what degraded mode does: 'shed' skips low-priority queries "
        "(counted per query), 'stretch' multiplies the checkpoint cadence, "
        "'error' aborts with OverloadError for strict deployments "
        "(default: shed)",
    )
    serve.add_argument(
        "--shed-below-priority",
        type=int,
        default=None,
        metavar="N",
        help="with the shed policy, shed queries whose priority is below N "
        "(default: the highest priority present, i.e. keep only the most "
        "important tier)",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=None,
        metavar="CHUNKS",
        help="run a shared-plan compaction pass every N chunks: queries "
        "registered after churn whose windows have converged with an "
        "existing group's are re-epoched into it, restoring shared "
        "execution (results are bit-identical; merges are counted)",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="enable the tracing tier (repro.obs: per-stage spans into a "
        "bounded flight recorder) and, on exit, write the recorded spans "
        "as Chrome trace_event JSON to DIR/trace.json (loadable in "
        "Perfetto / chrome://tracing, one lane per shard) plus a "
        "per-stage latency table on stderr.  REPRO_TRACE=1 enables "
        "tracing without the export",
    )
    serve.add_argument(
        "--slow-chunk",
        type=float,
        default=None,
        metavar="SECONDS",
        help="flag chunk dispatches slower than this: the chunk's span "
        "tree and the live queue depths are captured to the flight "
        "recorder and a counted structured warning is logged (implies "
        "tracing on)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines — {ts, level, logger, event, "
        "...fields} — on stderr instead of the default text format "
        "(REPRO_LOG_JSON=1 does the same)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="replay a stream through the service under the tracer and "
        "export a Chrome trace (the perf workbench)",
    )
    trace.add_argument("stream", help="path to a .csv or .jsonl stream file")
    trace.add_argument(
        "--queries",
        required=True,
        help="path to a queries.json file (list of query records, see "
        "repro.service.spec)",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of shards (each gets its own trace lane; default 1)",
    )
    trace.add_argument(
        "--executor",
        default="serial",
        choices=EXECUTOR_NAMES,
        help="shard execution backend (default: serial)",
    )
    trace.add_argument(
        "--chunk-size",
        type=int,
        default=512,
        help="shared-chunker batch size (default 512)",
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace_event JSON output path (default: trace.json); "
        "load it in Perfetto or chrome://tracing",
    )
    trace.add_argument(
        "--slow-chunk",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also capture chunk dispatches slower than this to the "
        "flight recorder's slow-chunk buffer (span tree + queue depths)",
    )
    trace.add_argument(
        "--ring-size",
        type=int,
        default=None,
        metavar="SPANS",
        help="flight-recorder ring capacity in spans (default 4096); the "
        "export holds at most this many of the newest spans, while the "
        "per-stage aggregates always cover the whole replay",
    )

    worker = subparsers.add_parser(
        "worker",
        help="host service shards for a remote coordinator "
        "(see 'serve --executor remote')",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's worker endpoint — printed by "
        "'repro serve --executor remote' as 'workers on HOST:PORT'",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="worker name shown in coordinator logs (default: worker-<pid>)",
    )
    worker.add_argument(
        "--connect-retries",
        type=int,
        default=30,
        metavar="N",
        help="connection attempts before giving up, with exponential "
        "backoff and jitter between attempts — racing the coordinator's "
        "bind is fine (default 30)",
    )

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic stream mimicking a paper dataset"
    )
    generate.add_argument(
        "--profile",
        default="taxi",
        choices=sorted(PROFILES),
        help="dataset profile to mimic (default: taxi)",
    )
    generate.add_argument("--objects", type=int, default=10_000, help="number of objects")
    generate.add_argument("--seed", type=int, default=7, help="random seed")
    generate.add_argument(
        "--no-bursts", action="store_true", help="generate background traffic only"
    )
    generate.add_argument("--out", required=True, help="output path (.csv or .jsonl)")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    if args.report_every < 1:
        print("--report-every must be a positive number of objects", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print("--chunk-size must be a positive number of objects", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size > args.report_every:
        # Results are read once per reporting interval, so a larger chunk
        # would silently be clamped to the interval — reject it instead.
        print(
            f"--chunk-size ({args.chunk_size}) must not exceed "
            f"--report-every ({args.report_every}): ingestion chunks are "
            f"read out once per reporting interval",
            file=sys.stderr,
        )
        return 2
    stream = load_stream(args.stream)
    if not stream:
        print("stream is empty", file=sys.stderr)
        return 1
    query = SurgeQuery(
        rect_width=args.rect[0],
        rect_height=args.rect[1],
        window_length=args.window,
        alpha=args.alpha,
        k=args.k,
    )
    try:
        monitor = SurgeMonitor(query, algorithm=args.algorithm, backend=args.backend)
    except (ValueError, RuntimeError) as exc:
        # Bad backend selection (unknown name via REPRO_SWEEP_BACKEND, or
        # numpy requested without the optional dependency installed).
        print(str(exc), file=sys.stderr)
        return 2
    # Objects are pushed through the batched event path in chunks (default:
    # one chunk per reporting interval) so window maintenance and detector
    # result recomputation are amortised over each chunk, not paid per event.
    chunk_size = args.chunk_size if args.chunk_size is not None else args.report_every
    for start in range(0, len(stream), args.report_every):
        batch = stream[start : start + args.report_every]
        for chunk_start in range(0, len(batch), chunk_size):
            monitor.push_many(batch[chunk_start : chunk_start + chunk_size])
        index = start + len(batch)
        results = monitor.top_k() if args.k > 1 else [monitor.result()]
        summary = "; ".join(
            f"score={r.score:.4f} region=({r.region.min_x:.4f},{r.region.min_y:.4f})..({r.region.max_x:.4f},{r.region.max_y:.4f})"
            for r in results
            if r is not None
        )
        print(
            f"[{index:>8} objects, t={batch[-1].timestamp:.0f}] {summary or 'no bursty region yet'}"
        )
    stats = monitor.detector.stats
    print(
        f"done: {stats.events_processed} events, {stats.cells_searched} cell searches, "
        f"{100.0 * stats.search_trigger_ratio:.2f}% of events triggered a search",
        file=sys.stderr,
    )
    return 0


def _format_result(result) -> str:
    if result is None:
        return "no bursty region yet"
    region = result.region
    return (
        f"score={result.score:.4f} region=({region.min_x:.4f},{region.min_y:.4f})"
        f"..({region.max_x:.4f},{region.max_y:.4f})"
    )


def _overload_config_from_args(args: argparse.Namespace) -> OverloadConfig | None:
    """The :class:`OverloadConfig` the serve flags describe (``None`` = off)."""
    dependent = {
        "--overload-low": args.overload_low,
        "--overload-policy": args.overload_policy,
        "--shed-below-priority": args.shed_below_priority,
    }
    if args.overload_high is None:
        given = [name for name, value in dependent.items() if value is not None]
        if given:
            raise ValueError(
                f"{', '.join(given)} require --overload-high (the watermark "
                f"that enables the overload tier)"
            )
        return None
    low = (
        args.overload_low
        if args.overload_low is not None
        else args.overload_high / 4.0
    )
    return OverloadConfig(
        high_watermark_chunks=args.overload_high,
        low_watermark_chunks=low,
        policy=args.overload_policy if args.overload_policy is not None else "shed",
        shed_below_priority=args.shed_below_priority,
    )


def _serve_tracer_from_args(args: argparse.Namespace) -> Tracer | None:
    """The serve tracer the flags/environment ask for (``None`` = off).

    Tracing turns on with ``--trace-dir`` (span export on exit),
    ``--slow-chunk`` (the detector needs spans to capture), or the
    ``REPRO_TRACE`` environment variable.  The tracer is also installed
    process-globally so call sites outside the service object — the wire
    codec's ``wire.encode``/``wire.decode`` spans — reach the same
    recorder.
    """
    if args.slow_chunk is not None and args.slow_chunk < 0:
        raise ValueError(
            f"--slow-chunk must be >= 0 seconds, got {args.slow_chunk}"
        )
    enabled = (
        args.trace_dir is not None
        or args.slow_chunk is not None
        or _env_truthy(TRACE_ENV_VAR)
    )
    if not enabled:
        return None
    tracer = Tracer(enabled=True, slow_chunk_threshold=args.slow_chunk)
    install_tracer(tracer)
    return tracer


def _remote_executor_options(
    args: argparse.Namespace, executor_name: str | None
) -> dict:
    """The ``RemoteExecutor`` options the serve flags describe.

    ``executor_name`` is the *resolved* backend (an explicit ``--executor``
    or, under ``--resume``, the checkpoint's recorded one).  The remote
    flags are refused for any other backend, and the coordinator's worker
    endpoint is announced on stdout (``workers on HOST:PORT``) so external
    ``repro worker --connect`` processes know where to dial.
    """
    remote_flags = {
        "--workers": args.workers,
        "--worker-listen": args.worker_listen,
        "--spawn-workers": args.spawn_workers or None,
    }
    if executor_name != "remote":
        given = [name for name, value in remote_flags.items() if value is not None]
        if given:
            raise ValueError(
                f"{', '.join(given)} require --executor remote "
                f"(the distributed shard tier)"
            )
        return {}
    workers = args.workers if args.workers is not None else 1
    if workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    listen = ("127.0.0.1", 0)
    if args.worker_listen is not None:
        listen = _parse_endpoint(args.worker_listen, flag="--worker-listen")

    def announce(host: str, port: int) -> None:
        # Parsed by tooling (the remote smoke reads the endpoint here).
        print(f"workers on {host}:{port}", flush=True)

    return {
        "workers": workers,
        "listen": listen,
        "spawn_workers": workers if args.spawn_workers else 0,
        "on_listening": announce,
    }


def _build_serve_service(args: argparse.Namespace, *, require_queries: bool = True):
    """Construct (service, start_offset) for ``serve`` — fresh or resumed."""
    from repro.state import CheckpointPolicy, has_checkpoint, read_manifest

    overload_config = _overload_config_from_args(args)
    tracer = _serve_tracer_from_args(args)

    checkpoint_dir = args.checkpoint_dir
    if args.resume and checkpoint_dir is None:
        raise ValueError("--resume requires --checkpoint-dir")
    if checkpoint_dir is None and (
        args.checkpoint_every is not None or args.checkpoint_every_seconds is not None
    ):
        raise ValueError(
            "--checkpoint-every/--checkpoint-every-seconds require --checkpoint-dir"
        )
    policy = None
    if checkpoint_dir is not None and (
        args.checkpoint_every is not None or args.checkpoint_every_seconds is not None
    ):
        from repro.service.service import DEFAULT_CHECKPOINT_EVERY_CHUNKS

        # --checkpoint-every-seconds *adds* a trigger; the documented
        # every-64-chunks default stays live unless --checkpoint-every
        # explicitly overrides it.
        policy = CheckpointPolicy(
            every_chunks=(
                args.checkpoint_every
                if args.checkpoint_every is not None
                else DEFAULT_CHECKPOINT_EVERY_CHUNKS
            ),
            every_stream_seconds=args.checkpoint_every_seconds,
        )

    if args.resume:
        manifest = read_manifest(checkpoint_dir)
        recorded_chunk_size = manifest.extra.get("chunk_size")
        if recorded_chunk_size is not None and recorded_chunk_size != args.chunk_size:
            raise ValueError(
                f"--resume with --chunk-size {args.chunk_size}, but the "
                f"checkpoint was taken at --chunk-size {recorded_chunk_size}: "
                f"replay offsets only line up at the original chunking"
            )
        recorded_lateness = (
            float(manifest.ingest.get("max_lateness", 0.0))
            if manifest.ingest is not None
            else 0.0
        )
        if args.max_lateness is not None and args.max_lateness != recorded_lateness:
            raise ValueError(
                f"--resume with --max-lateness {args.max_lateness}, but the "
                f"checkpoint was taken at --max-lateness {recorded_lateness}: "
                f"the lateness bound shapes the replayed chunking, so it "
                f"cannot change mid-stream"
            )
        # The overload configuration shapes which chunks were shed, so —
        # like --chunk-size and --max-lateness — it is part of the replayed
        # results and cannot change mid-stream.  Flags that merely restate
        # the recorded values are accepted.
        recorded_overload = manifest.overload or {}
        recorded_config = (
            OverloadConfig.from_dict(recorded_overload["config"])
            if recorded_overload.get("config") is not None
            else None
        )
        if overload_config is not None and overload_config != recorded_config:
            raise ValueError(
                "--resume with a different overload configuration than the "
                "checkpoint recorded: degraded-mode shed decisions are part "
                "of the replayed results, so the watermarks and policy "
                "cannot change mid-stream"
            )
        recorded_inflight = recorded_overload.get("max_inflight_chunks")
        if (
            args.max_inflight_chunks is not None
            and args.max_inflight_chunks != recorded_inflight
        ):
            raise ValueError(
                f"--resume with --max-inflight-chunks "
                f"{args.max_inflight_chunks}, but the checkpoint was taken "
                f"at {recorded_inflight}: the budget shapes which arrivals "
                f"were force-released, so it cannot change mid-stream"
            )
        recorded_compact = recorded_overload.get("compact_every_chunks")
        if args.compact_every is not None and args.compact_every != recorded_compact:
            raise ValueError(
                f"--resume with --compact-every {args.compact_every}, but "
                f"the checkpoint was taken at {recorded_compact}: compaction "
                f"offsets are part of the replayed plan, so the cadence "
                f"cannot change mid-stream"
            )
        if args.queries is not None:
            print(
                "note: --resume restores the query registry from the "
                "checkpoint; --queries is ignored",
                file=sys.stderr,
            )
        if args.shards is not None:
            print(
                "note: --resume restores the shard layout from the "
                "checkpoint (the per-shard snapshot files partition the "
                "queries); --shards is ignored",
                file=sys.stderr,
            )
        # An explicit --executor overrides; otherwise the recorded backend
        # resumes (defaulting to "serial" here would silently downgrade a
        # process-sharded service).
        resolved_executor = (
            args.executor if args.executor is not None else manifest.executor
        )
        service = SurgeService.restore(
            checkpoint_dir,
            executor=args.executor,
            executor_options=_remote_executor_options(args, resolved_executor),
            shared_plan=args.shared_plan,
            checkpoint_policy=policy,
            quarantine_dir=args.quarantine_dir,
            tracer=tracer,
        )
        return service, service.chunk_offset

    if args.queries is None and require_queries:
        raise ValueError("--queries is required (unless resuming with --resume)")
    if checkpoint_dir is not None and has_checkpoint(checkpoint_dir):
        raise ValueError(
            f"{checkpoint_dir} already holds a service checkpoint; pass "
            f"--resume to continue it, or point --checkpoint-dir somewhere "
            f"else to start fresh"
        )
    if args.queries is None:
        # Network mode without --queries: the registry starts empty and
        # fills through register frames.
        specs = []
    else:
        try:
            specs = load_query_specs(args.queries)
        except (OSError, ValueError) as exc:
            raise ValueError(f"failed to load {args.queries}: {exc}") from exc
    if args.max_inflight_chunks is not None and (
        args.max_lateness is None or args.max_lateness <= 0
    ):
        raise ValueError(
            "--max-inflight-chunks bounds the reorder buffer, which only "
            "exists with --max-lateness > 0"
        )
    executor_name = args.executor if args.executor is not None else "serial"
    service = SurgeService(
        specs,
        shards=args.shards if args.shards is not None else 1,
        executor=executor_name,
        executor_options=_remote_executor_options(args, executor_name),
        shared_plan=args.shared_plan if args.shared_plan is not None else True,
        checkpoint_dir=checkpoint_dir,
        checkpoint_policy=policy,
        checkpoint_extra={"chunk_size": args.chunk_size},
        max_lateness=args.max_lateness if args.max_lateness is not None else 0.0,
        quarantine_dir=args.quarantine_dir,
        max_inflight_chunks=args.max_inflight_chunks,
        overload=overload_config,
        compact_every_chunks=args.compact_every,
        tracer=tracer,
    )
    return service, 0


def _parse_endpoint(value: str, *, flag: str) -> tuple[str, int]:
    """Parse a ``[HOST:]PORT`` endpoint (default host: loopback)."""
    host, sep, port = value.rpartition(":")
    if not sep:
        host, port = "", value
    if not host:
        host = "127.0.0.1"
    try:
        port_number = int(port)
    except ValueError:
        raise ValueError(f"{flag} expects [HOST:]PORT, got {value!r}") from None
    if not 0 <= port_number <= 65535:
        raise ValueError(f"{flag} port must be in 0..65535, got {port_number}")
    return host, port_number


def _print_remote_summary(service) -> None:
    """One stderr line of distributed-tier counters (remote executor only).

    Parsed by the remote smoke: the failover counters are the evidence
    that the kill actually exercised the failover path.
    """
    distributed = service.distributed_stats()
    if distributed is None:
        return
    print(
        "remote: workers_joined={workers_joined} "
        "workers_lost={workers_lost} "
        "rpc_retries={rpc_retries} rpc_timeouts={rpc_timeouts} "
        "shards_failed_over={shards_failed_over} "
        "shards_migrated={shards_migrated} "
        "failover_seconds={failover_seconds:.3f}".format(**distributed),
        file=sys.stderr,
    )


def _command_serve_network(args: argparse.Namespace, service) -> int:
    """Serve the service over TCP until drained (SIGINT/SIGTERM/drain frame)."""
    from repro.server import SurgeServer

    recorded = service.server_info or {}
    if args.listen is not None:
        host, port = _parse_endpoint(args.listen, flag="--listen")
    else:
        # --resume without --listen: re-serve the endpoint the checkpoint
        # recorded (the manifest's "server" field).
        host, port = recorded["host"], int(recorded["port"])
    metrics_host: str | None = None
    metrics_port: int | None = None
    if args.metrics is not None:
        metrics_host, metrics_port = _parse_endpoint(args.metrics, flag="--metrics")
    elif args.listen is None and recorded.get("metrics_port") is not None:
        metrics_host = recorded.get("metrics_host")
        metrics_port = int(recorded["metrics_port"])
    server = SurgeServer(
        service,
        host=host,
        port=port,
        metrics_host=metrics_host,
        metrics_port=metrics_port,
        chunk_size=args.chunk_size,
        max_queued_batches=args.max_queued_batches,
    )
    with service:
        # Handlers go in BEFORE the listening line is printed: tooling
        # sends the drain signal as soon as it reads that line, and a
        # pre-start request_drain() is already safe (the server drains
        # immediately after binding).
        previous = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(
                    signum, lambda *_: server.request_drain()
                )
        server.start_background()
        metrics_note = (
            f" (metrics http://{metrics_host or host}:{server.metrics_port}/metrics)"
            if server.metrics_port is not None
            else ""
        )
        # Parsed by tooling (the server smoke reads the bound ports here).
        print(f"listening on {server.host}:{server.port}{metrics_note}", flush=True)
        try:
            while server._thread is not None and server._thread.is_alive():
                server._thread.join(timeout=0.5)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        summary = server.drain_summary or {}
        checkpoint = summary.get("checkpoint")
        print(
            f"drained: {service.stats().objects_pushed} objects in "
            f"{service.chunk_offset} chunks"
            + (f", final checkpoint {checkpoint}" if checkpoint else ""),
            file=sys.stderr,
        )
        _print_remote_summary(service)
    return 0


def _write_trace_export(service, args: argparse.Namespace) -> None:
    """Export the serve run's spans to ``--trace-dir`` (if both are on)."""
    tracer = service.tracer
    if args.trace_dir is None or tracer is None:
        return
    out = Path(args.trace_dir) / "trace.json"
    try:
        spans = write_chrome_trace(out, tracer.recorder)
    except OSError as exc:
        print(f"trace export to {out} failed: {exc}", file=sys.stderr)
        return
    print(f"trace: {spans} spans -> {out}", file=sys.stderr)
    table = format_stage_table(tracer.recorder.stage_stats())
    if table:
        print(table, file=sys.stderr)


def _command_serve(args: argparse.Namespace) -> int:
    if args.log_json or _env_truthy(LOG_JSON_ENV_VAR):
        enable_json_logging()
    if args.shards is not None and args.shards < 1:
        print("--shards must be a positive number of shards", file=sys.stderr)
        return 2
    if args.chunk_size < 1:
        print("--chunk-size must be a positive number of objects", file=sys.stderr)
        return 2
    if args.report_every < 1:
        print("--report-every must be a positive number of objects", file=sys.stderr)
        return 2
    if args.max_lateness is not None and args.max_lateness < 0:
        print("--max-lateness must be >= 0 stream seconds", file=sys.stderr)
        return 2
    if args.max_queued_batches < 1:
        print("--max-queued-batches must be >= 1", file=sys.stderr)
        return 2
    network = args.listen is not None or args.stream is None
    if network and args.stream is not None:
        print(
            "--listen serves the network; it cannot be combined with a "
            "stream file (the stream arrives as ingest frames)",
            file=sys.stderr,
        )
        return 2
    if args.metrics is not None and not network:
        print("--metrics requires --listen", file=sys.stderr)
        return 2
    try:
        service, start_offset = _build_serve_service(
            args, require_queries=not network
        )
    except (OSError, ValueError, RuntimeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if network:
        if args.listen is None and not (service.server_info or {}).get("port"):
            service.close()
            print(
                "no stream file and no --listen endpoint: pass a stream to "
                "replay, or --listen [HOST:]PORT to serve the network (the "
                "resumed checkpoint records no listener to re-serve)",
                file=sys.stderr,
            )
            return 2
        from repro.server.server import EndpointInUseError

        try:
            code = _command_serve_network(args, service)
        except EndpointInUseError as exc:
            # The --resume re-serve trip-wire: the manifest's recorded
            # endpoint is still held (often by the instance being
            # replaced).  Typed advice instead of a raw errno traceback.
            print(
                f"{exc.strerror}: stop the process holding it, or pass "
                f"--listen [HOST:]PORT to serve a different endpoint "
                f"(port 0 picks a free one)",
                file=sys.stderr,
            )
            return 1
        except (OSError, ValueError, RuntimeError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        _write_trace_export(service, args)
        return code
    # With the disorder-tolerant tier on, the file records an *arrival
    # order* for the tier to absorb — loading it pre-sorted would silently
    # repair the disorder (and poison NaN timestamps break sorting).
    tolerant = service.max_lateness > 0 or service.quarantine_dir is not None
    stream = load_stream(args.stream, sort=not tolerant)
    if not stream:
        service.close()
        print("stream is empty", file=sys.stderr)
        return 1
    if start_offset:
        print(
            f"resuming from checkpoint: {start_offset} chunks "
            f"({min(start_offset * args.chunk_size, len(stream))} objects) "
            f"already durable, replaying the rest",
            file=sys.stderr,
        )
    report_chunks = max(1, -(-args.report_every // args.chunk_size))
    # Graceful drain on SIGINT/SIGTERM: finish the in-flight chunk, stop
    # consuming, then fall through to the final checkpoint and results —
    # the stdout block is exactly a clean run over the consumed prefix.
    drain = threading.Event()
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(
                signum, lambda *_: drain.set()
            )
    with service:
        try:
            for index, updates in enumerate(
                service.run(stream, args.chunk_size, start_offset=start_offset),
                start=start_offset + 1,
            ):
                pushed = min(index * args.chunk_size, len(stream))
                if index % report_chunks == 0 or pushed >= len(stream):
                    print(f"[{pushed:>8} objects, t={stream[pushed - 1].timestamp:.0f}]")
                    for update in updates:
                        print(f"  {update.query_id:>12}: {_format_result(update.result)}")
                if drain.is_set():
                    print(
                        f"draining: stopping after {index} chunks "
                        f"({pushed} objects consumed); taking the final "
                        f"checkpoint and reporting the consumed prefix",
                        file=sys.stderr,
                    )
                    break
        except OverloadError as exc:
            print(
                f"overload: queue depth {exc.depth_chunks:.1f} chunks "
                f"crossed the high watermark (policy=error); aborting — "
                f"rerun with --overload-policy shed or stretch to degrade "
                f"gracefully instead",
                file=sys.stderr,
            )
            _restore_signal_handlers(previous_handlers)
            return 1
        if service.checkpoint_dir is not None:
            # Final checkpoint: a subsequent --resume of the same stream is a
            # no-op replay that just reprints the final results.
            service.checkpoint()
        print("final results:")
        for query_id, result in service.results().items():
            print(f"  {query_id:>12}: {_format_result(result)}")
        if tolerant:
            # Part of the compared stdout block on purpose: the chaos smoke
            # asserts these counters are consistent across a crash+resume.
            ingest = service.ingest_stats()
            print(
                f"ingest: reordered={ingest.reordered} "
                f"late_dropped={ingest.late_dropped} "
                f"duplicates_seen={ingest.duplicates_seen} "
                f"quarantined={ingest.quarantined} "
                f"subscriber_errors={ingest.subscriber_errors}"
            )
        overload_on = (
            service.overload_config is not None
            or service.max_inflight_chunks is not None
            or service.compact_every_chunks is not None
        )
        if overload_on:
            # Also part of the compared block: the chaos smoke's overload
            # leg asserts shed/compaction counters survive a crash+resume.
            overload = service.overload_stats()
            ingest = service.ingest_stats()
            print(
                f"overload: entered={overload.entered_degraded} "
                f"exited={overload.exited_degraded} "
                f"chunks_shed={overload.chunks_shed} "
                f"updates_shed={overload.updates_shed} "
                f"checkpoints_deferred={overload.checkpoints_deferred} "
                f"compactions={overload.compactions} "
                f"queries_compacted={overload.queries_compacted} "
                f"force_released={ingest.force_released}"
            )
        stats = service.stats()
        print(
            f"done: {stats.objects_pushed} objects x {len(service.query_ids)} "
            f"queries = {stats.object_query_pairs} object-query pairs in "
            f"{stats.wall_seconds:.2f}s "
            f"({stats.pairs_per_second:,.0f} pairs/s, "
            f"executor={service.executor_name}, shards={service.n_shards}, "
            f"plan={'shared' if service.shared_plan else 'unshared'})",
            file=sys.stderr,
        )
        if overload_on:
            overload = service.overload_stats()
            print(
                f"  overload: max queue depth "
                f"{overload.max_depth_chunks:.1f} chunks, "
                f"degraded={'yes' if service.degraded else 'no'}, "
                f"peak buffered {service.ingest_stats().peak_buffered} objects",
                file=sys.stderr,
            )
        for query_id in service.query_ids:
            query_stats = stats.per_query[query_id]
            print(
                f"  {query_id:>12}: {query_stats.objects_routed} routed, "
                f"{query_stats.objects_per_second:,.0f} obj/s busy, "
                f"last lag {1000.0 * query_stats.last_lag_seconds:.1f} ms",
                file=sys.stderr,
            )
        _print_remote_summary(service)
    _write_trace_export(service, args)
    _restore_signal_handlers(previous_handlers)
    return 0


def _restore_signal_handlers(previous: dict) -> None:
    """Put back the handlers ``serve`` replaced (in-process callers)."""
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, TypeError):  # pragma: no cover - non-main thread
            pass


def _command_trace(args: argparse.Namespace) -> int:
    """The perf workbench: replay under the tracer, export a Chrome trace.

    Every pipeline stage of the replay records spans into the tracer's
    flight recorder; afterwards the newest ``--ring-size`` spans go out as
    Chrome ``trace_event`` JSON (one lane per shard, plus the ingest/bus
    lanes) and the whole-replay per-stage aggregates print as a table.
    """
    if args.shards < 1:
        print("--shards must be a positive number of shards", file=sys.stderr)
        return 2
    if args.chunk_size < 1:
        print("--chunk-size must be a positive number of objects", file=sys.stderr)
        return 2
    if args.slow_chunk is not None and args.slow_chunk < 0:
        print("--slow-chunk must be >= 0 seconds", file=sys.stderr)
        return 2
    if args.ring_size is not None and args.ring_size < 1:
        print("--ring-size must be a positive number of spans", file=sys.stderr)
        return 2
    try:
        specs = load_query_specs(args.queries)
    except (OSError, ValueError) as exc:
        print(f"failed to load {args.queries}: {exc}", file=sys.stderr)
        return 2
    stream = load_stream(args.stream)
    if not stream:
        print("stream is empty", file=sys.stderr)
        return 1
    tracer_kwargs = {"slow_chunk_threshold": args.slow_chunk}
    if args.ring_size is not None:
        tracer_kwargs["ring_size"] = args.ring_size
    tracer = Tracer(enabled=True, **tracer_kwargs)
    install_tracer(tracer)
    try:
        service = SurgeService(
            specs,
            shards=args.shards,
            executor=args.executor,
            tracer=tracer,
        )
        with service:
            for _ in service.run(stream, args.chunk_size):
                pass
        stage_stats = service.stage_stats()
    finally:
        install_tracer(None)
    try:
        spans = write_chrome_trace(args.out, tracer.recorder)
    except OSError as exc:
        print(f"trace export to {args.out} failed: {exc}", file=sys.stderr)
        return 1
    print(format_stage_table(stage_stats))
    slow = tracer.recorder.slow_chunk_count
    print(
        f"trace: {len(stream)} objects, {service.chunk_offset} chunks, "
        f"{spans} spans -> {args.out}"
        + (f" ({slow} slow chunks flagged)" if slow else ""),
        file=sys.stderr,
    )
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    """Host service shards for a remote coordinator until told to stop."""
    if args.connect_retries < 0:
        print("--connect-retries must be >= 0", file=sys.stderr)
        return 2
    try:
        host, port = _parse_endpoint(args.connect, flag="--connect")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    # Imported lazily: the distributed tier is only needed by this command
    # and by 'serve --executor remote'.
    from repro.distributed.worker import ShardWorker

    worker = ShardWorker(
        host,
        port,
        name=args.name,
        connect_retries=args.connect_retries,
    )
    return worker.run()


def _command_generate(args: argparse.Namespace) -> int:
    # Validate the output path before touching the generator, so usage errors
    # are reported even when the optional numpy dependency is missing.
    lowered = args.out.lower()
    if lowered.endswith(".csv"):
        writer = write_csv_stream
    elif lowered.endswith((".jsonl", ".json", ".ndjson")):
        writer = write_jsonl_stream
    else:
        print("output path must end in .csv or .jsonl", file=sys.stderr)
        return 1
    try:
        # Imported lazily: the synthetic generator is the only CLI path that
        # needs the optional numpy dependency; ``run`` must work without it.
        from repro.datasets.synthetic import generate_profile_stream
    except ImportError:
        print(
            "the 'generate' command needs numpy; install it with "
            "'pip install .[fast]'",
            file=sys.stderr,
        )
        return 1
    profile = PROFILES[args.profile]
    stream = generate_profile_stream(
        profile, n_objects=args.objects, seed=args.seed, with_bursts=not args.no_bursts
    )
    written = writer(args.out, stream)
    print(f"wrote {written} objects ({profile.name} profile) to {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "generate":
        return _command_generate(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
