"""Per-cell state for the exact Cell-CSPOT detector.

Each grid cell (of exactly the query-rectangle size, Definition 6) tracks

* the rectangle objects overlapping it, with their window label,
* the static upper bound ``Us`` (Definition 7 / Lemma 2),
* the dynamic upper bound ``Ud`` (Equation 3 / Lemma 3), and
* the candidate point of the last per-cell search together with its window
  scores and a validity flag maintained through Lemma 4.

The combined upper bound is ``U(c) = min(Us, Ud)`` (Definition 8); the
detector ranks cells by it in a lazy max-heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.burst import burst_score
from repro.geometry.primitives import Point, Rect
from repro.streams.objects import RectangleObject


@dataclass
class CandidatePoint:
    """The memoised result of the last search of a cell."""

    point: Point
    score: float
    fc: float
    fp: float
    valid: bool = True


@dataclass
class CellRecord:
    """A rectangle object stored in a cell, with its current window label."""

    rect: RectangleObject
    in_current: bool


@dataclass
class CellState:
    """Mutable state of one grid cell of the Cell-CSPOT detector."""

    bounds: Rect
    records: dict[int, CellRecord] = field(default_factory=dict)
    static_bound: float = 0.0
    dynamic_bound: float = float("inf")
    candidate: CandidatePoint | None = None

    # ------------------------------------------------------------------
    # Rectangle bookkeeping
    # ------------------------------------------------------------------
    def add_new(self, rect: RectangleObject, current_length: float) -> None:
        """A new rectangle object (current window) starts overlapping the cell."""
        self.records[rect.object_id] = CellRecord(rect=rect, in_current=True)
        self.static_bound += rect.weight / current_length
        if self.dynamic_bound != float("inf"):
            self.dynamic_bound += rect.weight / current_length

    def mark_grown(self, rect: RectangleObject, current_length: float) -> None:
        """A rectangle object moves from the current to the past window."""
        record = self.records.get(rect.object_id)
        if record is None:
            return
        record.in_current = False
        self.static_bound -= rect.weight / current_length
        # Equation 3: a grown event never increases any score, Ud is unchanged.

    def remove_expired(self, rect: RectangleObject, past_length: float, alpha: float) -> None:
        """A rectangle object leaves the past window and the cell."""
        if self.records.pop(rect.object_id, None) is None:
            return
        if self.dynamic_bound != float("inf"):
            self.dynamic_bound += alpha * rect.weight / past_length

    # ------------------------------------------------------------------
    # Candidate maintenance (Lemma 4)
    # ------------------------------------------------------------------
    def update_candidate_for_new(
        self, rect: RectangleObject, current_length: float, alpha: float
    ) -> None:
        """Adjust or invalidate the candidate after a NEW event on this cell."""
        candidate = self.candidate
        if candidate is None or not candidate.valid:
            if candidate is not None:
                candidate.valid = False
            return
        if rect.covers_point(candidate.point) and candidate.fc - candidate.fp > 0.0:
            candidate.fc += rect.weight / current_length
            candidate.score = burst_score(candidate.fc, candidate.fp, alpha)
        else:
            candidate.valid = False

    def update_candidate_for_grown(self, rect: RectangleObject) -> None:
        """Adjust or invalidate the candidate after a GROWN event on this cell."""
        candidate = self.candidate
        if candidate is None or not candidate.valid:
            return
        if rect.covers_point(candidate.point):
            candidate.valid = False
        # Otherwise the candidate is untouched and remains the cell maximum
        # (a grown event can only lower scores of points inside the rectangle).

    def update_candidate_for_expired(
        self, rect: RectangleObject, past_length: float, alpha: float
    ) -> None:
        """Adjust or invalidate the candidate after an EXPIRED event on this cell."""
        candidate = self.candidate
        if candidate is None or not candidate.valid:
            return
        if rect.covers_point(candidate.point) and candidate.fc - candidate.fp > 0.0:
            candidate.fp -= rect.weight / past_length
            candidate.score = burst_score(candidate.fc, candidate.fp, alpha)
        else:
            candidate.valid = False

    def invalidate_candidate(self) -> None:
        """Force the candidate to be recomputed on the next visit."""
        if self.candidate is not None:
            self.candidate.valid = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def upper_bound(self) -> float:
        """``U(c) = min(Us(c), Ud(c))`` (Definition 8)."""
        return min(self.static_bound, self.dynamic_bound)

    @property
    def is_empty(self) -> bool:
        """Whether no rectangle object overlaps the cell any more."""
        return not self.records

    def has_valid_candidate(self) -> bool:
        """Whether the memoised candidate is guaranteed to be the cell maximum."""
        return self.candidate is not None and self.candidate.valid

    def __len__(self) -> int:
        return len(self.records)
