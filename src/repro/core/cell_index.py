"""Uniform-grid bucket index mapping rectangles to the cells they overlap.

Every cell-based detector (Cell-CSPOT, B-CCS, Base, the top-k kCCS) performs
the same two address computations on every window event:

* *point → cell*: which cell contains an object location, and
* *rectangle → cells*: which cells a rectangle object overlaps (at most four
  for a rectangle of exactly the cell size, Lemma 1 of the paper).

:class:`UniformGridIndex` is the flat, allocation-light implementation of
those lookups used on the hot ingestion path.  It precomputes the grid
origin/extent once and answers both queries with pure floor arithmetic —
O(cells touched) with no generator frames, no intermediate sets or dicts,
and a single list allocation for the overwhelmingly common 1/2/4-cell cases.

The arithmetic is kept *bit-identical* to :class:`repro.geometry.grids.GridSpec`
(the same ``floor((v - origin) / extent)`` expression, not a multiplication
by a precomputed reciprocal), so detectors that mix the index with
``GridSpec``-based helpers (e.g. kCCS's covering-rectangle scan) always
agree on cell addresses.
"""

from __future__ import annotations

from math import floor

from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.primitives import Rect


class UniformGridIndex:
    """Flat cell-address calculator for one :class:`GridSpec`.

    The index is stateless apart from the cached grid parameters; detectors
    keep one instance per grid and call it once per window event.
    """

    __slots__ = ("grid", "_origin_x", "_origin_y", "_cell_width", "_cell_height")

    def __init__(self, grid: GridSpec) -> None:
        self.grid = grid
        self._origin_x = grid.origin_x
        self._origin_y = grid.origin_y
        self._cell_width = grid.cell_width
        self._cell_height = grid.cell_height

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def cell_of(self, x: float, y: float) -> CellIndex:
        """The cell containing ``(x, y)`` (half-open addressing)."""
        return (
            floor((x - self._origin_x) / self._cell_width),
            floor((y - self._origin_y) / self._cell_height),
        )

    def cell_rect(self, index: CellIndex) -> Rect:
        """The closed rectangle covered by cell ``index``."""
        return self.grid.cell_rect(index)

    def cells_overlapping(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> list[CellIndex]:
        """All cells whose closed extent intersects the given rectangle.

        Returns the same addresses as
        :meth:`repro.geometry.grids.GridSpec.cells_overlapping`, in the same
        x-major order, as one flat list.  For a rectangle object of exactly the cell
        size this is at most four cells in general position (up to nine when
        its edges align exactly with grid lines).
        """
        origin_x = self._origin_x
        origin_y = self._origin_y
        cell_width = self._cell_width
        cell_height = self._cell_height
        first_ix = floor((min_x - origin_x) / cell_width)
        last_ix = floor((max_x - origin_x) / cell_width)
        first_iy = floor((min_y - origin_y) / cell_height)
        last_iy = floor((max_y - origin_y) / cell_height)
        if first_ix == last_ix:
            if first_iy == last_iy:
                return [(first_ix, first_iy)]
            if first_iy + 1 == last_iy:
                return [(first_ix, first_iy), (first_ix, last_iy)]
        elif first_ix + 1 == last_ix:
            if first_iy == last_iy:
                return [(first_ix, first_iy), (last_ix, first_iy)]
            if first_iy + 1 == last_iy:
                return [
                    (first_ix, first_iy),
                    (first_ix, last_iy),
                    (last_ix, first_iy),
                    (last_ix, last_iy),
                ]
        return [
            (ix, iy)
            for ix in range(first_ix, last_ix + 1)
            for iy in range(first_iy, last_iy + 1)
        ]

    def cells_overlapping_rect(self, rect: Rect) -> list[CellIndex]:
        """Convenience wrapper taking a :class:`Rect`."""
        return self.cells_overlapping(rect.min_x, rect.min_y, rect.max_x, rect.max_y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformGridIndex(grid={self.grid!r})"
