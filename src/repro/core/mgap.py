"""MGAP-SURGE: the multi-grid approximate detector (Algorithm 5).

The burst score of the cell returned by GAP-SURGE depends on where the grid
happens to be anchored.  MGAP-SURGE therefore runs four GAP-SURGE instances
over grids shifted by half a cell along x, along y, and along both axes, and
reports the best of the four answers.  The worst-case guarantee stays
``(1 - α) / 4`` (Theorem 4) but the observed quality is noticeably better
(Table IV of the paper), at roughly four times the per-event cost.

The top-k extension MGAP-kSURGE (Algorithm 7) collects the top ``4k`` cells of
every grid, merges them, and greedily keeps the k best pairwise
non-overlapping cells.
"""

from __future__ import annotations

from repro.core.base import BurstyRegionDetector, DetectorStats, RegionResult
from repro.core.gap import GapSurge
from repro.core.query import SurgeQuery
from repro.streams.objects import WindowEvent


class MGapSurge(BurstyRegionDetector):
    """Multi-grid approximate detector (paper's ``MGAPS``)."""

    name = "mgaps"
    exact = False

    def __init__(self, query: SurgeQuery) -> None:
        super().__init__(query)
        base_grid = query.base_grid()
        self.detectors = tuple(
            GapSurge(query, grid=grid) for grid in base_grid.mgap_family()
        )

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        if not self.query.accepts(event.obj.x, event.obj.y):
            self.stats.events_skipped += 1
            return
        for detector in self.detectors:
            detector.process(event)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        best: RegionResult | None = None
        for detector in self.detectors:
            candidate = detector.result()
            if candidate is None:
                continue
            if best is None or candidate.score > best.score:
                best = candidate
        return best

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        """Top-k non-overlapping cells across the four grids (MGAP-kSURGE)."""
        if k is None:
            k = self.query.k
        pool: list[RegionResult] = []
        for detector in self.detectors:
            pool.extend(detector.top_k(4 * k))
        pool.sort(key=lambda result: -result.score)

        selected: list[RegionResult] = []
        for candidate in pool:
            overlaps = any(
                candidate.region.intersects_interior(chosen.region)
                for chosen in selected
            )
            if not overlaps:
                selected.append(candidate)
            if len(selected) == k:
                break
        return selected

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def combined_stats(self) -> DetectorStats:
        """Counters aggregated over the four underlying GAP instances."""
        merged = self.stats
        for detector in self.detectors:
            merged = merged.merge(detector.stats)
        return merged
