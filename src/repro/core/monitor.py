"""The user-facing facade: feed a raw object stream, read bursty regions.

:class:`SurgeMonitor` wires together the sliding-window pair (which turns
arriving spatial objects into window events) and any detector, so that a
caller only has to push objects::

    query = SurgeQuery(rect_width=0.01, rect_height=0.01, window_length=3600)
    monitor = SurgeMonitor(query, algorithm="ccs")
    for obj in stream:
        result = monitor.push(obj)
        if result is not None:
            print(result.region, result.score)

High-rate streams should prefer :meth:`SurgeMonitor.push_many`, which feeds
whole timestamp-ordered chunks through the batched event path
(:meth:`SlidingWindowPair.observe_batch` →
:meth:`BurstyRegionDetector.apply_events`): window maintenance, cell-bound
invalidation and result recomputation are then amortised over each chunk
instead of paid per window event (see ``benchmarks/bench_ingest.py`` for the
measured objects/sec difference).

:func:`make_detector` is the name-based factory used by the monitor, the
evaluation harness and the benchmarks; it covers the exact detector, the two
approximations, all baselines and the top-k extensions.
"""

from __future__ import annotations

from time import perf_counter
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.query import SurgeQuery
from repro.obs.tracer import current as _current_tracer
from repro.streams.objects import EventBatch, SpatialObject, WindowEvent
from repro.streams.windows import SlidingWindowPair, WindowState

#: ``kind`` tag of monitor snapshot files (see :mod:`repro.state.snapshot`).
MONITOR_SNAPSHOT_KIND = "monitor"

#: Names accepted by :func:`make_detector`, mapping to the paper's algorithm
#: acronyms: exact Cell-CSPOT (``ccs``), static-bound-only variant (``bccs``),
#: no-bound cell baseline (``base``), adapted continuous-MaxRS baseline
#: (``ag2``), full-sweep naive baseline (``naive``), grid approximation
#: (``gaps``), multi-grid approximation (``mgaps``), and their top-k
#: extensions (``kccs``, ``kgaps``, ``kmgaps``).
DETECTOR_NAMES = (
    "ccs",
    "bccs",
    "base",
    "ag2",
    "naive",
    "gaps",
    "mgaps",
    "kccs",
    "kgaps",
    "kmgaps",
)

#: Detectors whose inner search runs through the SL-CSPOT sweep kernel and
#: therefore accept a ``backend`` option (the grid approximations never sweep).
SWEEP_BACKED_DETECTORS = frozenset({"ccs", "bccs", "base", "ag2", "naive", "kccs"})


def make_detector(
    name: str, query: SurgeQuery, backend: str | None = None, **options
) -> BurstyRegionDetector:
    """Instantiate a detector by its paper acronym.

    Parameters
    ----------
    name:
        One of :data:`DETECTOR_NAMES` (case-insensitive).
    query:
        The SURGE query the detector will answer.
    backend:
        SL-CSPOT sweep backend (``"auto"``, ``"python"``, ``"numpy"``) for
        the detectors in :data:`SWEEP_BACKED_DETECTORS`; silently ignored by
        the grid approximations, which perform no sweep.
    options:
        Extra keyword arguments forwarded to the detector constructor (e.g.
        ``cell_scale`` for ``ag2``).
    """
    # Imported lazily to keep the factory free of import cycles and to avoid
    # paying for the top-k machinery when it is not used.
    from repro.baselines.ag2 import AG2Detector
    from repro.baselines.base_cell import BaseCellDetector
    from repro.baselines.bccs import StaticBoundCellCSPOT
    from repro.baselines.naive import NaiveSweepDetector
    from repro.core.cell_cspot import CellCSPOT
    from repro.core.gap import GapSurge
    from repro.core.mgap import MGapSurge
    from repro.topk.kccs import CellCSPOTTopK
    from repro.topk.kgap import GapSurgeTopK
    from repro.topk.kmgap import MGapSurgeTopK

    factories: dict[str, Callable[..., BurstyRegionDetector]] = {
        "ccs": CellCSPOT,
        "bccs": StaticBoundCellCSPOT,
        "base": BaseCellDetector,
        "ag2": AG2Detector,
        "naive": NaiveSweepDetector,
        "gaps": GapSurge,
        "mgaps": MGapSurge,
        "kccs": CellCSPOTTopK,
        "kgaps": GapSurgeTopK,
        "kmgaps": MGapSurgeTopK,
    }
    key = name.lower()
    if key not in factories:
        raise ValueError(
            f"unknown detector {name!r}; expected one of {', '.join(DETECTOR_NAMES)}"
        )
    if backend is not None and key in SWEEP_BACKED_DETECTORS:
        options["backend"] = backend
    return factories[key](query, **options)


class SurgeMonitor:
    """Continuous monitor combining the sliding windows with a detector."""

    def __init__(
        self,
        query: SurgeQuery,
        algorithm: str | BurstyRegionDetector = "ccs",
        **options,
    ) -> None:
        self.query = query
        if isinstance(algorithm, BurstyRegionDetector):
            self.detector = algorithm
        else:
            self.detector = make_detector(algorithm, query, **options)
        self.windows = SlidingWindowPair(
            window_length=query.current_length,
            past_window_length=query.past_length,
        )
        self._objects_seen = 0

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    def push(self, obj: SpatialObject) -> RegionResult | None:
        """Ingest one spatial object and return the current bursty region.

        This is the per-event path: every window event is processed
        individually and the result is re-established after each one.
        """
        for event in self.windows.observe(obj):
            self.detector.process(event)
        self._objects_seen += 1
        return self.detector.result()

    def push_many(self, objs: Iterable[SpatialObject]) -> RegionResult | None:
        """Ingest a batch of spatial objects and return the final bursty region.

        This is the batched ingestion path: the window pair converts the
        whole chunk into one grouped
        :class:`~repro.streams.objects.EventBatch`
        (:meth:`SlidingWindowPair.observe_batch`), the detector applies it
        through :meth:`BurstyRegionDetector.apply_events` (bulk cell/bound
        maintenance where the detector supports it), and the result is read
        once at the end — so result maintenance is amortised over the chunk
        instead of paid per event.  The returned result matches pushing the
        objects one at a time, up to floating-point associativity.

        The two halves are exposed separately as :meth:`ingest_batch` (the
        window half) and :meth:`apply_batch` (the detector half) so that the
        multi-query service's shared execution plan can run the window half
        once per *group* of queries and fan the resulting batch out to each
        member detector.
        """
        return self.apply_batch(self.ingest_batch(objs))

    def ingest_batch(self, objs: Iterable[SpatialObject]) -> "EventBatch":
        """The window half of :meth:`push_many`: objects → one event batch.

        Advances the sliding-window pair over the whole timestamp-ordered
        chunk and returns the grouped
        :class:`~repro.streams.objects.EventBatch` without touching the
        detector.  Callers that share one window pair across several
        detectors (see :mod:`repro.service.shards`) call this once and then
        :meth:`apply_batch` per detector.
        """
        tracer = _current_tracer()
        if tracer is None or not tracer.enabled:
            return self.windows.observe_batch(objs)
        started = perf_counter()
        batch = self.windows.observe_batch(objs)
        tracer.record("window.observe", started, perf_counter())
        return batch

    def apply_batch(self, batch: "EventBatch") -> RegionResult | None:
        """The detector half of :meth:`push_many`: event batch → result.

        Applies an :class:`~repro.streams.objects.EventBatch` (produced by
        :meth:`ingest_batch` — possibly of a *shared* window pair) to this
        monitor's detector, accounts the arrivals, and settles the result
        once.
        """
        tracer = _current_tracer()
        if tracer is None or not tracer.enabled:
            self.detector.apply_events(batch)
            self._objects_seen += batch.arrivals
            return self.detector.result()
        started = perf_counter()
        self.detector.apply_events(batch)
        self._objects_seen += batch.arrivals
        result = self.detector.result()
        tracer.record("settle", started, perf_counter())
        return result

    def drain_time(self, time: float) -> list[WindowEvent]:
        """The window half of :meth:`advance_time`: clock advance → events.

        Moves the stream clock forward and returns the ``GROWN`` /
        ``EXPIRED`` events it triggered, without feeding the detector;
        combined with :meth:`push_events` this is exactly
        :meth:`advance_time`, split so shared-window consumers can advance
        a group-owned pair once and fan the events out — and skip the
        result settle entirely when the advance crossed no deadline.
        """
        return self.windows.advance_time(time)

    def push_events(self, events: Iterable[WindowEvent]) -> RegionResult | None:
        """Feed pre-computed window events directly (advanced use)."""
        for event in events:
            self.detector.process(event)
        return self.detector.result()

    def advance_time(self, time: float) -> RegionResult | None:
        """Advance the stream clock without a new arrival and return the result."""
        for event in self.windows.advance_time(time):
            self.detector.process(event)
        return self.detector.result()

    def run(
        self, stream: Iterable[SpatialObject], chunk_size: int | None = None
    ) -> Iterator[RegionResult | None]:
        """Push a whole stream, yielding the current result as it goes.

        With ``chunk_size=None`` (default) every object takes the per-event
        path and one result is yielded per object.  With a positive
        ``chunk_size`` the stream rides the batched :meth:`push_many` path in
        chunks of that many objects and one result is yielded per chunk —
        the fast way to replay a recorded stream when per-object results are
        not needed (see ``benchmarks/bench_ingest.py`` for the throughput
        difference).
        """
        if chunk_size is None:
            for obj in stream:
                yield self.push(obj)
            return
        from repro.streams.sources import iter_chunks

        for chunk in iter_chunks(stream, chunk_size):
            yield self.push_many(chunk)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        """The current bursty region."""
        return self.detector.result()

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        """The current top-k bursty regions (best first)."""
        return self.detector.top_k(k)

    def window_state(self) -> WindowState:
        """Snapshot of the two sliding windows (used for ground-truth checks)."""
        return self.windows.state()

    @property
    def objects_seen(self) -> int:
        """Number of spatial objects pushed so far."""
        return self._objects_seen

    # ------------------------------------------------------------------
    # Durability (see repro.state)
    # ------------------------------------------------------------------
    def save(self, path: str | Path, meta: Mapping[str, Any] | None = None) -> dict:
        """Snapshot this monitor's complete live state to ``path``.

        The snapshot (``snapshot/v1``, kind ``"monitor"``) covers the
        sliding-window deques, the detector's full incremental state (cell
        records, lazy bound heaps, memoised candidates, top-k dirty flags,
        operation counters) and the objects counter; :meth:`load` restores a
        monitor that continues the stream *bit-identically* to this one.
        The write is atomic; ``meta`` adds caller metadata (e.g. a chunk
        offset) to the snapshot header.  Returns the written header.
        """
        from repro.state.snapshot import write_snapshot

        header_meta = {
            "algorithm": self.detector.name,
            "objects_seen": self._objects_seen,
        }
        if meta:
            header_meta.update(meta)
        return write_snapshot(path, MONITOR_SNAPSHOT_KIND, self, meta=header_meta)

    @classmethod
    def load(cls, path: str | Path) -> "SurgeMonitor":
        """Restore a monitor saved with :meth:`save`.

        Raises :class:`repro.state.SnapshotSchemaError` for snapshots written
        by an incompatible codec version, and
        :class:`repro.state.SnapshotError` for corrupt or non-monitor files.
        """
        from repro.state.snapshot import SnapshotError, read_snapshot

        _, monitor = read_snapshot(path, expected_kind=MONITOR_SNAPSHOT_KIND)
        if not isinstance(monitor, cls):
            raise SnapshotError(
                f"{path}: monitor snapshot payload is a "
                f"{type(monitor).__name__}, not a {cls.__name__}"
            )
        return monitor

    @property
    def is_stable(self) -> bool:
        """Whether the warm-up period of the paper's protocol has passed."""
        return self.windows.is_stable()
