"""Cell-CSPOT: the exact continuous bursty-region detector (Algorithm 2).

The detector reduces SURGE to CSPOT (Theorem 1): every arriving spatial
object becomes an ``a × b`` rectangle object anchored at the object, and the
bursty point — a point covered by the rectangle set with the maximum burst
score — is the top-right corner of the reported bursty region.

A grid of ``a × b`` cells is laid over the space so a rectangle object
overlaps at most four cells (Lemma 1).  Each cell carries the rectangle
objects overlapping it, a static and a dynamic burst-score upper bound
(Lemmas 2–3) and the memoised candidate point of its last search, kept valid
across events through Lemma 4.  Cells are ranked by ``U(c) = min(Us, Ud)``;
after every event the detector walks cells in descending bound order and
re-runs the SL-CSPOT sweep only on cells whose candidate is no longer known
to be the cell maximum (the *lazy update* strategy of Section IV-C).

The correctness of the early termination relies on an invariant maintained
here: whenever a cell's candidate is valid, its dynamic bound equals the
candidate's score (the Equation 3 adjustments and the Lemma 4 adjustments
move in lock-step), so the top of the bound heap having a valid candidate
implies no other cell can contain a better point.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.cell_index import UniformGridIndex
from repro.core.cells import CandidatePoint, CellState
from repro.core.query import SurgeQuery
from repro.core.sweep_backends import SweepBackend, resolve_backend
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.streams.objects import EventBatch, EventKind, RectangleObject, WindowEvent


class CellCSPOT(BurstyRegionDetector):
    """Exact continuous detector with lazy cell updates (paper's ``CCS``)."""

    name = "ccs"
    exact = True

    def __init__(
        self,
        query: SurgeQuery,
        grid: GridSpec | None = None,
        candidate_reuse: bool = True,
        backend: str | SweepBackend | None = None,
    ) -> None:
        """Create the detector.

        ``candidate_reuse`` controls the Lemma 4 candidate maintenance; it is
        on by default and exists so the ablation benchmark can quantify how
        much of the pruning comes from candidate reuse versus the bounds.
        Disabling it never changes the reported result, only the work done.
        ``backend`` selects the SL-CSPOT sweep kernel (see
        :mod:`repro.core.sweep_backends`).
        """
        super().__init__(query)
        self.grid = grid if grid is not None else query.base_grid()
        self.cell_index = UniformGridIndex(self.grid)
        self.sweep_backend = resolve_backend(backend)
        self.candidate_reuse = candidate_reuse
        self.cells: dict[CellIndex, CellState] = {}
        self._bound_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()
        self._result: RegionResult | None = None

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        """Apply one window event and re-establish the current bursty point."""
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return
        rect = obj.to_rectangle(self.query.rect_width, self.query.rect_height)
        searches_before = self.stats.cells_searched

        for key in self.cell_index.cells_overlapping(
            rect.x, rect.y, rect.x + rect.width, rect.y + rect.height
        ):
            cell = self._update_cell(key, rect, event.kind)
            if cell is not None:
                self._bound_heap.push(key, cell.upper_bound)

        self._refresh_result()
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch, settling the result once at the end.

        Cell records and candidates are updated per event (in the batch's
        lifecycle-safe order, so the Lemma 4 adjustments see exactly the
        per-event sequence), but the expensive maintenance is amortised over
        the batch: every touched cell's upper bound goes into the heap once
        via :meth:`LazyMaxHeap.push_all` instead of once per event, and the
        lazy search loop (Algorithm 2, lines 4-9) runs a single time after
        the last event instead of after each one.
        """
        searches_before = self.stats.cells_searched
        cells = self.cells
        dirty = self._apply_batch_records(
            batch, cells, self._overlapping_cells, self._update_cell
        )
        self._bound_heap.push_all(
            (key, cells[key].upper_bound) for key in dirty if key in cells
        )
        self._refresh_result()
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def _update_cell(
        self, key: CellIndex, rect: RectangleObject, kind: EventKind
    ) -> CellState | None:
        """Update one affected cell's records, bounds and candidate.

        Returns the surviving cell (whose heap priority the caller must
        refresh) or ``None`` when the event emptied and removed the cell.
        """
        cell = self.cells.get(key)
        if kind is EventKind.NEW:
            if cell is None:
                cell = CellState(bounds=self.grid.cell_rect(key))
                self.cells[key] = cell
            cell.add_new(rect, self.query.current_length)
            if self.candidate_reuse:
                cell.update_candidate_for_new(
                    rect, self.query.current_length, self.query.alpha
                )
            else:
                cell.invalidate_candidate()
        elif kind is EventKind.GROWN:
            if cell is None:
                return None
            cell.mark_grown(rect, self.query.current_length)
            if self.candidate_reuse:
                cell.update_candidate_for_grown(rect)
            else:
                cell.invalidate_candidate()
        else:  # EXPIRED
            if cell is None:
                return None
            cell.remove_expired(rect, self.query.past_length, self.query.alpha)
            if self.candidate_reuse:
                cell.update_candidate_for_expired(
                    rect, self.query.past_length, self.query.alpha
                )
            else:
                cell.invalidate_candidate()
            if cell.is_empty:
                del self.cells[key]
                self._bound_heap.remove(key)
                return None
        return cell

    # ------------------------------------------------------------------
    # Lazy search loop (Algorithm 2, lines 4-9)
    # ------------------------------------------------------------------
    def _refresh_result(self) -> None:
        while True:
            top = self._bound_heap.peek()
            if top is None:
                self._result = None
                return
            key, _ = top
            cell = self.cells[key]
            if cell.has_valid_candidate():
                candidate = cell.candidate
                assert candidate is not None
                self._result = RegionResult.from_point(
                    candidate.point,
                    candidate.score,
                    self.query,
                    fc=candidate.fc,
                    fp=candidate.fp,
                )
                return
            self._search_cell(key, cell)

    def _search_cell(self, key: CellIndex, cell: CellState) -> None:
        """Run SL-CSPOT inside one cell and memoise the result (lines 6-7)."""
        self.stats.cells_searched += 1
        labeled = [
            LabeledRect(
                record.rect.x,
                record.rect.y,
                record.rect.x + record.rect.width,
                record.rect.y + record.rect.height,
                record.rect.weight,
                record.in_current,
            )
            for record in cell.records.values()
        ]
        outcome = sweep_bursty_point(
            labeled,
            alpha=self.query.alpha,
            current_length=self.query.current_length,
            past_length=self.query.past_length,
            bounds=cell.bounds,
            backend=self.sweep_backend,
        )
        if outcome is None:
            # No rectangle intersects the cell (cannot normally happen because
            # records are added only for overlapping cells); treat as empty.
            cell.candidate = CandidatePoint(
                point=cell.bounds.top_right, score=0.0, fc=0.0, fp=0.0, valid=True
            )
            cell.dynamic_bound = 0.0
        else:
            self.stats.rectangles_swept += outcome.rectangles_swept
            cell.candidate = CandidatePoint(
                point=outcome.point,
                score=outcome.score,
                fc=outcome.fc,
                fp=outcome.fp,
                valid=True,
            )
            cell.dynamic_bound = outcome.score
        self._bound_heap.push(key, cell.upper_bound)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        """The current bursty region (top-right corner at the bursty point)."""
        return self._result

    # ------------------------------------------------------------------
    # Introspection helpers used by tests and benchmarks
    # ------------------------------------------------------------------
    @property
    def live_cell_count(self) -> int:
        """Number of non-empty cells currently materialised."""
        return len(self.cells)

    @property
    def live_rectangle_count(self) -> int:
        """Total number of (cell, rectangle) incidences currently stored."""
        return sum(len(cell) for cell in self.cells.values())
