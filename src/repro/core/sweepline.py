"""SL-CSPOT: the sweep-line bursty-point search on a snapshot (Algorithm 1).

Given a set of rectangle objects labelled with the window they belong to,
SL-CSPOT finds a point of the plane with the maximum burst score.  The
vertical edges of the rectangles split the x axis into *slabs*; a horizontal
sweep visits the y coordinates of the horizontal edges top-down and maintains
per-slab ``(fc, fp)`` accumulators, so every face of the rectangle
arrangement is evaluated exactly once.

Backend architecture
--------------------
This module is a thin facade: it normalises the input (clipping to optional
``bounds``, rejecting empty snapshots) and delegates the actual sweep to a
pluggable kernel from :mod:`repro.core.sweep_backends`:

* ``python`` — the optimized pure-Python kernel.  Instead of rescanning all
  slabs at every y event (the original ``O(|ys| · |slabs|)`` behaviour) it
  re-evaluates only the slabs whose accumulators changed, which is exact
  because every score change is caused by a rectangle event covering the
  slab.
* ``numpy`` — a vectorized kernel: slab accumulators are ``float64`` arrays,
  rectangle add/remove events are difference-array writes, and each
  evaluation is a ``cumsum`` prefix sum plus a vectorized ``argmax``.
  Requires the optional ``numpy`` dependency (``pip install .[fast]``).
* ``auto`` (default) — adaptive dispatch between the two based on snapshot
  size, overridable through the ``REPRO_SWEEP_BACKEND`` environment variable
  or the ``backend`` argument threaded through every detector, the
  :func:`repro.core.monitor.make_detector` factory and the CLI's
  ``--backend`` flag.

All backends are exact and agree on best scores (the NumPy kernel up to
prefix-sum rounding, pinned by the parity test suite); reported points may
legitimately differ between backends when several points attain the optimum.

Exactness with closed rectangles
--------------------------------
The burst score is **not** monotone in the set of covering rectangles (a past
window rectangle lowers the score), so — unlike the classic max-enclosing
rectangle sweep — the optimum may lie either strictly inside an arrangement
face or exactly on an edge shared by two rectangles.  To stay exact the sweep
therefore evaluates *degenerate* slabs located exactly at the edge
coordinates in addition to the open slabs between them, in both the x and the
y direction.  This keeps the worst case at ``O(n²)`` while returning the
true optimum for closed rectangles.

The same routine powers the stand-alone snapshot search, the per-cell search
of Cell-CSPOT (via the ``bounds`` argument, which clips rectangles to the
cell), and the neighbourhood searches of the adapted aG2 baseline.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

from repro.core.sweep_backends import SweepBackend, clip_rects, resolve_backend
from repro.core.sweep_backends.types import LabeledRect, SweepResult
from repro.geometry.primitives import Rect
from repro.obs.tracer import current as _current_tracer

__all__ = ["LabeledRect", "SweepResult", "sweep_bursty_point"]


def sweep_bursty_point(
    rects: Iterable[LabeledRect],
    alpha: float,
    current_length: float,
    past_length: float,
    bounds: Rect | None = None,
    backend: str | SweepBackend | None = None,
) -> SweepResult | None:
    """Find a point with the maximum burst score over a rectangle snapshot.

    Parameters
    ----------
    rects:
        The rectangle objects alive in either sliding window.
    alpha:
        Burst-score balance parameter.
    current_length, past_length:
        ``|Wc|`` and ``|Wp|`` used to normalise weights.
    bounds:
        Optional clipping rectangle; when given, only points inside it are
        considered (this is how Cell-CSPOT restricts the search to a cell).
    backend:
        Sweep kernel to use: a :class:`~repro.core.sweep_backends.SweepBackend`
        instance, a backend name (``"auto"``, ``"python"``, ``"numpy"``), or
        ``None`` for the environment-driven default.

    Returns
    -------
    SweepResult or None
        The best point with its score and window scores, or ``None`` if no
        rectangle intersects ``bounds``.
    """
    rect_list = list(rects)
    if bounds is not None:
        rect_list = clip_rects(rect_list, bounds)
    if not rect_list:
        return None
    engine = resolve_backend(backend)
    tracer = _current_tracer()
    if tracer is None or not tracer.enabled:
        return engine.sweep(rect_list, alpha, current_length, past_length)
    # Name the kernel that actually runs: the adaptive facade exposes its
    # per-snapshot dispatch decision so the span says python/numpy, not auto.
    select = getattr(engine, "select", None)
    kernel = select(len(rect_list)).name if select is not None else engine.name
    started = perf_counter()
    result = engine.sweep(rect_list, alpha, current_length, past_length)
    tracer.record(
        f"sweep.{kernel}", started, perf_counter(),
        meta={"rects": len(rect_list)},
    )
    return result
