"""SL-CSPOT: the sweep-line bursty-point search on a snapshot (Algorithm 1).

Given a set of rectangle objects labelled with the window they belong to,
SL-CSPOT finds a point of the plane with the maximum burst score.  The
vertical edges of the rectangles split the x axis into *slabs*; a horizontal
sweep visits the y coordinates of the horizontal edges top-down and maintains
per-slab ``(fc, fp)`` accumulators, so every face of the rectangle
arrangement is evaluated exactly once.

Exactness with closed rectangles
--------------------------------
The burst score is **not** monotone in the set of covering rectangles (a past
window rectangle lowers the score), so — unlike the classic max-enclosing
rectangle sweep — the optimum may lie either strictly inside an arrangement
face or exactly on an edge shared by two rectangles.  To stay exact the sweep
therefore evaluates *degenerate* slabs located exactly at the edge
coordinates in addition to the open slabs between them, in both the x and the
y direction.  This keeps the overall cost at ``O(n²)`` while returning the
true optimum for closed rectangles.

The same routine powers the stand-alone snapshot search, the per-cell search
of Cell-CSPOT (via the ``bounds`` argument, which clips rectangles to the
cell), and the neighbourhood searches of the adapted aG2 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geometry.primitives import Point, Rect


@dataclass(frozen=True, slots=True)
class LabeledRect:
    """A rectangle object together with its window label.

    ``in_current`` is ``True`` for rectangles whose originating object lies
    in the current window ``Wc`` and ``False`` for the past window ``Wp``.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    weight: float
    in_current: bool

    @staticmethod
    def from_rect(rect: Rect, weight: float, in_current: bool) -> "LabeledRect":
        """Build a labelled rectangle from a geometric rectangle."""
        return LabeledRect(
            rect.min_x, rect.min_y, rect.max_x, rect.max_y, weight, in_current
        )


@dataclass(frozen=True, slots=True)
class SweepResult:
    """The outcome of one SL-CSPOT invocation."""

    point: Point
    score: float
    fc: float
    fp: float
    rectangles_swept: int = 0


def _clip(rects: Iterable[LabeledRect], bounds: Rect) -> list[LabeledRect]:
    """Clip rectangles to ``bounds``, dropping the ones that miss it entirely."""
    clipped = []
    for rect in rects:
        min_x = max(rect.min_x, bounds.min_x)
        min_y = max(rect.min_y, bounds.min_y)
        max_x = min(rect.max_x, bounds.max_x)
        max_y = min(rect.max_y, bounds.max_y)
        if min_x <= max_x and min_y <= max_y:
            clipped.append(
                LabeledRect(min_x, min_y, max_x, max_y, rect.weight, rect.in_current)
            )
    return clipped


def _slab_coordinates(values: Sequence[float]) -> list[float]:
    """Sorted distinct coordinates defining the degenerate slabs."""
    return sorted(set(values))


def sweep_bursty_point(
    rects: Iterable[LabeledRect],
    alpha: float,
    current_length: float,
    past_length: float,
    bounds: Rect | None = None,
) -> SweepResult | None:
    """Find a point with the maximum burst score over a rectangle snapshot.

    Parameters
    ----------
    rects:
        The rectangle objects alive in either sliding window.
    alpha:
        Burst-score balance parameter.
    current_length, past_length:
        ``|Wc|`` and ``|Wp|`` used to normalise weights.
    bounds:
        Optional clipping rectangle; when given, only points inside it are
        considered (this is how Cell-CSPOT restricts the search to a cell).

    Returns
    -------
    SweepResult or None
        The best point with its score and window scores, or ``None`` if no
        rectangle intersects ``bounds``.
    """
    rect_list = list(rects)
    if bounds is not None:
        rect_list = _clip(rect_list, bounds)
    if not rect_list:
        return None

    # ------------------------------------------------------------------
    # X slabs: degenerate slabs at every distinct vertical-edge coordinate
    # plus open slabs between consecutive coordinates.
    # ------------------------------------------------------------------
    xs = _slab_coordinates(
        [r.min_x for r in rect_list] + [r.max_x for r in rect_list]
    )
    # slab j (0-based): even j -> degenerate slab at xs[j // 2];
    #                   odd  j -> open slab (xs[j // 2], xs[j // 2 + 1]).
    slab_count = 2 * len(xs) - 1
    slab_repr_x = [0.0] * slab_count
    for index, x in enumerate(xs):
        slab_repr_x[2 * index] = x
        if index + 1 < len(xs):
            slab_repr_x[2 * index + 1] = (x + xs[index + 1]) / 2.0
    x_position = {x: index for index, x in enumerate(xs)}

    # Per-rect slab index range (inclusive).  A rectangle spans the degenerate
    # slab at its min_x, the degenerate slab at its max_x, and everything in
    # between, because its edges are members of the coordinate set.
    slab_ranges = []
    for rect in rect_list:
        lo = 2 * x_position[rect.min_x]
        hi = 2 * x_position[rect.max_x]
        slab_ranges.append((lo, hi))

    # ------------------------------------------------------------------
    # Y sweep: visit distinct horizontal-edge coordinates top-down.  At each
    # coordinate we first add the rectangles whose top edge is here, evaluate
    # (covers the degenerate slab at this y), then remove the rectangles whose
    # bottom edge is here and evaluate again (covers the open slab below).
    # ------------------------------------------------------------------
    ys = _slab_coordinates(
        [r.min_y for r in rect_list] + [r.max_y for r in rect_list]
    )
    ys_desc = list(reversed(ys))
    tops: dict[float, list[int]] = {}
    bottoms: dict[float, list[int]] = {}
    for index, rect in enumerate(rect_list):
        tops.setdefault(rect.max_y, []).append(index)
        bottoms.setdefault(rect.min_y, []).append(index)

    fc = [0.0] * slab_count
    fp = [0.0] * slab_count

    best_score = float("-inf")
    best_point: Point | None = None
    best_fc = 0.0
    best_fp = 0.0
    one_minus_alpha = 1.0 - alpha

    def evaluate(y_repr: float) -> None:
        nonlocal best_score, best_point, best_fc, best_fp
        for j in range(slab_count):
            slab_fc = fc[j]
            increase = slab_fc - fp[j]
            if increase < 0.0:
                increase = 0.0
            score = alpha * increase + one_minus_alpha * slab_fc
            if score > best_score:
                best_score = score
                best_point = Point(slab_repr_x[j], y_repr)
                best_fc = slab_fc
                best_fp = fp[j]

    def apply(index: int, sign: float) -> None:
        rect = rect_list[index]
        lo, hi = slab_ranges[index]
        if rect.in_current:
            delta = sign * rect.weight / current_length
            for j in range(lo, hi + 1):
                fc[j] += delta
        else:
            delta = sign * rect.weight / past_length
            for j in range(lo, hi + 1):
                fp[j] += delta

    for position, y in enumerate(ys_desc):
        for index in tops.get(y, ()):
            apply(index, +1.0)
        # Degenerate slab exactly at this y coordinate.
        evaluate(y)
        for index in bottoms.get(y, ()):
            apply(index, -1.0)
        # Open slab strictly below this y coordinate (down to the next one).
        if position + 1 < len(ys_desc):
            next_y = ys_desc[position + 1]
            evaluate((y + next_y) / 2.0)

    if best_point is None:  # pragma: no cover - defensive; rect_list is non-empty
        return None
    return SweepResult(
        point=best_point,
        score=best_score,
        fc=best_fc,
        fp=best_fp,
        rectangles_swept=len(rect_list),
    )
