"""Brute-force snapshot algorithms used as ground truth.

These routines evaluate the burst score by direct enumeration and are used

* by the test suite to validate SL-CSPOT, Cell-CSPOT and the approximation
  guarantees on small instances, and
* by the approximation-ratio harness (Tables III and IV) when an
  independent reference is wanted.

They are deliberately simple and cubic in the number of objects — clarity
over speed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.base import RegionResult
from repro.core.burst import burst_score
from repro.core.query import SurgeQuery
from repro.geometry.primitives import Point, Rect, region_covering_point
from repro.streams.objects import SpatialObject


def score_of_region(
    region: Rect,
    current: Iterable[SpatialObject],
    past: Iterable[SpatialObject],
    query: SurgeQuery,
) -> tuple[float, float, float]:
    """Burst score of an explicit region; returns ``(score, fc, fp)``."""
    fc = sum(o.weight for o in current if region.contains_xy(o.x, o.y))
    fp = sum(o.weight for o in past if region.contains_xy(o.x, o.y))
    fc /= query.current_length
    fp /= query.past_length
    return burst_score(fc, fp, query.alpha), fc, fp


def _candidate_coordinates(values: Sequence[float], extent: float) -> list[float]:
    """Candidate coordinates for one axis of the top-right corner.

    For an object coordinate ``v`` the corresponding rectangle object spans
    ``[v, v + extent]``; the arrangement's edge coordinates along this axis
    are therefore ``{v} ∪ {v + extent}``.  Candidates are those coordinates
    plus the midpoints of consecutive distinct coordinates, which together
    hit every face, edge and vertex of the arrangement.
    """
    edges = sorted({v for v in values} | {v + extent for v in values})
    candidates = list(edges)
    for left, right in zip(edges, edges[1:]):
        candidates.append((left + right) / 2.0)
    return candidates


def best_region_brute_force(
    current: Sequence[SpatialObject],
    past: Sequence[SpatialObject],
    query: SurgeQuery,
) -> RegionResult | None:
    """Exact bursty region of a snapshot by exhaustive candidate enumeration.

    Only objects inside the preferred area are considered, mirroring the
    reduction used by the streaming detectors.  Returns ``None`` when no
    object is alive.
    """
    current = [o for o in current if query.accepts(o.x, o.y)]
    past = [o for o in past if query.accepts(o.x, o.y)]
    everything = current + past
    if not everything:
        return None

    xs = _candidate_coordinates([o.x for o in everything], query.rect_width)
    ys = _candidate_coordinates([o.y for o in everything], query.rect_height)

    best: RegionResult | None = None
    for x in xs:
        for y in ys:
            region = region_covering_point(Point(x, y), query.rect_width, query.rect_height)
            score, fc, fp = score_of_region(region, current, past, query)
            if best is None or score > best.score:
                best = RegionResult(
                    region=region, score=score, point=Point(x, y), fc=fc, fp=fp
                )
    return best


def greedy_top_k_brute_force(
    current: Sequence[SpatialObject],
    past: Sequence[SpatialObject],
    query: SurgeQuery,
    k: int | None = None,
) -> list[RegionResult]:
    """Greedy top-k bursty regions of a snapshot (Definition 9), by brute force.

    The i-th region maximises the burst score computed over the objects not
    covered by the first ``i - 1`` regions; objects covered by an earlier
    region stop contributing to later ones.
    """
    if k is None:
        k = query.k
    remaining_current = [o for o in current if query.accepts(o.x, o.y)]
    remaining_past = [o for o in past if query.accepts(o.x, o.y)]
    results: list[RegionResult] = []
    for _ in range(k):
        best = best_region_brute_force(remaining_current, remaining_past, query)
        if best is None:
            break
        results.append(best)
        remaining_current = [
            o for o in remaining_current if not best.region.contains_xy(o.x, o.y)
        ]
        remaining_past = [
            o for o in remaining_past if not best.region.contains_xy(o.x, o.y)
        ]
    return results
