"""The burst score function (Definition 1 of the paper) and accumulators.

For a region (or point) with window scores ``fc = f(·, Wc)`` and
``fp = f(·, Wp)`` the burst score is::

    S = α · max(fc - fp, 0) + (1 - α) · fc

with ``α ∈ [0, 1)`` balancing *burstiness* (the increase from the past to the
current window) against *significance* (the mass in the current window).
Window scores are weight sums normalised by the window length.

:class:`WindowAccumulator` is the small mutable helper shared by every
grid-cell and interval structure in the library: it tracks the pair
``(fc, fp)`` together with object counts, supports the three window events,
and exposes the resulting burst score.
"""

from __future__ import annotations

from dataclasses import dataclass


def validate_alpha(alpha: float) -> float:
    """Validate the balance parameter ``α ∈ [0, 1)`` and return it."""
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    return float(alpha)


def burst_score(fc: float, fp: float, alpha: float) -> float:
    """Burst score ``α·max(fc - fp, 0) + (1 - α)·fc`` (Definition 1)."""
    increase = fc - fp
    if increase < 0.0:
        increase = 0.0
    return alpha * increase + (1.0 - alpha) * fc


def window_score(total_weight: float, window_length: float) -> float:
    """Window score ``f(·, W)``: total weight normalised by the window length."""
    if window_length <= 0:
        raise ValueError("window_length must be positive")
    return total_weight / window_length


@dataclass
class WindowAccumulator:
    """Incrementally maintained ``(fc, fp)`` pair for one region/point/cell.

    The accumulator works in *normalised* units: callers add or remove the
    quantity ``weight / |W|`` through the event-oriented methods below, so
    that the stored values are directly the window scores of Definition 1.

    Attributes
    ----------
    fc, fp:
        Current- and past-window scores.
    count_current, count_past:
        Number of contributing objects per window; used to decide when a
        cell has become empty and can be discarded.
    """

    fc: float = 0.0
    fp: float = 0.0
    count_current: int = 0
    count_past: int = 0

    # ------------------------------------------------------------------
    # Window events (Section IV-C)
    # ------------------------------------------------------------------
    def apply_new(self, weight: float, current_length: float) -> None:
        """A new object entered the current window."""
        self.fc += weight / current_length
        self.count_current += 1

    def apply_grown(self, weight: float, current_length: float, past_length: float) -> None:
        """An object moved from the current window to the past window."""
        self.fc -= weight / current_length
        self.fp += weight / past_length
        self.count_current -= 1
        self.count_past += 1

    def apply_expired(self, weight: float, past_length: float) -> None:
        """An object left the past window."""
        self.fp -= weight / past_length
        self.count_past -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def score(self, alpha: float) -> float:
        """The burst score of the accumulated mass."""
        return burst_score(self.fc, self.fp, alpha)

    @property
    def is_empty(self) -> bool:
        """Whether no object currently contributes to either window."""
        return self.count_current == 0 and self.count_past == 0

    def copy(self) -> "WindowAccumulator":
        """A detached copy of this accumulator."""
        return WindowAccumulator(
            fc=self.fc,
            fp=self.fp,
            count_current=self.count_current,
            count_past=self.count_past,
        )


def score_of_weights(
    current_weights: float,
    past_weights: float,
    current_length: float,
    past_length: float,
    alpha: float,
) -> float:
    """Burst score from raw (un-normalised) weight sums of the two windows."""
    fc = window_score(current_weights, current_length)
    fp = window_score(past_weights, past_length)
    return burst_score(fc, fp, alpha)
