"""Detector interface shared by every SURGE algorithm.

Every algorithm in the paper — the exact Cell-CSPOT, the GAP/MGAP
approximations, the Base / B-CCS / aG2 baselines, and the top-k extensions —
consumes the same input (a stream of ``NEW`` / ``GROWN`` / ``EXPIRED`` window
events) and produces the same output (the position of one or more bursty
regions with their burst scores).  :class:`BurstyRegionDetector` captures
that contract so that the evaluation harness, the monitor facade and the
benchmarks can treat all algorithms uniformly.

:class:`DetectorStats` collects the operation counters that the paper's
evaluation reports (most importantly the fraction of events that trigger a
cell search, Table II).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from typing import Iterable

from repro.core.query import SurgeQuery
from repro.geometry.primitives import Point, Rect, region_covering_point
from repro.streams.objects import EventBatch, WindowEvent


@dataclass(frozen=True, slots=True)
class RegionResult:
    """One reported bursty region.

    ``point`` is the bursty point of the CSPOT formulation (the top-right
    corner of ``region``) when the detector works on the reduced problem;
    grid-based detectors report the cell centre-top-right equivalently.
    ``fc`` / ``fp`` are the window scores at the reported position.
    """

    region: Rect
    score: float
    point: Point
    fc: float = 0.0
    fp: float = 0.0

    @staticmethod
    def from_point(
        point: Point, score: float, query: SurgeQuery, fc: float = 0.0, fp: float = 0.0
    ) -> "RegionResult":
        """Build a result from a bursty point using the Theorem 1 mapping.

        The region edges come from :func:`~repro.geometry.primitives.
        region_covering_point`, so the closed region contains exactly the
        objects whose rectangle objects cover ``point`` — including objects
        sitting on an edge tie that the naive ``point - extent`` inverse
        mapping would round out of the region.
        """
        region = region_covering_point(point, query.rect_width, query.rect_height)
        return RegionResult(region=region, score=score, point=point, fc=fc, fp=fp)

    @staticmethod
    def from_region(
        region: Rect, score: float, fc: float = 0.0, fp: float = 0.0
    ) -> "RegionResult":
        """Build a result directly from a region (grid-based detectors)."""
        return RegionResult(
            region=region, score=score, point=region.top_right, fc=fc, fp=fp
        )


@dataclass
class DetectorStats:
    """Operation counters accumulated while a detector processes a stream."""

    #: Window events handed to :meth:`BurstyRegionDetector.process`.
    events_processed: int = 0
    #: Events whose object fell outside the preferred area and were skipped.
    events_skipped: int = 0
    #: Events that triggered at least one cell search (the Table II metric).
    events_triggering_search: int = 0
    #: Individual cell searches (SL-CSPOT invocations on a cell).
    cells_searched: int = 0
    #: Stand-alone sweep-line invocations (snapshot searches).
    sweepline_calls: int = 0
    #: Rectangles examined inside cell searches (a proxy for |c_max|).
    rectangles_swept: int = 0

    def merge(self, other: "DetectorStats") -> "DetectorStats":
        """Element-wise sum of two counter sets (useful for multi-grid detectors)."""
        return DetectorStats(
            events_processed=self.events_processed + other.events_processed,
            events_skipped=self.events_skipped + other.events_skipped,
            events_triggering_search=self.events_triggering_search
            + other.events_triggering_search,
            cells_searched=self.cells_searched + other.cells_searched,
            sweepline_calls=self.sweepline_calls + other.sweepline_calls,
            rectangles_swept=self.rectangles_swept + other.rectangles_swept,
        )

    @property
    def search_trigger_ratio(self) -> float:
        """Fraction of processed events that triggered a search (Table II)."""
        if self.events_processed == 0:
            return 0.0
        return self.events_triggering_search / self.events_processed


class BurstyRegionDetector(abc.ABC):
    """Abstract base class of all continuous bursty-region detectors."""

    #: Short name used by the factory and in benchmark output.
    name: str = "detector"
    #: Whether the detector reports the exact optimum (used by the harness
    #: when choosing a ground-truth reference).
    exact: bool = False

    def __init__(self, query: SurgeQuery) -> None:
        self.query = query
        self.stats = DetectorStats()

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def process(self, event: WindowEvent) -> None:
        """Apply one window event to the detector state."""

    def process_all(self, events) -> None:
        """Apply a sequence of window events in order."""
        for event in events:
            self.process(event)

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch at once (the batched ingestion path).

        The default implementation simply loops :meth:`process` over the
        batch in its lifecycle-safe order, so every detector supports the
        batch API out of the box.  Detectors for which batching pays —
        the cell-based exact detectors and the naive full-sweep baseline —
        override it to update their per-cell records for the whole batch
        first and re-establish the reported result (bound invalidation, heap
        maintenance, candidate searches) once per batch instead of once per
        event.

        The reported result after the batch matches the per-event path up to
        floating-point associativity (scores may differ in the last bits
        because bulk maintenance sums contributions in a different order).
        """
        for event in batch:
            self.process(event)

    def _apply_batch_records(
        self,
        batch: "EventBatch | Iterable[WindowEvent]",
        cells,
        overlapping,
        update_cell,
    ) -> set:
        """Shared record-update loop of the cell-based batch appliers.

        Applies every event's per-cell record update (in the batch's
        lifecycle-safe order) and returns the set of *dirty* cell keys whose
        heap priority the caller must refresh.  ``cells`` is the detector's
        live-cell dict, ``overlapping(rect)`` lists the cell keys a rectangle
        object touches, and ``update_cell(key, rect, kind)`` applies one
        update, returning the surviving cell or ``None``.

        ``None`` from ``update_cell`` means either "the event emptied and
        removed the cell" or "the event was a no-op" (e.g. a GROWN/EXPIRED
        transition for an object this detector never saw); only the former
        may cancel dirtiness accumulated earlier in the batch, so the cell
        dict decides.
        """
        stats = self.stats
        accepts = self.query.accepts
        rect_width = self.query.rect_width
        rect_height = self.query.rect_height
        dirty: set = set()
        for event in batch:
            stats.events_processed += 1
            obj = event.obj
            if not accepts(obj.x, obj.y):
                stats.events_skipped += 1
                continue
            rect = obj.to_rectangle(rect_width, rect_height)
            for key in overlapping(rect):
                if update_cell(key, rect, event.kind) is not None:
                    dirty.add(key)
                elif key not in cells:
                    dirty.discard(key)
        return dirty

    def _overlapping_cells(self, rect):
        """Cell keys a rectangle object touches (cell-index-based detectors).

        Default implementation for detectors carrying a
        :class:`~repro.core.cell_index.UniformGridIndex` as ``cell_index``;
        coarse-grid detectors (aG2) override it.
        """
        return self.cell_index.cells_overlapping(
            rect.x, rect.y, rect.x + rect.width, rect.y + rect.height
        )

    # ------------------------------------------------------------------
    # Result interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def result(self) -> RegionResult | None:
        """The current bursty region, or ``None`` when no object is alive."""

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        """The current top-k bursty regions (best first).

        The default implementation returns the single best region; top-k
        detectors override it.
        """
        single = self.result()
        return [single] if single is not None else []

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def current_score(self) -> float:
        """The burst score of the current result (``0`` when there is none)."""
        result = self.result()
        return result.score if result is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(query={self.query!r})"
