"""Core SURGE contribution: burst scores, queries, and the detectors.

The public entry points are:

* :class:`~repro.core.query.SurgeQuery` — the query ``⟨A, a × b, |W|, α⟩``,
* :class:`~repro.core.monitor.SurgeMonitor` — facade that feeds a raw object
  stream into a detector and exposes the continuously-maintained result,
* the detectors themselves:
  :class:`~repro.core.cell_cspot.CellCSPOT` (exact, Algorithm 2),
  :class:`~repro.core.gap.GapSurge` (Algorithm 3) and
  :class:`~repro.core.mgap.MGapSurge` (Algorithm 5),
* :func:`~repro.core.monitor.make_detector` — name-based detector factory
  covering the baselines and top-k extensions as well.
"""

from repro.core.burst import burst_score, WindowAccumulator
from repro.core.query import SurgeQuery
from repro.core.base import BurstyRegionDetector, DetectorStats, RegionResult
from repro.core.cell_cspot import CellCSPOT
from repro.core.gap import GapSurge
from repro.core.mgap import MGapSurge
from repro.core.monitor import SurgeMonitor, make_detector, DETECTOR_NAMES

__all__ = [
    "burst_score",
    "WindowAccumulator",
    "SurgeQuery",
    "BurstyRegionDetector",
    "DetectorStats",
    "RegionResult",
    "CellCSPOT",
    "GapSurge",
    "MGapSurge",
    "SurgeMonitor",
    "make_detector",
    "DETECTOR_NAMES",
]
