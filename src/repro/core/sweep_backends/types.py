"""Shared value types of the sweep-line backends.

:class:`LabeledRect` and :class:`SweepResult` are the input and output of
every SL-CSPOT kernel.  They live here — rather than in
:mod:`repro.core.sweepline` — so the backend implementations can import them
without creating a cycle with the facade module, which re-exports both names
for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.geometry.primitives import Point, Rect


@dataclass(frozen=True, slots=True)
class LabeledRect:
    """A rectangle object together with its window label.

    ``in_current`` is ``True`` for rectangles whose originating object lies
    in the current window ``Wc`` and ``False`` for the past window ``Wp``.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    weight: float
    in_current: bool

    @staticmethod
    def from_rect(rect: Rect, weight: float, in_current: bool) -> "LabeledRect":
        """Build a labelled rectangle from a geometric rectangle."""
        return LabeledRect(
            rect.min_x, rect.min_y, rect.max_x, rect.max_y, weight, in_current
        )


@dataclass(frozen=True, slots=True)
class SweepResult:
    """The outcome of one SL-CSPOT invocation."""

    point: Point
    score: float
    fc: float
    fp: float
    rectangles_swept: int = 0


def clip_rects(rects: Iterable[LabeledRect], bounds: Rect) -> list[LabeledRect]:
    """Clip rectangles to ``bounds``, dropping the ones that miss it entirely."""
    clipped = []
    for rect in rects:
        min_x = max(rect.min_x, bounds.min_x)
        min_y = max(rect.min_y, bounds.min_y)
        max_x = min(rect.max_x, bounds.max_x)
        max_y = min(rect.max_y, bounds.max_y)
        if min_x <= max_x and min_y <= max_y:
            clipped.append(
                LabeledRect(min_x, min_y, max_x, max_y, rect.weight, rect.in_current)
            )
    return clipped
