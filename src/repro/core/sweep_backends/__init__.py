"""Pluggable execution backends for the SL-CSPOT sweep-line kernel.

Every detector funnels its per-snapshot search into
:func:`repro.core.sweepline.sweep_bursty_point`; this package provides the
interchangeable kernels that actually run the sweep:

``python``
    The optimized pure-Python kernel (no dependencies beyond the standard
    library).  Incremental slab evaluation makes it strictly faster than the
    original seed kernel while remaining bit-for-bit exact.

``numpy``
    A vectorized kernel using difference arrays and ``cumsum`` prefix sums.
    Available only when the optional ``numpy`` dependency is installed
    (``pip install .[fast]``).

``auto``
    Adaptive dispatch: small snapshots (where interpreter overhead is
    irrelevant and array setup dominates) run on the Python kernel, large
    ones on NumPy when it is importable.  This is the default.

Selection
---------
:func:`resolve_backend` accepts a backend instance, a name, or ``None``.
``None`` consults the ``REPRO_SWEEP_BACKEND`` environment variable and falls
back to ``auto``.  Detector constructors resolve their backend once and reuse
it for every sweep.  The ``auto`` crossover size can be overridden with the
``REPRO_SWEEP_CROSSOVER`` environment variable (read when the ``auto``
backend instance is created; shared instances are cached per process).
"""

from __future__ import annotations

import os
from typing import Protocol, Sequence, runtime_checkable

from repro.core.sweep_backends.python_backend import PythonSweepBackend
from repro.core.sweep_backends.types import LabeledRect, SweepResult, clip_rects

#: Environment variable consulted by :func:`resolve_backend` when no explicit
#: backend is requested.
BACKEND_ENV_VAR = "REPRO_SWEEP_BACKEND"

#: Environment variable overriding the ``auto`` backend's python→numpy
#: crossover size (a positive integer; see :func:`resolve_crossover`).
CROSSOVER_ENV_VAR = "REPRO_SWEEP_CROSSOVER"

#: Default snapshot size at which ``auto`` switches from the Python kernel to
#: NumPy.  Below this the fixed cost of array construction outweighs
#: vectorization; the measured crossover (benchmarks/bench_sweep.py
#: snapshots) is ~190.  Override per environment with ``REPRO_SWEEP_CROSSOVER``
#: when the measured crossover differs on your hardware.
AUTO_NUMPY_THRESHOLD = 192


def resolve_crossover(value: "int | None" = None) -> int:
    """The ``auto`` backend's python→numpy crossover snapshot size.

    An explicit ``value`` wins; otherwise the :data:`CROSSOVER_ENV_VAR`
    environment variable is consulted, falling back to
    :data:`AUTO_NUMPY_THRESHOLD`.  The result must be a positive integer —
    anything else raises :class:`ValueError` (a silently-ignored typo in the
    env var would quietly change which kernel serves every sweep).
    """
    if value is None:
        raw = os.environ.get(CROSSOVER_ENV_VAR, "").strip()
        if not raw:
            return AUTO_NUMPY_THRESHOLD
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"invalid {CROSSOVER_ENV_VAR}={raw!r}: expected a positive "
                f"integer snapshot size"
            ) from None
    if value < 1:
        raise ValueError(
            f"sweep crossover must be a positive integer, got {value}"
        )
    return value

try:  # pragma: no cover - exercised indirectly through available_backends()
    from repro.core.sweep_backends.numpy_backend import NumpySweepBackend

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is an optional dependency
    NumpySweepBackend = None  # type: ignore[assignment,misc]
    _HAVE_NUMPY = False


@runtime_checkable
class SweepBackend(Protocol):
    """Protocol every sweep kernel implements.

    ``sweep`` receives a non-empty, already-clipped rectangle list and must
    return the exact bursty point of the snapshot (the facade handles
    clipping and the empty case).
    """

    name: str

    def sweep(
        self,
        rects: Sequence[LabeledRect],
        alpha: float,
        current_length: float,
        past_length: float,
    ) -> SweepResult: ...


class AdaptiveSweepBackend:
    """Dispatch to NumPy for large snapshots, pure Python for small ones."""

    name = "auto"

    def __init__(self, numpy_threshold: "int | None" = None) -> None:
        """``numpy_threshold=None`` reads ``REPRO_SWEEP_CROSSOVER`` (else the
        measured default); an explicit value overrides both."""
        self.numpy_threshold = resolve_crossover(numpy_threshold)
        self._python = PythonSweepBackend()
        self._numpy = NumpySweepBackend() if _HAVE_NUMPY else None

    def select(self, n_rects: int) -> SweepBackend:
        """The concrete kernel a snapshot of ``n_rects`` dispatches to.

        Exposed so callers that label work by kernel (the tracing layer's
        ``sweep.<backend>`` spans) can name the kernel that actually ran
        instead of the ``auto`` facade.
        """
        if self._numpy is not None and n_rects >= self.numpy_threshold:
            return self._numpy
        return self._python

    def sweep(
        self,
        rects: Sequence[LabeledRect],
        alpha: float,
        current_length: float,
        past_length: float,
    ) -> SweepResult:
        return self.select(len(rects)).sweep(
            rects, alpha, current_length, past_length
        )


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` in this environment."""
    if _HAVE_NUMPY:
        return ("auto", "python", "numpy")
    return ("auto", "python")


_INSTANCES: dict[str, SweepBackend] = {}


def get_backend(name: str) -> SweepBackend:
    """The shared backend instance registered under ``name``."""
    key = name.lower()
    cached = _INSTANCES.get(key)
    if cached is not None:
        return cached
    if key == "python":
        backend: SweepBackend = PythonSweepBackend()
    elif key == "auto":
        backend = AdaptiveSweepBackend()
    elif key == "numpy":
        if not _HAVE_NUMPY:
            raise RuntimeError(
                "the numpy sweep backend was requested but numpy is not "
                "installed; install the optional dependency with "
                "'pip install .[fast]' or select the 'python' backend"
            )
        backend = NumpySweepBackend()
    else:
        raise ValueError(
            f"unknown sweep backend {name!r}; expected one of "
            f"{', '.join(available_backends())}"
        )
    _INSTANCES[key] = backend
    return backend


def resolve_backend(spec: "str | SweepBackend | None" = None) -> SweepBackend:
    """Turn a backend spec (instance, name, or ``None``) into a backend.

    ``None`` reads the :data:`BACKEND_ENV_VAR` environment variable and falls
    back to ``auto`` when it is unset or empty.
    """
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "").strip() or "auto"
    if isinstance(spec, str):
        return get_backend(spec)
    return spec


__all__ = [
    "AUTO_NUMPY_THRESHOLD",
    "BACKEND_ENV_VAR",
    "CROSSOVER_ENV_VAR",
    "resolve_crossover",
    "AdaptiveSweepBackend",
    "LabeledRect",
    "PythonSweepBackend",
    "SweepBackend",
    "SweepResult",
    "available_backends",
    "clip_rects",
    "get_backend",
    "resolve_backend",
]
