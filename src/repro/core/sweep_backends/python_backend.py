"""Pure-Python SL-CSPOT kernel with incremental slab evaluation.

The seed implementation rescanned *every* slab at *every* y event, making the
sweep ``O(|ys| · |slabs|)`` even when most slabs were untouched between two
events.  This backend keeps the same slab/accumulator structure but evaluates
a slab only when its ``(fc, fp)`` pair actually changed:

* the first evaluation scans all slabs once (so empty, zero-score slabs are
  representable in the result, exactly as in the seed kernel);
* afterwards, each y event only evaluates the union of the slab ranges of the
  rectangles added or removed at that event — an unchanged slab's score was
  already considered at an earlier, equally valid sweep position.

Because burst scores are non-negative and every score change of a slab is
caused by a rectangle event whose span covers the slab, the maximum over the
evaluated ``(slab, y)`` pairs equals the maximum over all of them, so the
kernel stays exact while the per-event cost drops from ``O(|slabs|)`` to
``O(Σ span of touched rectangles)``.

The arithmetic (per-slab accumulation order, score formula) is identical to
the seed kernel, so reported best scores are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.sweep_backends.types import LabeledRect, SweepResult
from repro.geometry.primitives import Point


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent inclusive index ranges."""
    if len(ranges) <= 1:
        return ranges
    ranges.sort()
    merged = [ranges[0]]
    for lo, hi in ranges[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged


class PythonSweepBackend:
    """Optimized pure-Python backend (no third-party dependencies)."""

    name = "python"

    def sweep(
        self,
        rects: Sequence[LabeledRect],
        alpha: float,
        current_length: float,
        past_length: float,
    ) -> SweepResult:
        rect_list = list(rects)

        # X slabs: degenerate slabs at every distinct vertical-edge coordinate
        # plus open slabs between consecutive coordinates.
        xs = sorted(
            {r.min_x for r in rect_list} | {r.max_x for r in rect_list}
        )
        # slab j (0-based): even j -> degenerate slab at xs[j // 2];
        #                   odd  j -> open slab (xs[j // 2], xs[j // 2 + 1]).
        slab_count = 2 * len(xs) - 1
        slab_repr_x = [0.0] * slab_count
        for index, x in enumerate(xs):
            slab_repr_x[2 * index] = x
            if index + 1 < len(xs):
                slab_repr_x[2 * index + 1] = (x + xs[index + 1]) / 2.0
        x_position = {x: index for index, x in enumerate(xs)}

        slab_ranges = [
            (2 * x_position[rect.min_x], 2 * x_position[rect.max_x])
            for rect in rect_list
        ]

        ys = sorted(
            {r.min_y for r in rect_list} | {r.max_y for r in rect_list}
        )
        ys_desc = list(reversed(ys))
        tops: dict[float, list[int]] = {}
        bottoms: dict[float, list[int]] = {}
        for index, rect in enumerate(rect_list):
            tops.setdefault(rect.max_y, []).append(index)
            bottoms.setdefault(rect.min_y, []).append(index)

        fc = [0.0] * slab_count
        fp = [0.0] * slab_count

        best_score = float("-inf")
        best_point: Point | None = None
        best_fc = 0.0
        best_fp = 0.0
        one_minus_alpha = 1.0 - alpha
        first_eval_done = False

        def evaluate_range(lo: int, hi: int, y_repr: float) -> None:
            nonlocal best_score, best_point, best_fc, best_fp
            for j in range(lo, hi + 1):
                slab_fc = fc[j]
                increase = slab_fc - fp[j]
                if increase < 0.0:
                    increase = 0.0
                score = alpha * increase + one_minus_alpha * slab_fc
                if score > best_score:
                    best_score = score
                    best_point = Point(slab_repr_x[j], y_repr)
                    best_fc = slab_fc
                    best_fp = fp[j]

        def apply(indices: list[int], sign: float) -> list[tuple[int, int]]:
            touched = []
            for index in indices:
                rect = rect_list[index]
                lo, hi = slab_ranges[index]
                touched.append((lo, hi))
                if rect.in_current:
                    delta = sign * rect.weight / current_length
                    for j in range(lo, hi + 1):
                        fc[j] += delta
                else:
                    delta = sign * rect.weight / past_length
                    for j in range(lo, hi + 1):
                        fp[j] += delta
            return touched

        for position, y in enumerate(ys_desc):
            added = tops.get(y)
            if added:
                touched = apply(added, +1.0)
                # Degenerate slab exactly at this y coordinate.  The first
                # evaluation scans everything so zero-score slabs can win when
                # no current-window rectangle is alive.
                if not first_eval_done:
                    evaluate_range(0, slab_count - 1, y)
                    first_eval_done = True
                else:
                    for lo, hi in _merge_ranges(touched):
                        evaluate_range(lo, hi, y)
            removed = bottoms.get(y)
            if removed and position + 1 < len(ys_desc):
                touched = apply(removed, -1.0)
                # Open slab strictly below this y coordinate: removing a past
                # rectangle can raise the score, so removals re-evaluate too.
                mid = (y + ys_desc[position + 1]) / 2.0
                for lo, hi in _merge_ranges(touched):
                    evaluate_range(lo, hi, mid)
            elif removed:
                # Bottom edges at the lowest y: nothing lies below, matching
                # the seed kernel which never evaluated past the last event.
                apply(removed, -1.0)

        assert best_point is not None  # the topmost y always has a top edge
        return SweepResult(
            point=best_point,
            score=best_score,
            fc=best_fc,
            fp=best_fp,
            rectangles_swept=len(rect_list),
        )
