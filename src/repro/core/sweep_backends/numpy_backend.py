"""Vectorized SL-CSPOT kernel backed by NumPy array accumulators.

Slab accumulators are ``float64`` arrays and the per-slab Python loops of the
scalar kernel are replaced by vectorized kernels throughout.  Two evaluation
strategies are provided:

``incremental`` (default)
    Accumulators are maintained directly with vectorized range updates
    (``fc[lo:hi+1] += δ``) and, as in the optimized pure-Python backend, an
    evaluation only scans the merged slab span that changed at the event —
    with NumPy doing the scoring and ``argmax`` over the span in a handful of
    vector operations.  Work per event is ``O(span)`` with tiny constants.

``cumsum``
    Rectangle add/remove events are ``O(1)`` difference-array writes
    (``d[lo] += δ; d[hi+1] -= δ``); each evaluation materialises all slabs
    with one ``cumsum`` prefix sum per window and takes a full vectorized
    ``argmax``.  Simpler to reason about, but every evaluation pays for the
    whole slab axis; it is kept both as a cross-check and because its cost
    model (flat per event) can win on adversarial inputs where every
    rectangle spans nearly all slabs.

Both strategies are exact.  The ``incremental`` strategy performs the same
floating-point additions in the same per-slab order as the pure-Python
kernel, so its best scores match that backend bit for bit; ``cumsum`` sums
along the slab axis instead and may differ in the last few ulps (the parity
suite pins all kernels together at ``1e-9`` relative tolerance).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.sweep_backends.types import LabeledRect, SweepResult
from repro.geometry.primitives import Point

import numpy as np


class _Problem:
    """Shared slab/event setup for both evaluation strategies."""

    __slots__ = (
        "n",
        "slab_count",
        "slab_repr_x",
        "lo",
        "hi",
        "delta",
        "in_current",
        "ys",
        "top_of",
        "bottom_of",
    )

    def __init__(
        self,
        rect_list: list[LabeledRect],
        current_length: float,
        past_length: float,
    ) -> None:
        n = len(rect_list)
        self.n = n
        min_x = np.fromiter((r.min_x for r in rect_list), dtype=np.float64, count=n)
        max_x = np.fromiter((r.max_x for r in rect_list), dtype=np.float64, count=n)
        min_y = np.fromiter((r.min_y for r in rect_list), dtype=np.float64, count=n)
        max_y = np.fromiter((r.max_y for r in rect_list), dtype=np.float64, count=n)
        weight = np.fromiter((r.weight for r in rect_list), dtype=np.float64, count=n)
        self.in_current = np.fromiter(
            (r.in_current for r in rect_list), dtype=np.bool_, count=n
        )

        # X slabs: degenerate slabs at the distinct vertical-edge coordinates,
        # open slabs in between (slab 2i sits at xs[i], slab 2i+1 strictly
        # between xs[i] and xs[i+1]).
        xs = np.unique(np.concatenate([min_x, max_x]))
        self.slab_count = 2 * xs.size - 1
        slab_repr_x = np.empty(self.slab_count, dtype=np.float64)
        slab_repr_x[0::2] = xs
        if xs.size > 1:
            slab_repr_x[1::2] = (xs[:-1] + xs[1:]) / 2.0
        self.slab_repr_x = slab_repr_x

        # Inclusive slab index range of each rectangle.
        self.lo = 2 * np.searchsorted(xs, min_x)
        self.hi = 2 * np.searchsorted(xs, max_x)

        # Per-window normalised weight of each rectangle.
        self.delta = np.where(
            self.in_current, weight / current_length, weight / past_length
        )

        # Y events swept top-down: rectangle indices added/removed per row,
        # grouped with one stable argsort per direction (a per-row mask scan
        # would cost O(n · |ys|) and dominate the setup).  Stability keeps
        # rectangles within a row in input order, matching the scalar kernel's
        # accumulation order bit for bit.
        ys = np.unique(np.concatenate([min_y, max_y]))
        self.ys = ys
        row_splits = np.arange(1, ys.size)
        top_row = np.searchsorted(ys, max_y)
        order = np.argsort(top_row, kind="stable")
        self.top_of = np.split(order, np.searchsorted(top_row[order], row_splits))
        bottom_row = np.searchsorted(ys, min_y)
        order = np.argsort(bottom_row, kind="stable")
        self.bottom_of = np.split(order, np.searchsorted(bottom_row[order], row_splits))


class NumpySweepBackend:
    """Array-backed backend (requires the optional ``numpy`` dependency)."""

    name = "numpy"

    def __init__(self, strategy: str = "incremental") -> None:
        if strategy not in ("incremental", "cumsum"):
            raise ValueError(
                f"unknown numpy sweep strategy {strategy!r}; "
                "expected 'incremental' or 'cumsum'"
            )
        self.strategy = strategy

    def sweep(
        self,
        rects: Sequence[LabeledRect],
        alpha: float,
        current_length: float,
        past_length: float,
    ) -> SweepResult:
        problem = _Problem(list(rects), current_length, past_length)
        if self.strategy == "incremental":
            return self._sweep_incremental(problem, alpha)
        return self._sweep_cumsum(problem, alpha)

    # ------------------------------------------------------------------
    # Default strategy: maintained accumulators + changed-span evaluation
    # ------------------------------------------------------------------
    def _sweep_incremental(self, problem: _Problem, alpha: float) -> SweepResult:
        slab_count = problem.slab_count
        fc = np.zeros(slab_count, dtype=np.float64)
        fp = np.zeros(slab_count, dtype=np.float64)
        lo, hi, delta, in_current = (
            problem.lo,
            problem.hi,
            problem.delta,
            problem.in_current,
        )
        ys = problem.ys
        one_minus_alpha = 1.0 - alpha

        best_score = -np.inf
        best_x = 0.0
        best_y = 0.0
        best_fc = 0.0
        best_fp = 0.0
        first_eval_done = False

        def apply(indices: np.ndarray, sign: float) -> tuple[int, int]:
            span_lo = slab_count
            span_hi = -1
            for index in indices:
                d = sign * delta[index]
                a = lo[index]
                b = hi[index]
                if in_current[index]:
                    fc[a : b + 1] += d
                else:
                    fp[a : b + 1] += d
                if a < span_lo:
                    span_lo = a
                if b > span_hi:
                    span_hi = b
            return span_lo, span_hi

        def evaluate(span_lo: int, span_hi: int, y_repr: float) -> None:
            nonlocal best_score, best_x, best_y, best_fc, best_fp
            f = fc[span_lo : span_hi + 1]
            p = fp[span_lo : span_hi + 1]
            score = f - p
            np.maximum(score, 0.0, out=score)
            score *= alpha
            score += one_minus_alpha * f
            top = float(score.max())
            if top > best_score:
                j = int(np.argmax(score))
                best_score = top
                best_x = float(problem.slab_repr_x[span_lo + j])
                best_y = y_repr
                best_fc = float(f[j])
                best_fp = float(p[j])

        for row in range(ys.size - 1, -1, -1):
            y = float(ys[row])
            added = problem.top_of[row]
            if added.size:
                span_lo, span_hi = apply(added, +1.0)
                if not first_eval_done:
                    # The first evaluation scans everything so zero-score
                    # slabs can win when no current rectangle is alive.
                    evaluate(0, slab_count - 1, y)
                    first_eval_done = True
                else:
                    # Degenerate slab exactly at this y: only the changed
                    # span can hold a new maximum.
                    evaluate(span_lo, span_hi, y)
            removed = problem.bottom_of[row]
            if removed.size:
                span_lo, span_hi = apply(removed, -1.0)
                if row > 0:
                    # Open slab strictly below this y; removing a past
                    # rectangle can raise the score, so re-evaluate the span.
                    evaluate(span_lo, span_hi, (y + float(ys[row - 1])) / 2.0)

        assert best_score > -np.inf  # the topmost y always has a top edge
        return SweepResult(
            point=Point(best_x, best_y),
            score=best_score,
            fc=best_fc,
            fp=best_fp,
            rectangles_swept=problem.n,
        )

    # ------------------------------------------------------------------
    # Alternative strategy: difference arrays + cumsum prefix evaluation
    # ------------------------------------------------------------------
    def _sweep_cumsum(self, problem: _Problem, alpha: float) -> SweepResult:
        slab_count = problem.slab_count
        diff_fc = np.zeros(slab_count + 1, dtype=np.float64)
        diff_fp = np.zeros(slab_count + 1, dtype=np.float64)
        lo, hi, delta, in_current = (
            problem.lo,
            problem.hi,
            problem.delta,
            problem.in_current,
        )
        ys = problem.ys
        one_minus_alpha = 1.0 - alpha

        best_score = -np.inf
        best_index = -1
        best_y = 0.0
        best_fc = 0.0
        best_fp = 0.0

        def apply(indices: np.ndarray, sign: float) -> None:
            cur = in_current[indices]
            d = sign * delta[indices]
            np.add.at(diff_fc, lo[indices][cur], d[cur])
            np.subtract.at(diff_fc, hi[indices][cur] + 1, d[cur])
            np.add.at(diff_fp, lo[indices][~cur], d[~cur])
            np.subtract.at(diff_fp, hi[indices][~cur] + 1, d[~cur])

        def evaluate(y_repr: float) -> None:
            nonlocal best_score, best_index, best_y, best_fc, best_fp
            fc = np.cumsum(diff_fc[:slab_count])
            fp = np.cumsum(diff_fp[:slab_count])
            score = alpha * np.maximum(fc - fp, 0.0) + one_minus_alpha * fc
            top = float(score.max())
            if top > best_score:
                j = int(np.argmax(score))
                best_score = top
                best_index = j
                best_y = y_repr
                best_fc = float(fc[j])
                best_fp = float(fp[j])

        for row in range(ys.size - 1, -1, -1):
            y = float(ys[row])
            added = problem.top_of[row]
            if added.size:
                apply(added, +1.0)
                evaluate(y)
            removed = problem.bottom_of[row]
            if removed.size:
                apply(removed, -1.0)
                if row > 0:
                    evaluate((y + float(ys[row - 1])) / 2.0)

        assert best_index >= 0  # the topmost y always has a top edge
        return SweepResult(
            point=Point(float(problem.slab_repr_x[best_index]), best_y),
            score=best_score,
            fc=best_fc,
            fp=best_fp,
            rectangles_swept=problem.n,
        )
