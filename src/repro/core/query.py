"""The SURGE query object.

A SURGE query (Definition 2 of the paper) is ``q = ⟨A, a × b, |W|⟩`` together
with the burst-score balance parameter ``α``: the user asks for the position
of the ``a × b`` region inside the preferred area ``A`` with the maximum
burst score, continuously re-evaluated as the stream advances.  The top-k
variant (Definition 9) additionally carries ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.burst import validate_alpha
from repro.geometry.grids import GridSpec
from repro.geometry.primitives import Rect


@dataclass(frozen=True)
class SurgeQuery:
    """A continuous bursty-region query.

    Parameters
    ----------
    rect_width, rect_height:
        The requested region size ``a × b`` (``a`` along x, ``b`` along y).
    window_length:
        Length ``|W|`` of the current sliding window, in the same time unit
        as object timestamps (seconds throughout this library).
    alpha:
        Burst-score balance parameter ``α ∈ [0, 1)``; ``0`` means "pure
        significance" (the continuous MaxRS objective), values close to ``1``
        emphasise the increase over the past window.
    area:
        Preferred area ``A``; objects outside it are ignored.  ``None`` means
        the whole space.
    past_window_length:
        Length of the past window; defaults to ``window_length`` as in the
        paper.
    k:
        Number of bursty regions to maintain (``1`` for the plain SURGE
        problem, ``> 1`` for the top-k variant).
    """

    rect_width: float
    rect_height: float
    window_length: float
    alpha: float = 0.5
    area: Rect | None = None
    past_window_length: float | None = None
    k: int = 1
    _alpha_checked: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rect_width <= 0 or self.rect_height <= 0:
            raise ValueError("the query rectangle must have positive size")
        if self.window_length <= 0:
            raise ValueError("window_length must be positive")
        if self.past_window_length is not None and self.past_window_length <= 0:
            raise ValueError("past_window_length must be positive")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        object.__setattr__(self, "_alpha_checked", validate_alpha(self.alpha))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def current_length(self) -> float:
        """``|Wc|``."""
        return self.window_length

    @property
    def past_length(self) -> float:
        """``|Wp|`` (defaults to ``|Wc|``)."""
        return (
            self.past_window_length
            if self.past_window_length is not None
            else self.window_length
        )

    def accepts(self, x: float, y: float) -> bool:
        """Whether an object at ``(x, y)`` falls inside the preferred area."""
        if self.area is None:
            return True
        return self.area.contains_xy(x, y)

    def base_grid(self) -> GridSpec:
        """The aligned grid of Definition 6: cells of exactly the query size.

        The grid origin is anchored at the preferred area's bottom-left
        corner when an area is given, and at the coordinate origin otherwise.
        """
        if self.area is not None:
            return GridSpec(
                cell_width=self.rect_width,
                cell_height=self.rect_height,
                origin_x=self.area.min_x,
                origin_y=self.area.min_y,
            )
        return GridSpec(cell_width=self.rect_width, cell_height=self.rect_height)

    def with_(self, **changes) -> "SurgeQuery":
        """A copy of the query with the given fields replaced."""
        fields = {
            "rect_width": self.rect_width,
            "rect_height": self.rect_height,
            "window_length": self.window_length,
            "alpha": self.alpha,
            "area": self.area,
            "past_window_length": self.past_window_length,
            "k": self.k,
        }
        fields.update(changes)
        return SurgeQuery(**fields)
