"""GAP-SURGE: the grid-based approximate detector (Algorithm 3).

A grid of cells of exactly the query size is imposed over the space; every
cell is a candidate region.  Each arriving / ageing / expiring spatial object
updates the ``(fc, fp)`` accumulator of the single cell containing its
location, and the cell with the maximum burst score is continuously reported.

The returned region is always a grid cell, so its burst score is at least
``(1 - α) / 4`` of the optimum (Theorem 3), and processing an event costs
``O(log n)`` — the heap update.

The same class also serves the top-k extension GAP-kSURGE (Algorithm 6): the
cell heap directly yields the k cells with the highest burst scores.
"""

from __future__ import annotations

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.burst import WindowAccumulator
from repro.core.query import SurgeQuery
from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.streams.objects import EventKind, WindowEvent


class GapSurge(BurstyRegionDetector):
    """Grid-based approximate detector (paper's ``GAPS``)."""

    name = "gaps"
    exact = False

    def __init__(self, query: SurgeQuery, grid: GridSpec | None = None) -> None:
        super().__init__(query)
        self.grid = grid if grid is not None else query.base_grid()
        self.cells: dict[CellIndex, WindowAccumulator] = {}
        self._score_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()

    # ------------------------------------------------------------------
    # Event processing (Algorithm 3)
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return

        key = self.grid.cell_of(obj.x, obj.y)
        accumulator = self.cells.get(key)
        if accumulator is None:
            if event.kind is not EventKind.NEW:
                # GROWN / EXPIRED for an object never seen as NEW (e.g. the
                # detector was attached mid-stream): nothing to undo.
                return
            accumulator = WindowAccumulator()
            self.cells[key] = accumulator

        if event.kind is EventKind.NEW:
            accumulator.apply_new(obj.weight, self.query.current_length)
        elif event.kind is EventKind.GROWN:
            accumulator.apply_grown(
                obj.weight, self.query.current_length, self.query.past_length
            )
        else:
            accumulator.apply_expired(obj.weight, self.query.past_length)

        if accumulator.is_empty:
            del self.cells[key]
            self._score_heap.remove(key)
        else:
            self._score_heap.push(key, accumulator.score(self.query.alpha))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        top = self._score_heap.peek()
        if top is None:
            return None
        key, score = top
        return self._cell_result(key, score)

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        """The k cells with the highest burst scores (GAP-kSURGE)."""
        if k is None:
            k = self.query.k
        return [self._cell_result(key, score) for key, score in self._score_heap.top_n(k)]

    def _cell_result(self, key: CellIndex, score: float) -> RegionResult:
        accumulator = self.cells[key]
        return RegionResult.from_region(
            self.grid.cell_rect(key),
            score,
            fc=accumulator.fc,
            fp=accumulator.fp,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_cell_count(self) -> int:
        """Number of non-empty cells currently materialised."""
        return len(self.cells)
