"""The asyncio network front end for :class:`~repro.service.SurgeService`.

One :class:`SurgeServer` owns:

* a TCP listener speaking the length-prefixed JSON frame protocol
  (:mod:`repro.server.protocol`) — ingest batches, registry changes,
  subscriptions, stats;
* an optional HTTP listener serving ``GET /metrics`` in Prometheus text
  format (:mod:`repro.server.metrics`) and ``GET /healthz``;
* a :class:`~repro.server.engine.ServerEngine` worker thread that owns
  the service — every operation from every connection funnels through it.

Overload semantics on the wire (the PR 7 tier, surfaced):

* an :class:`~repro.service.overload.OverloadError` — from the engine's
  admission bound, the service's ``error`` policy, or a blocking
  subscription's timeout — becomes a typed ``503 overloaded`` reply with
  the observed depth and retry advice; the connection stays open;
* degraded-mode entry/exit is pushed to every subscribed connection as a
  ``control`` frame;
* SIGINT/SIGTERM (or a ``drain`` admin frame) triggers a graceful drain:
  stop accepting connections, settle every already-accepted command,
  take the final checkpoint (durability attached) or flush (not), notify
  subscribers with a ``draining`` control frame, close, exit 0.

Subscribed connections get a dedicated *pump thread*: it blocks on the
bounded :class:`~repro.service.bus.Subscription` (so a slow TCP peer
fills the subscription and the chosen ``block``/``drop_oldest``/``evict``
policy engages on the engine's publish path, exactly as in-process) and
forwards each update to the event loop for writing.
"""

from __future__ import annotations

import asyncio
import errno
import itertools
import logging
import signal
import threading
from time import perf_counter
from typing import Any

from repro.server import protocol
from repro.server.engine import EngineDrainingError, ServerEngine, subscription_options
from repro.server.metrics import render_prometheus
from repro.server.protocol import (
    ProtocolError,
    decode_frame_body,
    decode_frame_length,
    decode_object,
    encode_frame,
    encode_update,
    error_frame,
    overloaded_frame,
)
from repro.service.bus import Subscription
from repro.service.overload import OverloadError
from repro.service.service import SurgeService
from repro.service.spec import QuerySpec

logger = logging.getLogger(__name__)

#: Advice string attached to 503 replies caused by queue pressure.
BACKPRESSURE_ADVICE = (
    "slow down, drain subscribers, and retry after a backoff"
)
DRAINING_ADVICE = "server is draining; reconnect to the resumed instance"


class EndpointInUseError(OSError):
    """A listener's endpoint is already bound by another process.

    The common operational trip-wire: ``repro serve --resume`` re-serves
    the endpoint recorded in the manifest, and the previous instance (or
    an unrelated process) is still holding it.  Typed so the CLI can turn
    it into advice naming the ``--listen`` override instead of a raw
    ``OSError: [Errno 98]`` traceback.
    """

    def __init__(self, host: str, port: int, kind: str = "listener") -> None:
        super().__init__(
            errno.EADDRINUSE,
            f"{kind} endpoint {host}:{port} is already in use",
        )
        self.host = host
        self.port = port
        self.kind = kind


def _endpoint_in_use(exc: OSError) -> bool:
    return exc.errno == errno.EADDRINUSE


class _Connection:
    """Per-connection state: serialised writes, one optional subscription."""

    _ids = itertools.count(1)

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.id = next(self._ids)
        self.reader = reader
        self.writer = writer
        self.closed = False
        self.subscription: Subscription | None = None
        self._write_lock = asyncio.Lock()

    async def send(self, frame: dict[str, Any], server: "SurgeServer") -> None:
        data = encode_frame(frame)
        async with self._write_lock:
            if self.closed:
                raise ConnectionResetError("connection already closed")
            self.writer.write(data)
            await self.writer.drain()
        server.frames_out += 1


class SurgeServer:
    """Serve a :class:`SurgeService` over TCP (+ optional HTTP metrics)."""

    def __init__(
        self,
        service: SurgeService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_host: str | None = None,
        metrics_port: int | None = None,
        chunk_size: int = 512,
        max_queued_batches: int = 256,
    ) -> None:
        self._service = service
        self.host = host
        self.port = port
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self.chunk_size = chunk_size
        self.max_queued_batches = max_queued_batches
        self._engine: ServerEngine | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._connections: set[_Connection] = set()
        self._tasks: set[asyncio.Task] = set()
        self._pumps: list[threading.Thread] = []
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._drain_requested = False
        self.drain_summary: dict[str, Any] | None = None
        self.connections_total = 0
        self.frames_in = 0
        self.frames_out = 0

    @property
    def engine(self) -> ServerEngine:
        if self._engine is None:
            raise RuntimeError("server is not running")
        return self._engine

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run_forever(self, *, install_signals: bool = True) -> dict[str, Any]:
        """Serve on the calling thread until drained; returns the summary."""
        asyncio.run(self._main(install_signals=install_signals))
        return self.drain_summary or {}

    def start_background(self) -> "SurgeServer":
        """Serve on a daemon thread; returns once the listeners are bound."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, args=(ready,), name="surge-server", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            if isinstance(self._startup_error, EndpointInUseError):
                # Keep the typed refusal typed: the CLI maps it to advice
                # naming the --listen override.
                raise self._startup_error
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _thread_main(self, ready: threading.Event) -> None:
        try:
            asyncio.run(self._main(ready=ready, install_signals=False))
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
        finally:
            ready.set()

    def request_drain(self) -> None:
        """Begin a graceful drain (thread- and signal-safe, idempotent)."""
        self._drain_requested = True
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    def drain(self, timeout: float = 120.0) -> dict[str, Any]:
        """Drain a background server and join its thread."""
        self.request_drain()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("server did not drain within the timeout")
        return self.drain_summary or {}

    async def _main(
        self,
        *,
        ready: threading.Event | None = None,
        install_signals: bool = False,
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._engine = ServerEngine(
            self._service,
            chunk_size=self.chunk_size,
            max_queued_batches=self.max_queued_batches,
            on_control=self._on_control_event,
        )
        try:
            server = await asyncio.start_server(
                self._handle_conn, self.host, self.port
            )
        except OSError as exc:
            if _endpoint_in_use(exc):
                raise EndpointInUseError(self.host, self.port) from exc
            raise
        self.port = server.sockets[0].getsockname()[1]
        metrics_server = None
        if self.metrics_port is not None:
            try:
                metrics_server = await asyncio.start_server(
                    self._handle_http,
                    self.metrics_host or self.host,
                    self.metrics_port,
                )
            except OSError as exc:
                server.close()
                if _endpoint_in_use(exc):
                    raise EndpointInUseError(
                        self.metrics_host or self.host,
                        self.metrics_port,
                        kind="metrics",
                    ) from exc
                raise
            self.metrics_port = metrics_server.sockets[0].getsockname()[1]
        # Record the listener in the service so checkpoints carry it and a
        # --resume can re-serve the same endpoint (manifest "server" field).
        self._service.server_info = {
            "host": self.host,
            "port": self.port,
            "metrics_host": self.metrics_host or self.host,
            "metrics_port": self.metrics_port,
            "chunk_size": self.chunk_size,
        }
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(signum, self.request_drain)
        if ready is not None:
            ready.set()
        if self._drain_requested:
            self._stop_event.set()
        try:
            await self._stop_event.wait()
        finally:
            # 1. Stop accepting new connections.
            server.close()
            await server.wait_closed()
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            # 2. Tell subscribers we are going away (best effort).
            await self._broadcast(
                {"type": "control", "event": "draining"}, subscribers_only=True
            )
            # 3. Settle every accepted command, then checkpoint/flush.
            summary = await asyncio.wrap_future(self._engine.request_drain())
            self.drain_summary = summary
            # 4. Close every connection; pump threads notice their closed
            #    subscriptions and exit once the buffered tail is delivered.
            for conn in list(self._connections):
                conn.closed = True
                try:
                    conn.writer.close()
                except Exception:
                    pass
            # Let the handler coroutines observe their closed transports
            # and finish cleanly — leaving them to be cancelled at loop
            # teardown makes asyncio log spurious CancelledErrors.
            pending = [task for task in self._tasks if not task.done()]
            if pending:
                await asyncio.wait(pending, timeout=10)
            for pump in self._pumps:
                pump.join(timeout=10)
            if install_signals:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    self._loop.remove_signal_handler(signum)

    # ------------------------------------------------------------------
    # Frame protocol
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self.connections_total += 1
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            while not conn.closed:
                prefix = await reader.readexactly(protocol.LENGTH_STRUCT.size)
                length = decode_frame_length(prefix)
                body = await reader.readexactly(length)
                self.frames_in += 1
                try:
                    payload = decode_frame_body(body)
                except ProtocolError as exc:
                    await conn.send(error_frame(400, str(exc)), self)
                    continue
                await self._dispatch(conn, payload)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        except ProtocolError as exc:
            # A bad length prefix means the byte stream is desynchronised:
            # reply once (best effort) and hang up.
            try:
                await conn.send(error_frame(400, str(exc)), self)
            except Exception:
                pass
        finally:
            conn.closed = True
            self._connections.discard(conn)
            if conn.subscription is not None and self._engine is not None:
                # Detach through the engine so publish never races a close.
                self._engine.submit("unsubscribe", conn.subscription)
            try:
                writer.close()
            except Exception:
                pass

    async def _call(self, kind: str, payload: Any = None) -> Any:
        return await asyncio.wrap_future(self.engine.submit(kind, payload))

    def _error_reply(self, exc: BaseException) -> dict[str, Any]:
        if isinstance(exc, OverloadError):
            return overloaded_frame(
                str(exc),
                depth_chunks=exc.depth_chunks,
                advice=BACKPRESSURE_ADVICE,
            )
        if isinstance(exc, EngineDrainingError):
            return error_frame(
                503, str(exc), advice=DRAINING_ADVICE, draining=True
            )
        if isinstance(exc, KeyError):
            message = exc.args[0] if exc.args else str(exc)
            return error_frame(404, str(message))
        if isinstance(exc, ValueError):
            code = 409 if "already registered" in str(exc) else 400
            return error_frame(code, str(exc))
        logger.exception(
            "unexpected error handling a frame",
            exc_info=exc,
            extra={"error_type": type(exc).__name__},
        )
        return error_frame(500, f"internal error: {exc}")

    async def _dispatch(self, conn: _Connection, payload: dict[str, Any]) -> None:
        kind = payload.get("type")
        try:
            if kind == "ingest":
                records = payload.get("objects")
                if not isinstance(records, list):
                    raise ValueError('ingest frame needs an "objects" list')
                objects = [decode_object(record) for record in records]
                reply = await self._call("ingest", objects)
                reply["type"] = "ack"
                await conn.send(reply, self)
            elif kind == "register":
                record = payload.get("spec")
                if not isinstance(record, dict):
                    raise ValueError('register frame needs a "spec" object')
                try:
                    spec = QuerySpec.from_dict(record)
                except ValueError:
                    raise
                except Exception as exc:
                    raise ValueError(f"malformed query spec: {exc}") from exc
                reply = await self._call("register", spec)
                reply["type"] = "ack"
                await conn.send(reply, self)
            elif kind == "unregister":
                query_id = payload.get("query_id")
                if not isinstance(query_id, str):
                    raise ValueError('unregister frame needs a "query_id" string')
                reply = await self._call("unregister", query_id)
                reply["type"] = "ack"
                await conn.send(reply, self)
            elif kind == "subscribe":
                if conn.subscription is not None:
                    await conn.send(
                        error_frame(409, "connection already has a subscription"),
                        self,
                    )
                    return
                options = subscription_options(payload)
                if options["name"] is None:
                    options["name"] = f"conn-{conn.id}"
                subscription = await self._call("subscribe", options)
                conn.subscription = subscription
                pump = threading.Thread(
                    target=self._pump,
                    args=(conn, subscription),
                    name=f"surge-pump-{conn.id}",
                    daemon=True,
                )
                self._pumps.append(pump)
                pump.start()
                await conn.send(
                    {
                        "type": "ack",
                        "subscription": options["name"],
                        "policy": subscription.policy,
                        "maxsize": subscription.maxsize,
                    },
                    self,
                )
            elif kind == "stats":
                snapshot = await self._stats_snapshot()
                await conn.send({"type": "stats", "stats": snapshot}, self)
            elif kind == "results":
                results = await self._call("results")
                await conn.send({"type": "results", "results": results}, self)
            elif kind == "flush":
                reply = await self._call("flush")
                reply["type"] = "ack"
                await conn.send(reply, self)
            elif kind == "checkpoint":
                path = await self._call("checkpoint")
                await conn.send({"type": "ack", "checkpoint": path}, self)
            elif kind == "ping":
                await conn.send({"type": "ack", "pong": True}, self)
            elif kind == "drain":
                self.request_drain()
                await conn.send({"type": "ack", "draining": True}, self)
            else:
                await conn.send(
                    error_frame(400, f"unknown frame type {kind!r}"), self
                )
        except (ConnectionResetError, BrokenPipeError):
            raise
        except BaseException as exc:  # noqa: BLE001 - typed reply, never a drop
            await conn.send(self._error_reply(exc), self)

    # ------------------------------------------------------------------
    # Subscription pump (one thread per subscribed connection)
    # ------------------------------------------------------------------
    def _pump(self, conn: _Connection, subscription: Subscription) -> None:
        loop = self._loop
        assert loop is not None
        tracer = self._service.tracer
        while True:
            update = subscription.get(timeout=0.25)
            if update is None:
                if conn.closed or (
                    subscription.closed and subscription.depth == 0
                ):
                    return
                continue
            traced = tracer is not None and tracer.enabled
            pump_started = perf_counter() if traced else 0.0
            frame = encode_update(update)
            try:
                future = asyncio.run_coroutine_threadsafe(
                    conn.send(frame, self), loop
                )
                # Wait for the write: a slow peer must fill the bounded
                # subscription (engaging its policy), not an unbounded
                # asyncio write buffer.
                future.result()
            except Exception:
                return
            if traced:
                tracer.record(
                    "server.pump",
                    pump_started,
                    perf_counter(),
                    lane="server",
                )

    def _on_control_event(self, event: dict[str, Any]) -> None:
        # Engine worker thread: hand the broadcast to the event loop and
        # return immediately (publishing must not wait on slow sockets).
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._broadcast(event, subscribers_only=True), loop
            )
        except RuntimeError:  # pragma: no cover - loop shutting down
            pass

    async def _broadcast(
        self, frame: dict[str, Any], *, subscribers_only: bool
    ) -> None:
        for conn in list(self._connections):
            if subscribers_only and conn.subscription is None:
                continue
            try:
                await conn.send(frame, self)
            except Exception:
                continue

    # ------------------------------------------------------------------
    # Stats + metrics
    # ------------------------------------------------------------------
    async def _stats_snapshot(self) -> dict[str, Any]:
        snapshot = await self._call("stats")
        snapshot["server"] = {
            "connections": len(self._connections),
            "subscribers": sum(
                1 for conn in self._connections if conn.subscription is not None
            ),
            "connections_total": self.connections_total,
            "frames_in_total": self.frames_in,
            "frames_out_total": self.frames_out,
            "ingest_rejected_total": self.engine.ingest_rejected,
            "listen": f"{self.host}:{self.port}",
        }
        return snapshot

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, content_type, body = 500, "text/plain; charset=utf-8", b"error\n"
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10)
            parts = request_line.decode("latin-1", "replace").split()
            while True:  # drain request headers
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                if line in (b"\r\n", b"\n", b""):
                    break
            method = parts[0] if parts else ""
            path = (parts[1] if len(parts) > 1 else "").split("?", 1)[0]
            if method != "GET":
                status, body = 405, b"method not allowed\n"
            elif path == "/metrics":
                try:
                    snapshot = await self._stats_snapshot()
                except EngineDrainingError:
                    status, body = 503, b"draining\n"
                else:
                    status = 200
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                    body = render_prometheus(snapshot).encode("utf-8")
            elif path == "/healthz":
                status, body = 200, b"ok\n"
            else:
                status, body = 404, b"not found\n"
        except (asyncio.TimeoutError, ConnectionResetError):
            return
        finally:
            reasons = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                       503: "Service Unavailable", 500: "Internal Server Error"}
            head = (
                f"HTTP/1.0 {status} {reasons.get(status, 'Error')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            try:
                writer.write(head + body)
                await writer.drain()
                writer.close()
            except Exception:
                pass


__all__ = [
    "SurgeServer",
    "BACKPRESSURE_ADVICE",
    "DRAINING_ADVICE",
    "EndpointInUseError",
]
