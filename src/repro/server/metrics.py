"""Prometheus text-format rendering of the service's stats surfaces.

:func:`render_prometheus` turns the engine's stats snapshot (see
:meth:`repro.server.engine.ServerEngine._snapshot_stats`) into the
Prometheus text exposition format, version ``0.0.4``: one ``# HELP`` and
``# TYPE`` line per metric family, then one sample per line, labels
escaped per the spec.  Families:

* ``repro_service_*`` — the aggregate :class:`~repro.service.bus.
  ServiceStats` counters (objects, chunks, object–query pairs, wall time);
* ``repro_ingest_*`` — the disorder-tolerant tier's
  :class:`~repro.streams.watermark.IngestStats` counters;
* ``repro_overload_*`` — the overload tier's :class:`~repro.service.
  overload.OverloadStats` (including the ``repro_overload_degraded``
  gauge and current queue depth);
* ``repro_query_*`` — per-query series labelled ``{query="..."}``:
  routed objects, busy seconds, chunk counts, and the result-lag
  gauges (``last``/``max``);
* ``repro_subscription_*`` — per-subscription conservation counters
  labelled ``{subscription="...",policy="..."}``;
* ``repro_server_*`` — the front end's own counters (connections,
  subscribers, refused ingest batches);
* ``repro_stage_seconds`` — per-stage latency histograms from the tracing
  tier's flight recorder (see :mod:`repro.obs`), one series set per stage
  label with the log-bucketed bounds of
  :data:`repro.obs.tracer.HISTOGRAM_BOUNDS`; rendered only when the
  snapshot carries a ``stages`` section (i.e. a tracer is attached).

Everything renders from one immutable snapshot taken inside the engine
thread, so a scrape never observes a torn update.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.tracer import HISTOGRAM_BOUNDS

#: (metric suffix, snapshot key) pairs of the service-level counters.
_SERVICE_COUNTERS = (
    ("objects_pushed_total", "objects_pushed"),
    ("chunks_pushed_total", "chunks_pushed"),
    ("object_query_pairs_total", "object_query_pairs"),
)

_INGEST_COUNTERS = (
    "reordered",
    "late_dropped",
    "duplicates_seen",
    "quarantined",
    "subscriber_errors",
    "spill_errors",
    "force_released",
)

_OVERLOAD_COUNTERS = (
    "entered_degraded",
    "exited_degraded",
    "chunks_shed",
    "updates_shed",
    "checkpoints_deferred",
    "compactions",
    "queries_compacted",
)

_QUERY_COUNTERS = (
    ("objects_routed_total", "objects_routed"),
    ("chunks_processed_total", "chunks_processed"),
    ("dropped_results_total", "dropped_results"),
    ("chunks_shed_total", "chunks_shed"),
)

_SUBSCRIPTION_COUNTERS = ("offered", "delivered", "dropped")

#: Counters of the distributed shard tier (see repro.distributed.stats);
#: rendered only when the snapshot carries a ``distributed`` section
#: (i.e. the service runs the remote executor).
_REMOTE_COUNTERS = (
    "rpc_retries",
    "rpc_timeouts",
    "workers_lost",
    "workers_joined",
    "shards_failed_over",
    "shards_migrated",
    "heartbeats_sent",
    "heartbeat_misses",
    "replies_discarded",
)

_REMOTE_GAUGES = (
    ("workers_alive", "Workers currently connected and considered live."),
    ("workers_total", "Workers admitted over the coordinator's lifetime."),
    ("ledger_depth", "Mutating messages in the failover replay ledger."),
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(
    name: str, value: Any, labels: dict[str, str] | None = None
) -> str:
    if labels:
        body = ",".join(
            f'{key}="{escape_label_value(str(val))}"'
            for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _family(
    name: str, kind: str, help_text: str, samples: Iterable[str]
) -> list[str]:
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]
    lines.extend(samples)
    return lines


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render one stats snapshot as Prometheus exposition text."""
    lines: list[str] = []
    service = snapshot.get("service", {})
    for suffix, key in _SERVICE_COUNTERS:
        name = f"repro_service_{suffix}"
        lines += _family(
            name,
            "counter",
            f"Service counter {key}.",
            [_sample(name, service.get(key, 0))],
        )
    name = "repro_service_wall_seconds_total"
    lines += _family(
        name,
        "counter",
        "Wall-clock seconds spent dispatching chunks.",
        [_sample(name, service.get("wall_seconds", 0.0))],
    )

    ingest = snapshot.get("ingest", {})
    for key in _INGEST_COUNTERS:
        name = f"repro_ingest_{key}_total"
        lines += _family(
            name,
            "counter",
            f"Disorder-tolerant ingestion counter {key}.",
            [_sample(name, ingest.get(key, 0))],
        )
    name = "repro_ingest_peak_buffered"
    lines += _family(
        name,
        "gauge",
        "Peak objects buffered ahead of the shards (reorder heap + pending).",
        [_sample(name, ingest.get("peak_buffered", 0))],
    )

    overload = snapshot.get("overload", {})
    for key in _OVERLOAD_COUNTERS:
        name = f"repro_overload_{key}_total"
        lines += _family(
            name,
            "counter",
            f"Overload tier counter {key}.",
            [_sample(name, overload.get(key, 0))],
        )
    name = "repro_overload_degraded"
    lines += _family(
        name,
        "gauge",
        "Whether the service is currently in degraded mode (0/1).",
        [_sample(name, snapshot.get("degraded", False))],
    )
    name = "repro_overload_max_depth_chunks"
    lines += _family(
        name,
        "gauge",
        "Deepest queue depth ever observed, in chunks.",
        [_sample(name, overload.get("max_depth_chunks", 0.0))],
    )
    name = "repro_overload_queue_depth_chunks"
    lines += _family(
        name,
        "gauge",
        "Current observed queue depth, in chunks.",
        [_sample(name, snapshot.get("queue_depth_chunks", 0.0))],
    )

    queries = snapshot.get("queries", {})
    for suffix, key in _QUERY_COUNTERS:
        name = f"repro_query_{suffix}"
        lines += _family(
            name,
            "counter",
            f"Per-query counter {key}.",
            [
                _sample(name, stats.get(key, 0), {"query": query_id})
                for query_id, stats in queries.items()
            ],
        )
    name = "repro_query_busy_seconds_total"
    lines += _family(
        name,
        "counter",
        "Seconds each query's pipeline spent routing and detecting.",
        [
            _sample(name, stats.get("busy_seconds", 0.0), {"query": query_id})
            for query_id, stats in queries.items()
        ],
    )
    for suffix, key in (
        ("last_lag_seconds", "last_lag_seconds"),
        ("max_lag_seconds", "max_lag_seconds"),
    ):
        name = f"repro_query_{suffix}"
        lines += _family(
            name,
            "gauge",
            f"Per-query result lag ({key}): wall time from chunk submission "
            f"to the update surfacing.",
            [
                _sample(name, stats.get(key, 0.0), {"query": query_id})
                for query_id, stats in queries.items()
            ],
        )

    subscriptions = snapshot.get("subscriptions", [])
    for key in _SUBSCRIPTION_COUNTERS:
        name = f"repro_subscription_{key}_total"
        lines += _family(
            name,
            "counter",
            f"Per-subscription counter {key} "
            f"(offered == delivered + dropped + depth).",
            [
                _sample(
                    name,
                    record.get(key, 0),
                    {
                        "subscription": record.get("name") or f"sub{index}",
                        "policy": record.get("policy", ""),
                    },
                )
                for index, record in enumerate(subscriptions)
            ],
        )
    name = "repro_subscription_depth"
    lines += _family(
        name,
        "gauge",
        "Updates currently buffered per subscription.",
        [
            _sample(
                name,
                record.get("depth", 0),
                {
                    "subscription": record.get("name") or f"sub{index}",
                    "policy": record.get("policy", ""),
                },
            )
            for index, record in enumerate(subscriptions)
        ],
    )

    server = snapshot.get("server", {})
    for key, kind, help_text in (
        ("connections", "gauge", "Open frame-protocol connections."),
        ("subscribers", "gauge", "Connections in subscribe mode."),
        ("connections_total", "counter", "Connections ever accepted."),
        ("frames_in_total", "counter", "Request frames received."),
        ("frames_out_total", "counter", "Frames sent to clients."),
        (
            "ingest_rejected_total",
            "counter",
            "Ingest batches refused with a 503 overloaded reply.",
        ),
    ):
        name = f"repro_server_{key}"
        lines += _family(
            name, kind, help_text, [_sample(name, server.get(key, 0))]
        )
    name = "repro_server_queued_ingest_batches"
    lines += _family(
        name,
        "gauge",
        "Ingest batches queued ahead of the engine worker.",
        [_sample(name, snapshot.get("queued_ingest_batches", 0))],
    )

    name = "repro_checkpoint_prune_errors_total"
    lines += _family(
        name,
        "counter",
        "Checkpoint prune deletes that failed (stale generations left on disk).",
        [_sample(name, snapshot.get("checkpoint_prune_errors", 0))],
    )

    distributed = snapshot.get("distributed")
    if distributed:
        for key in _REMOTE_COUNTERS:
            name = f"repro_remote_{key}_total"
            lines += _family(
                name,
                "counter",
                f"Distributed shard tier counter {key}.",
                [_sample(name, distributed.get(key, 0))],
            )
        name = "repro_remote_failover_seconds_total"
        lines += _family(
            name,
            "counter",
            "Wall-clock seconds spent failing shards over "
            "(restore + ledger replay).",
            [_sample(name, distributed.get("failover_seconds", 0.0))],
        )
        for key, help_text in _REMOTE_GAUGES:
            name = f"repro_remote_{key}"
            lines += _family(
                name, "gauge", help_text, [_sample(name, distributed.get(key, 0))]
            )

    stages = snapshot.get("stages") or {}
    if stages:
        lines += _family(
            "repro_stage_seconds",
            "histogram",
            "Pipeline stage latency from the tracing flight recorder.",
            _stage_histogram_samples(stages),
        )
    return "\n".join(lines) + "\n"


def _stage_histogram_samples(stages: dict[str, Any]) -> list[str]:
    """Histogram sample lines for every traced stage, cumulative per spec.

    The recorder stores *non-cumulative* log-spaced buckets (one slot per
    bound of :data:`~repro.obs.tracer.HISTOGRAM_BOUNDS` plus the overflow);
    the exposition format wants cumulative ``le`` buckets ending at
    ``+Inf`` with ``_sum``/``_count`` conservation, so the re-accumulation
    happens here at render time.
    """
    samples: list[str] = []
    for stage in sorted(stages):
        record = stages[stage]
        buckets = list(record.get("buckets", ()))
        count = int(record.get("count", 0))
        cumulative = 0
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            cumulative += buckets[index] if index < len(buckets) else 0
            samples.append(
                _sample(
                    "repro_stage_seconds_bucket",
                    cumulative,
                    {"stage": stage, "le": repr(float(bound))},
                )
            )
        samples.append(
            _sample(
                "repro_stage_seconds_bucket",
                count,
                {"stage": stage, "le": "+Inf"},
            )
        )
        samples.append(
            _sample(
                "repro_stage_seconds_sum",
                float(record.get("total_seconds", 0.0)),
                {"stage": stage},
            )
        )
        samples.append(
            _sample("repro_stage_seconds_count", count, {"stage": stage})
        )
    return samples


__all__ = ["render_prometheus", "escape_label_value"]
