"""Command engine: one worker thread owning the service, many front ends.

:class:`SurgeService` is single-threaded by contract — every mutation
(ingest, registry change, checkpoint, flush) must come from one thread.
The asyncio front end (:mod:`repro.server.server`) is inherently
concurrent, so the engine funnels *every* operation through a FIFO command
queue drained by a single worker thread that owns the service.  Callers
get a :class:`concurrent.futures.Future` back; the asyncio side awaits it
via :func:`asyncio.wrap_future`, blocking pump threads wait on it
directly.

Overload maps onto the queue in two layers:

* **admission** — ingest submissions beyond ``max_queued_batches`` are
  refused *at submit time* with a typed
  :class:`~repro.service.overload.OverloadError` (the wire turns it into
  a ``503`` reply, never a dropped connection);
* **service** — an ``OverloadError`` raised inside the service (error
  policy, or a blocking subscription's ``block_timeout``) propagates
  through the command's future and maps to the same ``503``.

Degraded-mode transitions are detected after every command (the worker
compares ``service.degraded`` against the last observed value) and pushed
through the ``on_control`` callback — the server broadcasts them to
subscribers as ``control`` frames.

Draining (SIGTERM/SIGINT or the ``drain`` admin frame) is FIFO-exact:
commands accepted before the drain request are settled, later submissions
are refused with :class:`EngineDrainingError`, and the drain step itself
takes the final checkpoint (when durability is attached) *without*
flushing the reorder buffer — the checkpoint persists the held-back
arrivals, so a ``--resume`` continues bit-identically to an uninterrupted
run.  Without durability the buffer is flushed instead, so accepted data
is reflected in the final results rather than silently lost.
"""

from __future__ import annotations

import logging
import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable

from repro.server import protocol
from repro.service.bus import Subscription
from repro.service.overload import OverloadError
from repro.service.service import SurgeService
from repro.service.spec import QuerySpec
from repro.state.recovery import encode_stream_time

logger = logging.getLogger(__name__)

_STOP = object()


class EngineDrainingError(RuntimeError):
    """The engine is draining and no longer accepts commands."""


class ServerEngine:
    """Serialise service operations behind a bounded command queue."""

    def __init__(
        self,
        service: SurgeService,
        *,
        chunk_size: int = 512,
        max_queued_batches: int = 256,
        on_control: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if max_queued_batches < 1:
            raise ValueError(
                f"max_queued_batches must be >= 1, got {max_queued_batches}"
            )
        self._service = service
        self.chunk_size = chunk_size
        self.max_queued_batches = max_queued_batches
        self.on_control = on_control
        self._commands: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._queued_ingest = 0
        self._draining = False
        self._drain_future: Future | None = None
        self._degraded_seen = service.degraded
        self.ingest_rejected = 0
        self._worker = threading.Thread(
            target=self._run, name="surge-engine", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission (any thread)
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload: Any = None) -> Future:
        """Enqueue one command; the returned future carries its result."""
        future: Future = Future()
        with self._lock:
            if self._draining:
                future.set_exception(
                    EngineDrainingError(
                        "server is draining and no longer accepts commands"
                    )
                )
                return future
            if kind == "ingest":
                if self._queued_ingest >= self.max_queued_batches:
                    self.ingest_rejected += 1
                    future.set_exception(
                        OverloadError(
                            f"ingest queue full: {self._queued_ingest} "
                            f"batches already queued "
                            f"(max_queued_batches={self.max_queued_batches})",
                            depth_chunks=float(self._queued_ingest),
                        )
                    )
                    return future
                self._queued_ingest += 1
            self._commands.put((kind, payload, future))
        return future

    def request_drain(self) -> Future:
        """Begin draining (idempotent): settle the queue, then finalise.

        Returns the future of the drain step itself — it resolves (with a
        summary dict) once every previously-accepted command has settled
        and the final checkpoint/flush is done.
        """
        with self._lock:
            if self._drain_future is not None:
                return self._drain_future
            self._draining = True
            self._drain_future = Future()
            self._commands.put(("_drain", None, self._drain_future))
            self._commands.put(_STOP)
        return self._drain_future

    @property
    def draining(self) -> bool:
        return self._draining

    def stop(self) -> None:
        """Hard stop (tests): end the worker without the drain step."""
        with self._lock:
            if not self._draining:
                self._draining = True
                self._commands.put(_STOP)
        self._worker.join(timeout=30)

    def join(self, timeout: float | None = None) -> None:
        self._worker.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Worker thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            command = self._commands.get()
            if command is _STOP:
                break
            kind, payload, future = command
            if kind == "ingest":
                with self._lock:
                    self._queued_ingest -= 1
            try:
                result = self._execute(kind, payload)
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                if not future.set_running_or_notify_cancel():
                    continue
                future.set_exception(exc)
            else:
                if future.set_running_or_notify_cancel():
                    future.set_result(result)
            self._observe_degraded()
            if kind == "_drain":
                break
        # Fail whatever slipped in behind the stop/drain marker instead of
        # leaving its submitters waiting forever.
        while True:
            try:
                command = self._commands.get_nowait()
            except queue.Empty:
                break
            if command is _STOP:
                continue
            _, _, future = command
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    EngineDrainingError("server drained before this command ran")
                )

    def _observe_degraded(self) -> None:
        degraded = self._service.degraded
        if degraded == self._degraded_seen:
            return
        self._degraded_seen = degraded
        stats = self._service.overload_stats()
        event = {
            "type": "control",
            "event": "degraded_entered" if degraded else "degraded_exited",
            "depth_chunks": self._service.queue_depth_chunks(),
            "shedding": list(stats.shedding),
        }
        logger.info(
            "service %s degraded mode at depth %.2f chunks",
            "entered" if degraded else "exited",
            event["depth_chunks"],
            extra={
                "degraded": degraded,
                "depth_chunks": event["depth_chunks"],
                "shedding": event["shedding"],
            },
        )
        if self.on_control is None:
            return
        try:
            self.on_control(event)
        except Exception:  # pragma: no cover - defensive isolation
            logger.exception("control-event callback failed (isolated)")

    def _execute(self, kind: str, payload: Any) -> Any:
        service = self._service
        if kind == "ingest":
            chunks = 0
            updates = 0
            for chunk_updates in service.feed(payload, self.chunk_size):
                chunks += 1
                updates += len(chunk_updates)
            return {
                "accepted": len(payload),
                "chunks_dispatched": chunks,
                "updates": updates,
                "chunk_offset": service.chunk_offset,
                "chunk_index": service.chunk_index,
            }
        if kind == "register":
            spec = payload
            if not isinstance(spec, QuerySpec):
                spec = QuerySpec.from_dict(spec)
            service.add_query(spec)
            return {"query_id": spec.query_id, "queries": len(service.query_ids)}
        if kind == "unregister":
            service.remove_query(payload)
            return {"query_id": payload, "queries": len(service.query_ids)}
        if kind == "subscribe":
            options = dict(payload)
            return service.bus.open_subscription(
                maxsize=options.get("maxsize", 64),
                policy=options.get("policy", "drop_oldest"),
                block_timeout=options.get("block_timeout"),
                name=options.get("name"),
                query_ids=options.get("query_ids"),
            )
        if kind == "unsubscribe":
            service.bus.unsubscribe(payload)
            return None
        if kind == "flush":
            chunks = 0
            for _ in service.flush_pending(self.chunk_size):
                chunks += 1
            return {
                "chunks_dispatched": chunks,
                "chunk_offset": service.chunk_offset,
                "chunk_index": service.chunk_index,
            }
        if kind == "results":
            return {
                query_id: protocol.encode_result(result)
                for query_id, result in service.results().items()
            }
        if kind == "stats":
            return self._snapshot_stats()
        if kind == "checkpoint":
            return str(service.checkpoint())
        if kind == "_drain":
            return self._finalise()
        raise ValueError(f"unknown engine command {kind!r}")

    def _finalise(self) -> dict[str, Any]:
        service = self._service
        flushed = 0
        checkpoint: str | None = None
        if service.checkpoint_dir is not None:
            # Do NOT flush: the held-back reorder buffer and the pending
            # remainder are checkpoint state, and persisting them (instead
            # of force-dispatching) is what makes a resume bit-identical
            # to the uninterrupted run.
            checkpoint = str(service.checkpoint())
        else:
            for _ in service.flush_pending(self.chunk_size):
                flushed += 1
        for subscription in service.bus.subscriptions():
            subscription.close()
        return {
            "chunks_flushed": flushed,
            "checkpoint": checkpoint,
            "chunk_offset": service.chunk_offset,
        }

    # ------------------------------------------------------------------
    # Stats snapshot (worker thread only, via the "stats" command)
    # ------------------------------------------------------------------
    def _snapshot_stats(self) -> dict[str, Any]:
        service = self._service
        stats = service.stats()
        subscriptions: list[dict[str, Any]] = []
        for subscription in service.bus.subscriptions():
            record: dict[str, Any] = {
                "name": subscription.name,
                "policy": subscription.policy,
                "maxsize": subscription.maxsize,
            }
            record.update(subscription.counters())
            subscriptions.append(record)
        return {
            "service": {
                "objects_pushed": stats.objects_pushed,
                "chunks_pushed": stats.chunks_pushed,
                "object_query_pairs": stats.object_query_pairs,
                "wall_seconds": stats.wall_seconds,
                "pairs_per_second": stats.pairs_per_second,
            },
            "queries": {
                query_id: stats.per_query[query_id].to_dict()
                for query_id in service.query_ids
            },
            "ingest": stats.ingest.to_dict(),
            "overload": stats.overload.to_dict(),
            "degraded": service.degraded,
            "queue_depth_chunks": service.queue_depth_chunks(),
            "queued_ingest_batches": self._queued_ingest,
            "ingest_rejected": self.ingest_rejected,
            "chunk_offset": service.chunk_offset,
            "chunk_index": service.chunk_index,
            "stream_time": encode_stream_time(service.stream_time),
            "subscriptions": subscriptions,
            "stages": service.stage_stats(),
            "checkpoint_prune_errors": service.checkpoint_prune_errors,
            "distributed": service.distributed_stats(),
        }


def subscription_options(payload: dict[str, Any]) -> dict[str, Any]:
    """Validate and normalise a ``subscribe`` request's options."""
    maxsize = payload.get("maxsize", 64)
    if not isinstance(maxsize, int) or maxsize < 0:
        raise ValueError(f"subscribe maxsize must be a non-negative int, got {maxsize!r}")
    policy = payload.get("policy", "drop_oldest")
    block_timeout = payload.get("block_timeout")
    if block_timeout is not None:
        block_timeout = float(block_timeout)
    queries = payload.get("queries")
    if queries is not None:
        if not isinstance(queries, list) or not all(
            isinstance(query_id, str) for query_id in queries
        ):
            raise ValueError("subscribe queries must be a list of query ids")
    return {
        "maxsize": maxsize,
        "policy": policy,
        "block_timeout": block_timeout,
        "query_ids": queries,
        "name": payload.get("name"),
    }


__all__ = [
    "EngineDrainingError",
    "ServerEngine",
    "Subscription",
    "subscription_options",
]
