"""Network tier: serve a :class:`~repro.service.SurgeService` over TCP.

Public surface:

* :class:`~repro.server.server.SurgeServer` — the asyncio front end:
  length-prefixed JSON frame listener, optional HTTP ``/metrics``
  endpoint, graceful SIGINT/SIGTERM drain;
* :class:`~repro.server.engine.ServerEngine` — the single worker thread
  that owns the service and serialises every operation;
* :class:`~repro.server.client.ServerClient` — a blocking stdlib client
  (one connection, request/reply + subscribe mode);
* :mod:`~repro.server.protocol` — the frame format and the
  object/result/update JSON codecs;
* :func:`~repro.server.metrics.render_prometheus` — the Prometheus text
  rendering of the service's stats surfaces.

See the README's "Serving over the network" section for the wire
contract (frame catalogue, overload reply semantics, drain behaviour).
"""

from repro.server.client import ServerClient, http_get
from repro.server.engine import EngineDrainingError, ServerEngine
from repro.server.metrics import render_prometheus
from repro.server.protocol import ProtocolError, ServerError
from repro.server.server import EndpointInUseError, SurgeServer

__all__ = [
    "EndpointInUseError",
    "EngineDrainingError",
    "ProtocolError",
    "ServerClient",
    "ServerEngine",
    "ServerError",
    "SurgeServer",
    "http_get",
    "render_prometheus",
]
