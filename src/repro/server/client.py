"""Blocking frame-protocol client (tests, benches, smokes, simple tools).

One :class:`ServerClient` is one TCP connection.  Request/reply methods
send a frame and read exactly one reply frame; ``error`` replies raise a
typed :class:`~repro.server.protocol.ServerError` (code 503 =
overloaded/draining — inspect ``exc.overloaded`` / ``exc.info``).  A
connection switched into subscribe mode mixes pushed ``result`` and
``control`` frames into the stream; :meth:`recv` reads them one at a
time and :meth:`recv_result` filters for results.

The client is deliberately synchronous and stdlib-only: the load harness
drives hundreds of them from plain threads, and the smoke runs without
any event-loop machinery in the parent process.
"""

from __future__ import annotations

import random
import socket
from time import monotonic, sleep
from typing import Any, Iterable

from repro.server.protocol import (
    LENGTH_STRUCT,
    ProtocolError,
    ServerError,
    decode_frame_body,
    decode_frame_length,
    encode_frame,
    encode_object,
)
from repro.service.spec import QuerySpec
from repro.streams.objects import SpatialObject


def connect_backoff_schedule(
    retries: int,
    *,
    base: float = 0.1,
    cap: float = 2.0,
    jitter: float = 0.25,
    rng: random.Random | None = None,
) -> list[float]:
    """Sleep schedule for ``retries`` reconnect attempts.

    Exponential doubling from ``base`` capped at ``cap``, each delay
    stretched by a uniform jitter in ``[1, 1 + jitter)`` so a fleet of
    workers restarted together does not reconnect in lockstep.
    """
    rng = rng if rng is not None else random
    schedule: list[float] = []
    for attempt in range(retries):
        delay = min(cap, base * (2.0**attempt))
        schedule.append(delay * (1.0 + rng.random() * jitter))
    return schedule


class ServerClient:
    """One blocking frame-protocol connection to a :class:`SurgeServer`.

    ``connect_retries`` re-attempts a refused/timed-out connection with
    exponential backoff + jitter (see :func:`connect_backoff_schedule`)
    before giving up — a worker racing its coordinator's bind, or a tool
    started before the server, no longer dies on the first refusal.
    ``timeout`` remains the per-socket-operation default; individual
    requests can tighten it with the ``deadline`` argument.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 60.0,
        connect_retries: int = 0,
        connect_backoff: float = 0.1,
        connect_backoff_max: float = 2.0,
        connect_jitter: float = 0.25,
        connect_timeout: float | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._timeout = timeout
        dial_timeout = connect_timeout if connect_timeout is not None else timeout
        delays = connect_backoff_schedule(
            max(0, connect_retries),
            base=connect_backoff,
            cap=connect_backoff_max,
            jitter=connect_jitter,
            rng=rng,
        )
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=dial_timeout
                )
                break
            except (ConnectionError, socket.timeout, OSError):
                if attempt >= len(delays):
                    raise
                sleep(delays[attempt])
                attempt += 1
        self._sock.settimeout(timeout)

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def send(self, frame: dict[str, Any]) -> None:
        self._sock.sendall(encode_frame(frame))

    def _read_exactly(self, n: int, deadline_at: float | None = None) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            if deadline_at is not None:
                budget = deadline_at - monotonic()
                if budget <= 0.0:
                    raise socket.timeout(
                        f"request deadline exceeded mid-frame "
                        f"({n - remaining} of {n} bytes)"
                    )
                self._sock.settimeout(budget)
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError(
                    f"connection closed mid-frame ({n - remaining} of {n} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, *, deadline: float | None = None) -> dict[str, Any]:
        """Read the next frame (reply or pushed), raising on ``error``."""
        frame = self.recv_raw(deadline=deadline)
        if frame.get("type") == "error":
            raise ServerError(
                int(frame.get("code", 500)),
                str(frame.get("error", "unknown error")),
                {
                    key: value
                    for key, value in frame.items()
                    if key not in ("type", "code", "error")
                },
            )
        return frame

    def recv_raw(self, *, deadline: float | None = None) -> dict[str, Any]:
        """Read the next frame without raising on ``error`` replies.

        ``deadline`` bounds the whole read (both the length prefix and
        the body) in seconds; on expiry a ``socket.timeout`` is raised
        and the socket's default timeout is restored.
        """
        deadline_at = None if deadline is None else monotonic() + deadline
        try:
            length = decode_frame_length(
                self._read_exactly(LENGTH_STRUCT.size, deadline_at)
            )
            return decode_frame_body(self._read_exactly(length, deadline_at))
        finally:
            if deadline_at is not None:
                try:
                    self._sock.settimeout(self._timeout)
                except OSError:
                    pass

    def request(
        self, frame: dict[str, Any], *, deadline: float | None = None
    ) -> dict[str, Any]:
        self.send(frame)
        return self.recv(deadline=deadline)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request({"type": "ping"})

    def ingest(self, objects: Iterable[Any]) -> dict[str, Any]:
        """Send one timestamp-ordered batch; returns the ack."""
        records = [
            encode_object(obj) if isinstance(obj, SpatialObject) else obj
            for obj in objects
        ]
        return self.request({"type": "ingest", "objects": records})

    def register(self, spec: QuerySpec | dict[str, Any]) -> dict[str, Any]:
        record = spec.to_dict() if isinstance(spec, QuerySpec) else dict(spec)
        return self.request({"type": "register", "spec": record})

    def unregister(self, query_id: str) -> dict[str, Any]:
        return self.request({"type": "unregister", "query_id": query_id})

    def subscribe(
        self,
        *,
        maxsize: int = 64,
        policy: str = "drop_oldest",
        block_timeout: float | None = None,
        queries: list[str] | None = None,
        name: str | None = None,
    ) -> dict[str, Any]:
        """Switch this connection into subscribe mode; returns the ack.

        After this, pushed ``result``/``control`` frames interleave with
        any further replies — use a dedicated connection for subscribing.
        """
        return self.request(
            {
                "type": "subscribe",
                "maxsize": maxsize,
                "policy": policy,
                "block_timeout": block_timeout,
                "queries": queries,
                "name": name,
            }
        )

    def recv_result(self) -> dict[str, Any]:
        """Read pushed frames until the next ``result`` frame."""
        while True:
            frame = self.recv()
            if frame.get("type") == "result":
                return frame

    def stats(self) -> dict[str, Any]:
        return self.request({"type": "stats"})["stats"]

    def results(self) -> dict[str, Any]:
        return self.request({"type": "results"})["results"]

    def flush(self) -> dict[str, Any]:
        return self.request({"type": "flush"})

    def drain(self) -> dict[str, Any]:
        return self.request({"type": "drain"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def http_get(
    host: str, port: int, path: str, *, timeout: float = 30.0
) -> tuple[int, str]:
    """Minimal HTTP/1.0 GET (stdlib sockets): returns (status, body)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        chunks: list[bytes] = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    parts = status_line.split()
    status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
    return status, body.decode("utf-8", "replace")


__all__ = [
    "ServerClient",
    "ServerError",
    "ProtocolError",
    "connect_backoff_schedule",
    "http_get",
]
