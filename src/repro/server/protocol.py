"""Wire protocol of the network tier: length-prefixed JSON frames.

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object with a ``"type"`` key.  JSON is
emitted with ``allow_nan=True`` (Python's extension literals ``NaN`` /
``Infinity``), so poison records — NaN timestamps, infinite coordinates —
survive the wire and exercise the service's quarantine screen exactly as
they do in-process.  Floats round-trip exactly (``repr`` codec), which is
what makes the bit-identity checks of the bench and smoke meaningful
across the socket.

Client → server request types
-----------------------------
``ingest``      ``{"objects": [<object>, ...]}`` — one timestamp-ordered
                batch; acked with the post-batch chunk offset/index.
``register``    ``{"spec": <QuerySpec dict>}`` — full spec incl. priority.
``unregister``  ``{"query_id": str}``
``subscribe``   ``{"maxsize": int, "policy": "block"|"drop_oldest"|"evict",
                "block_timeout": float|null, "queries": [str]|null}`` —
                turns the connection into a result stream.
``stats``       ``{}`` — service + ingest + overload + subscription stats.
``results``     ``{}`` — current result of every live query.
``flush``       ``{}`` — release the reorder buffer and pending remainder
                (end-of-stream semantics; used by tests for determinism).
``ping``        ``{}`` — liveness probe.
``drain``       ``{}`` — ask the whole server to drain and exit (admin;
                same path as SIGTERM).

Server → client frame types
---------------------------
``ack``         request succeeded; carries request-specific fields.
``error``       ``{"code": int, "error": str, ...}`` — 400 malformed /
                unsupported, 404 unknown query, 409 duplicate id, **503
                overloaded** (carries ``depth_chunks`` and ``advice``).
``stats`` / ``results``  reply payloads for the matching requests.
``result``      one pushed :class:`~repro.service.bus.QueryUpdate` on a
                subscribed connection.
``control``     service state transitions pushed to subscribers:
                ``{"event": "degraded_entered"|"degraded_exited"|
                "draining", ...}``.

The ``stats`` reply gains a ``stages`` section when the served service has
a tracer attached (see :mod:`repro.obs`): per-stage latency aggregates —
count, total/min/max seconds and log-bucketed histogram counts — keyed by
stage name.  When tracing is active the codec itself records
``wire.encode`` / ``wire.decode`` spans via the process-global tracer
(:func:`repro.obs.tracer.current`), so serialisation cost shows up in the
trace next to the pipeline stages it brackets.
"""

from __future__ import annotations

import json
import struct
from time import perf_counter
from typing import Any

from repro.core.base import RegionResult
from repro.geometry.primitives import Point, Rect
from repro.obs.tracer import current as _current_tracer
from repro.service.bus import QueryUpdate
from repro.streams.objects import SpatialObject

#: Frame length prefix: 4-byte big-endian unsigned.
LENGTH_STRUCT = struct.Struct(">I")

#: Upper bound on a single frame's payload — a desynchronised or malicious
#: length prefix must not trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame (bad length prefix, bad JSON, or bad shape)."""


class ServerError(RuntimeError):
    """A typed ``error`` reply surfaced client-side.

    ``code`` follows the HTTP convention documented in the module
    docstring; ``info`` carries the reply's extra fields (e.g.
    ``depth_chunks`` and ``advice`` on a 503).
    """

    def __init__(self, code: int, message: str, info: dict[str, Any]) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.info = dict(info)

    @property
    def overloaded(self) -> bool:
        return self.code == 503


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialise one frame: length prefix + compact JSON."""
    tracer = _current_tracer()
    started = (
        perf_counter() if tracer is not None and tracer.enabled else 0.0
    )
    body = json.dumps(
        payload, separators=(",", ":"), allow_nan=True, sort_keys=True
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    if started:
        tracer.record(
            "wire.encode",
            started,
            perf_counter(),
            lane="wire",
            meta={"bytes": len(body)},
        )
    return LENGTH_STRUCT.pack(len(body)) + body


def decode_frame_length(prefix: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    if len(prefix) != LENGTH_STRUCT.size:
        raise ProtocolError(
            f"truncated frame length prefix: got {len(prefix)} of "
            f"{LENGTH_STRUCT.size} bytes"
        )
    (length,) = LENGTH_STRUCT.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            f"frame limit (desynchronised stream?)"
        )
    return length


def decode_frame_body(body: bytes) -> dict[str, Any]:
    """Parse one frame body into its JSON object."""
    tracer = _current_tracer()
    started = (
        perf_counter() if tracer is not None and tracer.enabled else 0.0
    )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    if started:
        tracer.record(
            "wire.decode",
            started,
            perf_counter(),
            lane="wire",
            meta={"bytes": len(body)},
        )
    return payload


# ----------------------------------------------------------------------
# Blocking-socket framing helpers
# ----------------------------------------------------------------------
def send_frame(sock, payload: dict[str, Any]) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload))


def _read_exactly(sock, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> dict[str, Any]:
    """Read one frame from a blocking socket (honours its timeout)."""
    length = decode_frame_length(_read_exactly(sock, LENGTH_STRUCT.size))
    return decode_frame_body(_read_exactly(sock, length))


# ----------------------------------------------------------------------
# Object / result / update codecs
# ----------------------------------------------------------------------
def encode_object(obj: SpatialObject) -> dict[str, Any]:
    """JSON form of one stream object (attributes carried verbatim)."""
    record: dict[str, Any] = {
        "x": obj.x,
        "y": obj.y,
        "timestamp": obj.timestamp,
        "weight": obj.weight,
        "object_id": obj.object_id,
    }
    if obj.attributes:
        attributes = dict(obj.attributes)
        keywords = attributes.get("keywords")
        if isinstance(keywords, tuple):
            attributes["keywords"] = list(keywords)
        record["attributes"] = attributes
    return record


def decode_object(record: Any) -> Any:
    """Rebuild a :class:`SpatialObject`; unparseable records pass through.

    A record that cannot be shaped into a ``SpatialObject`` is returned
    as-is so the service's quarantine screen (not the transport) decides
    its fate — the wire must not be stricter than in-process ingestion.
    """
    if not isinstance(record, dict):
        return record
    try:
        attributes = record.get("attributes") or {}
        if not isinstance(attributes, dict):
            return record
        attributes = dict(attributes)
        keywords = attributes.get("keywords")
        if isinstance(keywords, list):
            attributes["keywords"] = tuple(keywords)
        return SpatialObject(
            x=float(record["x"]),
            y=float(record["y"]),
            timestamp=float(record["timestamp"]),
            weight=float(record.get("weight", 1.0)),
            object_id=int(record.get("object_id", -1)),
            attributes=attributes,
        )
    except (KeyError, TypeError, ValueError):
        return record


def encode_result(result: RegionResult | None) -> dict[str, Any] | None:
    if result is None:
        return None
    return {
        "region": [
            result.region.min_x,
            result.region.min_y,
            result.region.max_x,
            result.region.max_y,
        ],
        "score": result.score,
        "point": [result.point.x, result.point.y],
        "fc": result.fc,
        "fp": result.fp,
    }


def decode_result(record: dict[str, Any] | None) -> RegionResult | None:
    if record is None:
        return None
    min_x, min_y, max_x, max_y = record["region"]
    px, py = record["point"]
    return RegionResult(
        region=Rect(min_x=min_x, min_y=min_y, max_x=max_x, max_y=max_y),
        score=record["score"],
        point=Point(x=px, y=py),
        fc=record.get("fc", 0.0),
        fp=record.get("fp", 0.0),
    )


def encode_update(update: QueryUpdate) -> dict[str, Any]:
    """JSON form of one pushed result frame."""
    return {
        "type": "result",
        "query_id": update.query_id,
        "chunk_index": update.chunk_index,
        "result": encode_result(update.result),
        "objects_routed": update.objects_routed,
        "busy_seconds": update.busy_seconds,
        "lag_seconds": update.lag_seconds,
        "shed": update.shed,
    }


def error_frame(code: int, message: str, **info: Any) -> dict[str, Any]:
    frame = {"type": "error", "code": code, "error": message}
    frame.update(info)
    return frame


def overloaded_frame(
    message: str, *, depth_chunks: float | None, advice: str
) -> dict[str, Any]:
    """The typed 503 reply an ``OverloadError`` maps to on the wire."""
    return error_frame(
        503, message, depth_chunks=depth_chunks, advice=advice, overloaded=True
    )
