"""Approximation-ratio measurement (Tables III and IV).

The paper evaluates GAP-SURGE and MGAP-SURGE by the ratio between the burst
score of the region they report and the burst score of the optimal region, at
matching instants of the stream.  This module runs an approximate detector
and an exact detector side by side over the *same* window events and samples
the ratio periodically once the stream is stable.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.base import BurstyRegionDetector
from repro.core.monitor import make_detector
from repro.core.query import SurgeQuery
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


@dataclass(frozen=True)
class RatioResult:
    """Sampled approximation-ratio statistics for one detector pair."""

    approximate_name: str
    exact_name: str
    samples: int
    mean_ratio: float
    min_ratio: float
    median_ratio: float

    @property
    def mean_percent(self) -> float:
        """Mean ratio as a percentage (the unit of Tables III / IV)."""
        return self.mean_ratio * 100.0


def measure_approximation_ratio(
    approximate: BurstyRegionDetector | str,
    query: SurgeQuery,
    stream: list[SpatialObject],
    exact: BurstyRegionDetector | str = "ccs",
    sample_every: int = 25,
    **detector_options,
) -> RatioResult:
    """Run an approximate and an exact detector together and sample score ratios.

    Samples are taken every ``sample_every`` objects once the stream is
    stable (so that both windows are populated).  Instants where the exact
    optimum is zero are skipped — the ratio is undefined there and both
    detectors agree that nothing is bursty.
    """
    if isinstance(approximate, str):
        approximate = make_detector(approximate, query, **detector_options)
    if isinstance(exact, str):
        exact = make_detector(exact, query)
    if not exact.exact:
        raise ValueError(f"reference detector {exact.name!r} is not exact")

    windows = SlidingWindowPair(
        window_length=query.current_length, past_window_length=query.past_length
    )
    ratios: list[float] = []
    for index, obj in enumerate(stream):
        for event in windows.observe(obj):
            approximate.process(event)
            exact.process(event)
        if not windows.is_stable() or index % sample_every:
            continue
        exact_result = exact.result()
        approx_result = approximate.result()
        if exact_result is None or exact_result.score <= 0.0:
            continue
        approx_score = approx_result.score if approx_result is not None else 0.0
        ratios.append(approx_score / exact_result.score)

    if not ratios:
        return RatioResult(
            approximate_name=approximate.name,
            exact_name=exact.name,
            samples=0,
            mean_ratio=float("nan"),
            min_ratio=float("nan"),
            median_ratio=float("nan"),
        )
    return RatioResult(
        approximate_name=approximate.name,
        exact_name=exact.name,
        samples=len(ratios),
        mean_ratio=statistics.fmean(ratios),
        min_ratio=min(ratios),
        median_ratio=statistics.median(ratios),
    )
