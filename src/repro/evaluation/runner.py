"""Run detectors over streams with the paper's measurement protocol.

The protocol of Section VII-A is: feed the stream, wait until the system is
*stable* (at least one object has expired from the past window), then measure
the processing time of every subsequent object and report the average.
:func:`run_detector` implements exactly that; :func:`run_detectors` runs
several detectors over the same stream (sharing the window-event expansion)
so that comparative figures use identical inputs.

Both accept ``chunk_size`` to run the batched ingestion path instead
(``observe_batch`` + ``apply_events``), reporting the amortised per-object
cost at that chunking; ``benchmarks/bench_ingest.py`` uses the same
primitives to track end-to-end objects/sec per detector.

The multi-query half of the harness mirrors the same protocol one level up:
:func:`run_service` replays a shared stream through a
:class:`~repro.service.SurgeService` and reports aggregate
object·query-pair throughput plus per-query lag/throughput, and
:func:`service_scenario_grid` sweeps a (query count × shard count ×
executor) grid over the same stream — the scenario matrix
``benchmarks/bench_service.py`` tracks.

The durability axis is measured by the same primitives:
:func:`run_service` accepts ``checkpoint_dir`` / ``checkpoint_policy`` so the
checkpointed and checkpoint-free throughput come from identical replays, and
:func:`measure_recovery` stages a mid-stream crash and times
restore-plus-tail-replay against a full from-scratch replay (the numbers
``benchmarks/bench_recovery.py`` tracks), asserting result parity as it goes.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.base import BurstyRegionDetector, DetectorStats, RegionResult
from repro.core.monitor import make_detector
from repro.core.query import SurgeQuery
from repro.evaluation.metrics import TimingSummary, summarize_times
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair


@dataclass
class RunResult:
    """Outcome of running one detector over one stream."""

    detector_name: str
    query: SurgeQuery
    timing: TimingSummary
    stats: DetectorStats
    objects_total: int
    objects_measured: int
    stream_span_seconds: float
    final_result: RegionResult | None
    final_top_k: list[RegionResult] = field(default_factory=list)

    @property
    def mean_time_per_object_micros(self) -> float:
        """Average per-object processing time in microseconds."""
        return self.timing.mean_micros


def run_detector(
    detector: BurstyRegionDetector | str,
    query: SurgeQuery,
    stream: list[SpatialObject],
    warmup: str = "stable",
    max_measured_objects: int | None = None,
    chunk_size: int | None = None,
    **detector_options,
) -> RunResult:
    """Run a detector over a stream and measure per-object processing time.

    Parameters
    ----------
    detector:
        A detector instance or a name accepted by
        :func:`repro.core.monitor.make_detector`.
    query:
        The SURGE query; also used to build the detector when a name is given.
    stream:
        Timestamp-ordered spatial objects.
    warmup:
        ``"stable"`` measures only after the paper's stability condition is
        reached; ``"none"`` measures from the first object.
    max_measured_objects:
        Optional cap on the number of measured objects (the run still
        processes the whole stream).
    chunk_size:
        ``None`` (default) replays the paper's per-event protocol.  A
        positive value ingests the stream through the batched event path
        (:meth:`SlidingWindowPair.observe_batch` +
        :meth:`BurstyRegionDetector.apply_events`) in chunks of that many
        objects; each measured per-object time is then the chunk wall time
        divided by the chunk size, i.e. the amortised cost the continuous
        query pays per object at that read cadence.
    """
    if isinstance(detector, str):
        detector = make_detector(detector, query, **detector_options)
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    windows = SlidingWindowPair(
        window_length=query.current_length, past_window_length=query.past_length
    )

    times: list[float] = []
    measured = 0
    if chunk_size is None:
        for obj in stream:
            events = windows.observe(obj)
            should_measure = warmup == "none" or windows.is_stable()
            if should_measure and (
                max_measured_objects is None or measured < max_measured_objects
            ):
                started = time.perf_counter()
                for event in events:
                    detector.process(event)
                # Reading the answer is part of the continuous-query contract —
                # and it is where lazily-maintained detectors (kccs) do their
                # amortized recomputation, so it must stay inside the timer.
                detector.result()
                times.append(time.perf_counter() - started)
                measured += 1
            else:
                for event in events:
                    detector.process(event)
    else:
        for start in range(0, len(stream), chunk_size):
            chunk = stream[start : start + chunk_size]
            batch = windows.observe_batch(chunk)
            should_measure = warmup == "none" or windows.is_stable()
            if should_measure and (
                max_measured_objects is None or measured < max_measured_objects
            ):
                started = time.perf_counter()
                detector.apply_events(batch)
                detector.result()
                per_object = (time.perf_counter() - started) / len(chunk)
                # Honour the cap exactly, as the per-event path does: the
                # whole chunk is still timed as one unit, but only the
                # remaining budget of samples is recorded.
                take = (
                    len(chunk)
                    if max_measured_objects is None
                    else min(len(chunk), max_measured_objects - measured)
                )
                times.extend([per_object] * take)
                measured += take
            else:
                detector.apply_events(batch)

    span = stream[-1].timestamp - stream[0].timestamp if len(stream) > 1 else 0.0
    return RunResult(
        detector_name=detector.name,
        query=query,
        timing=summarize_times(times),
        stats=detector.stats,
        objects_total=len(stream),
        objects_measured=measured,
        stream_span_seconds=span,
        final_result=detector.result(),
        final_top_k=detector.top_k(query.k),
    )


@dataclass
class ServiceRunResult:
    """Outcome of replaying one stream through one service configuration."""

    executor: str
    shards: int
    chunk_size: int
    n_queries: int
    shared_plan: bool
    objects_total: int
    wall_seconds: float
    object_query_pairs: int
    per_query: dict[str, dict]
    final_results: dict[str, RegionResult | None]

    @property
    def pairs_per_second(self) -> float:
        """Aggregate objects·queries/sec — the multi-tenant throughput unit."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.object_query_pairs / self.wall_seconds


def run_service(
    specs,
    stream: list[SpatialObject],
    *,
    shards: int = 1,
    executor: str = "serial",
    executor_options=None,
    shared_plan: bool = True,
    chunk_size: int = 512,
    checkpoint_dir=None,
    checkpoint_policy=None,
) -> ServiceRunResult:
    """Replay a shared stream through a multi-query service and measure it.

    ``specs`` is a sequence of :class:`~repro.service.QuerySpec`.  The wall
    time covers ingestion only (service construction and worker start-up are
    excluded, matching the steady-state serving cost; the per-event
    protocol's warm-up condition does not apply because each query has its
    own window clock).

    ``shared_plan`` selects the shard execution plan (see
    :mod:`repro.service.shards`); results are bit-identical either way, so
    benchmarking the same workload under both isolates the shared-work
    speedup (``benchmarks/bench_service.py``).

    ``checkpoint_dir`` / ``checkpoint_policy`` (see :mod:`repro.state`)
    enable durable checkpoints *inside* the measured window, so comparing a
    checkpointed run against a plain one over the same stream isolates the
    durability overhead (``benchmarks/bench_recovery.py``).

    ``executor_options`` is forwarded to the executor factory — the
    ``remote`` backend takes its fleet configuration (worker count, spawn
    mode, RPC deadlines) here (``benchmarks/bench_remote.py``).
    """
    from repro.service import SurgeService

    with SurgeService(
        specs,
        shards=shards,
        executor=executor,
        executor_options=executor_options,
        shared_plan=shared_plan,
        checkpoint_dir=checkpoint_dir,
        checkpoint_policy=checkpoint_policy,
    ) as service:
        # Touch every shard once before timing so process workers are
        # started (and their specs unpickled) outside the measured window.
        # results() broadcasts without publishing to the bus, so the warm-up
        # round-trip never pollutes the per-query lag/throughput stats.
        service.results()
        started = time.perf_counter()
        for _ in service.run(stream, chunk_size):
            pass
        wall = time.perf_counter() - started
        stats = service.stats()
        per_query = {
            query_id: {
                "keyword": spec.keyword,
                "algorithm": spec.algorithm,
                "objects_routed": stats.per_query[query_id].objects_routed,
                "objects_per_second": stats.per_query[query_id].objects_per_second,
                "busy_seconds": stats.per_query[query_id].busy_seconds,
                "last_lag_seconds": stats.per_query[query_id].last_lag_seconds,
                "max_lag_seconds": stats.per_query[query_id].max_lag_seconds,
            }
            for query_id, spec in ((s.query_id, s) for s in specs)
        }
        final_results = service.results()
    return ServiceRunResult(
        executor=executor,
        shards=shards,
        chunk_size=chunk_size,
        n_queries=len(specs),
        shared_plan=shared_plan,
        objects_total=len(stream),
        wall_seconds=wall,
        object_query_pairs=len(stream) * len(specs),
        per_query=per_query,
        final_results=final_results,
    )


@dataclass
class RecoveryRunResult:
    """Outcome of one staged crash-and-resume experiment.

    ``full_replay_seconds`` is the cost of rebuilding the crash-point state
    from scratch (fresh service, chunks ``0..crash``); the resume path costs
    ``restore_seconds`` (load the last checkpoint) plus
    ``tail_replay_seconds`` (replay chunks ``checkpoint..crash``).  Both
    paths are asserted bit-identical at the crash point *and* after the
    remaining stream is played out.
    """

    chunk_size: int
    chunks_total: int
    crash_chunk_offset: int
    checkpoint_chunk_offset: int
    checkpoints_written: int
    full_replay_seconds: float
    restore_seconds: float
    tail_replay_seconds: float

    @property
    def resume_seconds(self) -> float:
        """Total time from crash to a serving-again state."""
        return self.restore_seconds + self.tail_replay_seconds

    @property
    def speedup_vs_full_replay(self) -> float:
        """How much faster resume is than replaying everything."""
        if self.resume_seconds <= 0.0:
            return float("inf")
        return self.full_replay_seconds / self.resume_seconds


def measure_recovery(
    specs,
    stream: list[SpatialObject],
    workdir,
    *,
    chunk_size: int = 512,
    checkpoint_every: int = 16,
    crash_fraction: float = 0.75,
    shards: int = 1,
    executor: str = "serial",
) -> RecoveryRunResult:
    """Stage a crash at ``crash_fraction`` of the stream and time recovery.

    The protocol: (1) serve the stream with checkpoints every
    ``checkpoint_every`` chunks into ``workdir`` and abandon the service at
    the crash chunk — everything not checkpointed dies with it; (2) time a
    full from-scratch replay to the crash point; (3) time
    :meth:`~repro.service.SurgeService.restore` plus the tail replay from
    the checkpoint offset.  Both recovered states must match bit for bit at
    the crash point and (after playing out the rest of the stream) at the
    end — recovery that answers fast but wrong does not count.
    """
    from repro.service import SurgeService
    from repro.state import CheckpointPolicy, has_checkpoint, read_manifest
    from repro.streams.sources import iter_chunks

    chunks = list(iter_chunks(stream, chunk_size))
    if len(chunks) < 2:
        raise ValueError("stream too short to stage a mid-stream crash")
    crash_offset = min(max(int(len(chunks) * crash_fraction), 1), len(chunks) - 1)

    def result_key(result):
        if result is None:
            return None
        return (
            result.score,
            result.region.as_tuple(),
            result.point.as_tuple(),
            result.fc,
            result.fp,
        )

    def snapshot_results(service):
        return {qid: result_key(res) for qid, res in service.results().items()}

    # (1) The doomed service: checkpoints while serving, dies at the crash.
    with SurgeService(
        specs,
        shards=shards,
        executor=executor,
        checkpoint_dir=workdir,
        checkpoint_policy=CheckpointPolicy(every_chunks=checkpoint_every),
    ) as doomed:
        for chunk in chunks[:crash_offset]:
            doomed.push_many(chunk)
    if not has_checkpoint(workdir):
        raise ValueError(
            f"no checkpoint was taken before the crash (crash at chunk "
            f"{crash_offset}, policy every {checkpoint_every} chunks); "
            f"lower checkpoint_every or use a longer stream"
        )
    manifest = read_manifest(workdir)
    checkpoint_offset = manifest.chunk_offset
    checkpoints_written = manifest.generation

    # (2) Full replay to the crash point (the no-durability alternative).
    with SurgeService(specs, shards=shards, executor=executor) as replayed:
        replayed.results()  # start workers outside the timed window
        started = time.perf_counter()
        for chunk in chunks[:crash_offset]:
            replayed.push_many(chunk)
        full_replay_seconds = time.perf_counter() - started
        replay_at_crash = snapshot_results(replayed)
        for chunk in chunks[crash_offset:]:
            replayed.push_many(chunk)
        replay_final = snapshot_results(replayed)

    # (3) Restore + tail replay (the durable path).
    started = time.perf_counter()
    restored = SurgeService.restore(workdir, executor=executor, attach=False)
    restore_seconds = time.perf_counter() - started
    with restored:
        started = time.perf_counter()
        for chunk in chunks[restored.chunk_offset : crash_offset]:
            restored.push_many(chunk)
        tail_replay_seconds = time.perf_counter() - started
        restored_at_crash = snapshot_results(restored)
        for chunk in chunks[crash_offset:]:
            restored.push_many(chunk)
        restored_final = snapshot_results(restored)

    if restored_at_crash != replay_at_crash:
        raise AssertionError(
            "restore + tail replay diverged from the full replay at the "
            "crash point — recovery is not bit-identical"
        )
    if restored_final != replay_final:
        raise AssertionError(
            "restore + tail replay diverged from the full replay at the "
            "end of the stream — recovery is not bit-identical"
        )
    return RecoveryRunResult(
        chunk_size=chunk_size,
        chunks_total=len(chunks),
        crash_chunk_offset=crash_offset,
        checkpoint_chunk_offset=checkpoint_offset,
        checkpoints_written=checkpoints_written,
        full_replay_seconds=full_replay_seconds,
        restore_seconds=restore_seconds,
        tail_replay_seconds=tail_replay_seconds,
    )


def service_scenario_grid(
    stream: list[SpatialObject],
    *,
    query_counts: Sequence[int] = (1, 8),
    shard_counts: Sequence[int] = (1, 2),
    executors: Sequence[str] = ("serial",),
    shared_plan: bool = True,
    chunk_size: int = 512,
    **grid_options,
) -> list[ServiceRunResult]:
    """Sweep the multi-query scenario grid over one shared stream.

    The experiment-grid idiom: the cartesian product of (query count, shard
    count, executor) is materialised up front and every cell replays the
    same stream through :func:`run_service`, so cells are comparable.
    ``grid_options`` is forwarded to
    :func:`repro.service.make_query_grid` (base query size, keywords,
    algorithm, ...).  Returns one :class:`ServiceRunResult` per cell, in
    grid order.
    """
    from repro.service import make_query_grid

    results = []
    for n_queries, shards, executor in itertools.product(
        query_counts, shard_counts, executors
    ):
        specs = make_query_grid(n_queries, **grid_options)
        results.append(
            run_service(
                specs,
                stream,
                shards=shards,
                executor=executor,
                shared_plan=shared_plan,
                chunk_size=chunk_size,
            )
        )
    return results


def run_detectors(
    names: list[str],
    query: SurgeQuery,
    stream: list[SpatialObject],
    warmup: str = "stable",
    max_measured_objects: int | None = None,
    chunk_size: int | None = None,
    **detector_options,
) -> dict[str, RunResult]:
    """Run several detectors (by name) over the same stream."""
    results: dict[str, RunResult] = {}
    for name in names:
        results[name] = run_detector(
            name,
            query,
            stream,
            warmup=warmup,
            max_measured_objects=max_measured_objects,
            chunk_size=chunk_size,
            **detector_options,
        )
    return results
