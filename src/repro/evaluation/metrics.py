"""Summary statistics over per-object timing measurements.

Implemented with the standard library only (the percentile uses the same
linear interpolation as ``numpy.percentile``'s default method), so the
evaluation harness works in the numpy-free install.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TimingSummary:
    """Aggregated per-object processing-time statistics (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    total: float

    @property
    def mean_micros(self) -> float:
        """Mean time per object in microseconds (the unit of the paper's figures)."""
        return self.mean * 1e6

    @property
    def objects_per_second(self) -> float:
        """Sustained throughput implied by the mean per-object time."""
        if self.mean <= 0:
            return float("inf")
        return 1.0 / self.mean


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence."""
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def summarize_times(times: Sequence[float]) -> TimingSummary:
    """Summarise a list of per-object processing times (seconds)."""
    if not times:
        return TimingSummary(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0, total=0.0)
    ordered = sorted(float(value) for value in times)
    total = sum(ordered)
    return TimingSummary(
        count=len(ordered),
        mean=total / len(ordered),
        median=_percentile(ordered, 0.5),
        p95=_percentile(ordered, 0.95),
        maximum=ordered[-1],
        total=total,
    )


def processing_time_per_hour_of_stream(
    total_processing_seconds: float, stream_span_seconds: float
) -> float:
    """The Figure 8 metric: processing time per hour of stream time.

    The paper reports ``t_h = runtime / |O|_time`` where ``|O|_time`` is the
    total stream span; this helper converts our measurements to the same
    unit (seconds of processing per hour of stream).
    """
    if stream_span_seconds <= 0:
        return float("inf")
    return total_processing_seconds / (stream_span_seconds / 3600.0)
