"""Evaluation harness: timing runs, approximation ratios, and experiment drivers.

* :mod:`repro.evaluation.runner` — run a detector over a stream with the
  paper's warm-up protocol and collect per-object processing times plus the
  detector's operation counters.
* :mod:`repro.evaluation.ratio` — measure approximation ratios of GAP /
  MGAP against an exact detector (Tables III and IV).
* :mod:`repro.evaluation.metrics` — summary statistics over timing runs.
* :mod:`repro.evaluation.tables` — plain-text table / figure-series
  formatting used by the benchmark harness and EXPERIMENTS.md.
* :mod:`repro.evaluation.experiments` — one driver function per table and
  figure of the paper's evaluation section.
"""

from repro.evaluation.metrics import TimingSummary, summarize_times
from repro.evaluation.runner import RunResult, run_detector, run_detectors
from repro.evaluation.ratio import RatioResult, measure_approximation_ratio
from repro.evaluation.tables import format_table, format_series

__all__ = [
    "TimingSummary",
    "summarize_times",
    "RunResult",
    "run_detector",
    "run_detectors",
    "RatioResult",
    "measure_approximation_ratio",
    "format_table",
    "format_series",
]
