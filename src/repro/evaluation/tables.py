"""Plain-text formatting of benchmark tables and figure series.

The benchmark harness prints, for every table and figure of the paper, the
same rows / series the paper reports (series name, x value, measured value).
These helpers keep that output consistent and readable in pytest's captured
output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    value_format: str = "{:.4g}",
) -> str:
    """Render a simple aligned text table.

    Numeric cells are formatted with ``value_format``; everything else is
    rendered with ``str``.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(value_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)

    widths = [len(str(column)) for column in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [title, render_line([str(c) for c in columns])]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: Mapping[str, Mapping[object, float]],
    value_format: str = "{:.4g}",
) -> str:
    """Render figure-style data: one line per (series, x) pair.

    ``series`` maps a series name (e.g. ``"CCS"``) to a mapping from x value
    (e.g. window length) to measured value (e.g. microseconds per object).
    """
    lines = [title]
    for name, points in series.items():
        for x_value, y_value in points.items():
            lines.append(
                f"  {name:<8} {x_label}={x_value!s:<10} -> " + value_format.format(y_value)
            )
    return "\n".join(lines)


def format_paper_expectation(text: str) -> str:
    """Render the qualitative expectation from the paper alongside a result."""
    return f"  [paper expectation] {text}"
