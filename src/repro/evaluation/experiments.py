"""Experiment drivers: one function per table / figure of the paper.

Every driver reproduces the *protocol* of the corresponding experiment at a
configurable scale.  The paper runs each configuration over streams of one
million objects on a C++ implementation; a pure-Python reproduction cannot do
that within a benchmark session, so the drivers accept an ``n_objects``
parameter (with small defaults) and, where the paper's window sweep exceeds
the scaled stream's duration, compress the stream in time so that the same
window lengths still hold the same *relative* amount of data.  The shapes the
paper reports — which algorithm wins, how runtime grows with window and
rectangle size, how the approximation ratio behaves — are preserved; absolute
microsecond values are not comparable and are not meant to be.

The drivers return plain dictionaries of series so that the benchmark modules
can both print them (via :mod:`repro.evaluation.tables`) and assert on their
qualitative shape.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.monitor import make_detector
from repro.core.query import SurgeQuery
from repro.datasets.keywords import KeywordEvent, filter_by_keyword, generate_keyword_stream
from repro.datasets.profiles import DatasetProfile, PROFILES
from repro.datasets.synthetic import generate_profile_stream
from repro.datasets.workloads import (
    ALPHA_SWEEP,
    ARRIVAL_RATE_SWEEP,
    K_SWEEP,
    RECT_MULTIPLIERS,
    default_query_for_profile,
)
from repro.evaluation.metrics import processing_time_per_hour_of_stream
from repro.evaluation.ratio import measure_approximation_ratio
from repro.evaluation.runner import run_detector
from repro.streams.objects import SpatialObject
from repro.streams.sources import ListSource, stretch_to_duration

#: Window-sweep multipliers relative to the dataset's default window,
#: mirroring Figures 5(a-c) / 6(a-c): {1, 5, 10, 20, 30} minutes for Taxi and
#: {0.5, 1, 2, 5, 12} hours for UK / US, both expressed relative to the
#: default (5 minutes resp. 1 hour).
WINDOW_MULTIPLIERS: dict[str, tuple[float, ...]] = {
    "Taxi": (0.2, 1.0, 2.0, 4.0, 6.0),
    "UK": (0.5, 1.0, 2.0, 5.0, 12.0),
    "US": (0.5, 1.0, 2.0, 5.0, 12.0),
}

#: Default algorithm sets per figure.
EXACT_ALGORITHMS = ("ccs", "bccs", "base", "ag2")
APPROX_ALGORITHMS = ("gaps", "mgaps")
TOPK_ALGORITHMS = ("kccs", "kgaps", "kmgaps")


# ---------------------------------------------------------------------------
# Stream preparation
# ---------------------------------------------------------------------------
def prepare_stream(
    profile: DatasetProfile,
    n_objects: int,
    span_seconds: float | None = None,
    seed: int = 7,
    with_bursts: bool = True,
) -> list[SpatialObject]:
    """A profile-shaped stream, optionally compressed/stretched to a time span.

    ``span_seconds`` re-times the stream so that window sweeps larger than
    the natural duration of the scaled stream still stabilise; the spatial
    distribution and weights are untouched.
    """
    stream = generate_profile_stream(
        profile, n_objects=n_objects, seed=seed, with_bursts=with_bursts
    )
    if span_seconds is not None:
        stream = stretch_to_duration(stream, span_seconds)
    return stream


def _sweep_span(window_values: Sequence[float]) -> float:
    """A stream span comfortably covering the largest window of a sweep."""
    return max(window_values) * 3.0


def window_values_for(profile: DatasetProfile) -> list[float]:
    """The window lengths (seconds) swept for a profile in Figures 5/6/9."""
    return [
        profile.default_window_seconds * multiplier
        for multiplier in WINDOW_MULTIPLIERS[profile.name]
    ]


# ---------------------------------------------------------------------------
# Table I — dataset statistics
# ---------------------------------------------------------------------------
def table1_dataset_statistics(n_objects: int = 2000, seed: int = 7) -> list[dict[str, object]]:
    """Generate each dataset stand-in and report the Table I statistics."""
    rows = []
    for profile in (PROFILES["uk"], PROFILES["us"], PROFILES["taxi"]):
        # Bursts are omitted here: Table I characterises the background data,
        # and planted bursts would bias the measured arrival rate upwards.
        stream = generate_profile_stream(
            profile, n_objects=n_objects, seed=seed, with_bursts=False
        )
        source = ListSource(stream)
        rows.append(
            {
                "dataset": profile.name,
                "objects": len(stream),
                "target_rate_per_hour": profile.arrival_rate_per_hour,
                "measured_rate_per_hour": source.arrival_rate(per=3600.0),
                "lon_min": profile.extent.min_x,
                "lon_max": profile.extent.max_x,
                "lat_min": profile.extent.min_y,
                "lat_max": profile.extent.max_y,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 5 and 6 — runtime vs window length / rectangle size
# ---------------------------------------------------------------------------
def runtime_vs_window(
    profile: DatasetProfile,
    algorithms: Sequence[str] = EXACT_ALGORITHMS,
    n_objects: int = 2500,
    seed: int = 7,
    window_values: Sequence[float] | None = None,
) -> dict[str, dict[float, float]]:
    """Mean per-object processing time (µs) as the window length varies.

    Drives Figures 5(a-c) with the exact algorithms and 6(a-c) with the
    approximate ones.
    """
    if window_values is None:
        window_values = window_values_for(profile)
    stream = prepare_stream(
        profile, n_objects, span_seconds=_sweep_span(window_values), seed=seed
    )
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for window in window_values:
        query = default_query_for_profile(profile, window_seconds=window)
        for name in algorithms:
            outcome = run_detector(name, query, stream)
            series[name][window] = outcome.mean_time_per_object_micros
    return series


def runtime_vs_rect_size(
    profile: DatasetProfile,
    algorithms: Sequence[str] = EXACT_ALGORITHMS,
    n_objects: int = 2500,
    seed: int = 7,
    multipliers: Sequence[float] = RECT_MULTIPLIERS,
) -> dict[str, dict[float, float]]:
    """Mean per-object processing time (µs) as the query rectangle size varies.

    Drives Figures 5(d-f) and 6(d-f); ``multipliers`` are relative to the
    dataset's default rectangle ``q``.
    """
    window = profile.default_window_seconds
    stream = prepare_stream(profile, n_objects, span_seconds=window * 3.0, seed=seed)
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for multiplier in multipliers:
        query = default_query_for_profile(profile, rect_multiplier=multiplier)
        for name in algorithms:
            outcome = run_detector(name, query, stream)
            series[name][multiplier] = outcome.mean_time_per_object_micros
    return series


# ---------------------------------------------------------------------------
# Table II — fraction of events triggering a search (CCS vs B-CCS)
# ---------------------------------------------------------------------------
def search_trigger_ratio_vs_window(
    profile: DatasetProfile,
    n_objects: int = 2500,
    seed: int = 7,
    window_values: Sequence[float] | None = None,
    algorithms: Sequence[str] = ("ccs", "bccs"),
) -> dict[str, dict[float, float]]:
    """Percentage of events that trigger a cell search, per window length."""
    if window_values is None:
        window_values = window_values_for(profile)
    stream = prepare_stream(
        profile, n_objects, span_seconds=_sweep_span(window_values), seed=seed
    )
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for window in window_values:
        query = default_query_for_profile(profile, window_seconds=window)
        for name in algorithms:
            outcome = run_detector(name, query, stream)
            series[name][window] = outcome.stats.search_trigger_ratio * 100.0
    return series


# ---------------------------------------------------------------------------
# Figure 7 and Table III — effect of the balance parameter α
# ---------------------------------------------------------------------------
def runtime_vs_alpha(
    profile: DatasetProfile,
    algorithms: Sequence[str],
    n_objects: int = 2500,
    seed: int = 7,
    alphas: Sequence[float] = ALPHA_SWEEP,
) -> dict[str, dict[float, float]]:
    """Mean per-object processing time (µs) as α varies (Figure 7)."""
    window = profile.default_window_seconds
    stream = prepare_stream(profile, n_objects, span_seconds=window * 3.0, seed=seed)
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for alpha in alphas:
        query = default_query_for_profile(profile, alpha=alpha)
        for name in algorithms:
            outcome = run_detector(name, query, stream)
            series[name][alpha] = outcome.mean_time_per_object_micros
    return series


def ratio_vs_alpha(
    profile: DatasetProfile,
    n_objects: int = 1500,
    seed: int = 7,
    alphas: Sequence[float] = ALPHA_SWEEP,
    algorithms: Sequence[str] = APPROX_ALGORITHMS,
    sample_every: int = 20,
) -> dict[str, dict[float, float]]:
    """Approximation ratio (%) of GAPS / MGAPS as α varies (Table III)."""
    window = profile.default_window_seconds
    stream = prepare_stream(profile, n_objects, span_seconds=window * 3.0, seed=seed)
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for alpha in alphas:
        query = default_query_for_profile(profile, alpha=alpha)
        for name in algorithms:
            outcome = measure_approximation_ratio(
                name, query, stream, exact="ccs", sample_every=sample_every
            )
            series[name][alpha] = outcome.mean_percent
    return series


# ---------------------------------------------------------------------------
# Table IV — approximation ratio vs window length
# ---------------------------------------------------------------------------
def ratio_vs_window(
    profile: DatasetProfile,
    n_objects: int = 1500,
    seed: int = 7,
    window_values: Sequence[float] | None = None,
    algorithms: Sequence[str] = APPROX_ALGORITHMS,
    sample_every: int = 20,
) -> dict[str, dict[float, float]]:
    """Approximation ratio (%) of GAPS / MGAPS as the window varies (Table IV)."""
    if window_values is None:
        window_values = window_values_for(profile)
    stream = prepare_stream(
        profile, n_objects, span_seconds=_sweep_span(window_values), seed=seed
    )
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for window in window_values:
        query = default_query_for_profile(profile, window_seconds=window)
        for name in algorithms:
            outcome = measure_approximation_ratio(
                name, query, stream, exact="ccs", sample_every=sample_every
            )
            series[name][window] = outcome.mean_percent
    return series


# ---------------------------------------------------------------------------
# Figure 8 — scalability with the arrival rate
# ---------------------------------------------------------------------------
def scalability_vs_arrival_rate(
    profiles: Iterable[DatasetProfile],
    algorithm: str,
    n_objects: int = 2000,
    seed: int = 7,
    rates_per_day: Sequence[float] = ARRIVAL_RATE_SWEEP,
    window_seconds: float = 3600.0,
) -> dict[str, dict[float, float]]:
    """Processing time per hour of stream as the arrival rate grows (Figure 8).

    Following the paper's protocol, the *same* objects are re-timed so that
    the stream runs at each target rate; the reported metric is seconds of
    processing per hour of stream time.
    """
    series: dict[str, dict[float, float]] = {}
    for profile in profiles:
        base = generate_profile_stream(profile, n_objects=n_objects, seed=seed)
        points: dict[float, float] = {}
        for rate in rates_per_day:
            duration = n_objects / rate * 86_400.0
            stream = stretch_to_duration(base, duration)
            query = default_query_for_profile(profile, window_seconds=window_seconds)
            outcome = run_detector(algorithm, query, stream, warmup="none")
            points[rate] = processing_time_per_hour_of_stream(
                outcome.timing.total, outcome.stream_span_seconds
            )
        series[profile.name] = points
    return series


# ---------------------------------------------------------------------------
# Figure 9 — top-k detection
# ---------------------------------------------------------------------------
def topk_runtime_vs_window(
    profile: DatasetProfile,
    n_objects: int = 1200,
    seed: int = 7,
    k: int = 3,
    window_values: Sequence[float] | None = None,
    algorithms: Sequence[str] = TOPK_ALGORITHMS,
) -> dict[str, dict[float, float]]:
    """Mean per-object time (µs) of the top-k detectors vs window (Fig 9 a-c)."""
    if window_values is None:
        window_values = window_values_for(profile)
    stream = prepare_stream(
        profile, n_objects, span_seconds=_sweep_span(window_values), seed=seed
    )
    series: dict[str, dict[float, float]] = {name: {} for name in algorithms}
    for window in window_values:
        query = default_query_for_profile(profile, window_seconds=window, k=k)
        for name in algorithms:
            outcome = run_detector(name, query, stream)
            series[name][window] = outcome.mean_time_per_object_micros
    return series


def topk_runtime_vs_k(
    profile: DatasetProfile,
    algorithm: str,
    n_objects: int = 1200,
    seed: int = 7,
    k_values: Sequence[int] = K_SWEEP,
) -> dict[int, float]:
    """Mean per-object time (µs) of one top-k detector as k varies (Fig 9 d-f)."""
    window = profile.default_window_seconds
    stream = prepare_stream(profile, n_objects, span_seconds=window * 3.0, seed=seed)
    points: dict[int, float] = {}
    for k in k_values:
        query = default_query_for_profile(profile, k=k)
        outcome = run_detector(algorithm, query, stream)
        points[k] = outcome.mean_time_per_object_micros
    return points


# ---------------------------------------------------------------------------
# Appendix L — case study (keyword-filtered bursty regions)
# ---------------------------------------------------------------------------
def case_study(
    keyword: str = "concert",
    n_background: int = 1500,
    seed: int = 11,
    algorithm: str = "ccs",
) -> dict[str, object]:
    """Plant a keyword event, run the detector on the filtered stream, report hit/miss.

    Mirrors the paper's case study: only objects carrying ``keyword`` are fed
    to the detector, and the detected bursty region is compared against the
    planted event's footprint.
    """
    profile = PROFILES["us"]
    extent = profile.extent
    window = 1800.0
    span = window * 4.0
    event = KeywordEvent(
        keyword=keyword,
        center_x=(extent.min_x + extent.max_x) / 2.0,
        center_y=(extent.min_y + extent.max_y) / 2.0,
        start_time=span * 0.7,
        duration=window,
        radius_x=profile.default_rect_width / 2.0,
        radius_y=profile.default_rect_height / 2.0,
        rate_multiplier=4.0,
    )
    stream = generate_keyword_stream(
        extent=extent,
        n_background=n_background,
        arrival_rate_per_hour=n_background / (span / 3600.0),
        events=(event,),
        seed=seed,
    )
    filtered = filter_by_keyword(stream, keyword)
    query = default_query_for_profile(profile, window_seconds=window)
    detector = make_detector(algorithm, query)
    outcome = run_detector(detector, query, filtered, warmup="none")
    detected = outcome.final_result
    hit = detected is not None and detected.region.intersects(event.region)
    return {
        "keyword": keyword,
        "event_region": event.region,
        "detected_region": detected.region if detected is not None else None,
        "detected_score": detected.score if detected is not None else 0.0,
        "objects_with_keyword": len(filtered),
        "hit": hit,
    }
