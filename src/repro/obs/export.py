"""Chrome ``trace_event`` export of the flight recorder.

The output loads in Perfetto (https://ui.perfetto.dev) or Chrome's
``about:tracing``: one process, one thread row ("lane") per pipeline
actor — ``service`` for the ingest path, ``shard0..N`` for shard
execution (process shards ship their spans back with scatter replies),
``server``/``wire`` for the network tier.  Spans are emitted as "X"
(complete) events with microsecond timestamps rebased so the earliest
span starts at t=0, which keeps the viewer's timeline readable.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import FlightRecorder

_PID = 1


def chrome_trace_events(spans: list[tuple]) -> dict:
    """``{"traceEvents": [...]}`` for a list of span tuples."""
    lanes: dict[str, int] = {}
    events: list[dict] = []
    base = min((span[1] for span in spans), default=0.0)
    for stage, start, duration, lane, chunk, meta in spans:
        lane = lane or "main"
        tid = lanes.get(lane)
        if tid is None:
            tid = lanes[lane] = len(lanes) + 1
        args: dict = {}
        if chunk is not None:
            args["chunk"] = chunk
        if meta:
            args.update(meta)
        events.append(
            {
                "name": stage,
                "cat": stage.split(".", 1)[0],
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "ts": (start - base) * 1e6,
                "dur": duration * 1e6,
                "args": args,
            }
        )
    # Thread-name metadata rows so the viewer labels each lane; sort_index
    # keeps the lanes in first-seen order rather than tid-hash order.
    for lane, tid in lanes.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, recorder: FlightRecorder) -> int:
    """Dump the recorder's ring as a Chrome trace; returns the span count."""
    spans = recorder.spans()
    payload = chrome_trace_events(spans)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return len(spans)


def format_stage_table(stage_stats: dict[str, dict]) -> str:
    """Human-readable per-stage summary (the ``repro trace`` footer)."""
    if not stage_stats:
        return "no spans recorded"
    lines = [
        f"{'stage':<20} {'count':>8} {'total':>10} {'mean':>10} "
        f"{'min':>10} {'max':>10}"
    ]
    for stage, data in stage_stats.items():
        count = data["count"]
        total = data["total_seconds"]
        mean = total / count if count else 0.0
        lines.append(
            f"{stage:<20} {count:>8} {total:>9.4f}s {1e3 * mean:>8.3f}ms "
            f"{1e3 * data['min_seconds']:>8.3f}ms "
            f"{1e3 * data['max_seconds']:>8.3f}ms"
        )
    return "\n".join(lines)
