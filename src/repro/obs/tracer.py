"""Stage spans, streaming aggregates, and the flight recorder.

The tracing layer measures *where a chunk's time goes* as it moves
through the pipeline — reorder-buffer hold, keyword routing, window
ingest, the sweep kernel, result settle, bus publish, wire pump — with
an overhead contract enforced by ``benchmarks/bench_obs.py``: a
*disabled* tracer must cost ≤2% on the ingestion hot path and an
*enabled* one ≤10%.

Three pieces:

* :class:`Tracer` — the recording front end.  The hot API is
  :meth:`Tracer.record`, which takes the two ``perf_counter`` readings
  the caller already made; nothing is allocated and no clock is read
  when tracing is off (call sites guard on ``tracer.enabled`` or skip
  the clock reads entirely when no tracer is installed).
* :class:`FlightRecorder` — a bounded ring of the most recent spans plus
  per-stage streaming aggregates (count, total, min/max, HDR-style
  log-bucketed latency histogram) and a bounded list of slow-chunk
  captures.  The whole recorder pickles, so a service checkpoint can
  carry it and a ``--resume`` can explain its own recovery.
* The module-global *current tracer* (:func:`install` / :func:`current`
  / :func:`activate`) — how deep, otherwise-pure call sites (the sweep
  kernel, the window pair, the wire codec) find the tracer without
  threading it through every signature.  ``activate`` is a
  thread-local override so concurrent shard threads never cross-record.

Span representation
-------------------
A span is a plain tuple — the cheapest picklable thing Python has —
``(stage, start, duration, lane, chunk_index, meta)`` with times in
``perf_counter`` seconds.  ``lane`` groups spans into rows in the
Chrome-trace export (``service``, ``shard0..N``, ``server``, ``wire``);
shards leave it ``None`` and the service stamps their lane when the
spans ship back with the scatter reply.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter

#: Stage names threaded through the pipeline.  Not enforced — a span may
#: carry any stage string (e.g. ``sweep.numpy``) — but every built-in
#: call site uses one of these prefixes.
STAGES = (
    "ingest.reorder",
    "ingest.quarantine",
    "route.bucket",
    "window.observe",
    "sweep.python",
    "sweep.numpy",
    "settle",
    "checkpoint",
    "bus.publish",
    "server.pump",
    "wire.encode",
    "wire.decode",
    "remote.scatter",
    "remote.failover",
)

#: HDR-style log-bucketed histogram bounds (seconds): a 1–2.5–5 ladder
#: per decade from 10 µs to 10 s, plus the implicit +Inf bucket.  Chosen
#: to straddle everything from a single sweep call (~µs) to a stalled
#: checkpoint (~s) with ~15% relative error.
HISTOGRAM_BOUNDS = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: Default flight-recorder ring capacity (spans).
DEFAULT_RING_SIZE = 4096

#: Slow-chunk captures kept (oldest evicted first).
DEFAULT_SLOW_CHUNK_CAPACITY = 32


class StageAggregate:
    """Streaming per-stage aggregate: count, total, min/max, histogram.

    ``buckets`` holds *non-cumulative* counts, one per
    :data:`HISTOGRAM_BOUNDS` entry plus a final +Inf bucket; the
    Prometheus renderer re-accumulates them into ``le`` form.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.buckets[bisect_left(HISTOGRAM_BOUNDS, seconds)] += 1

    def merge(self, other: "StageAggregate") -> None:
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, value in enumerate(other.buckets):
            self.buckets[index] += value

    def to_dict(self) -> dict:
        """JSON form carried on the ``stats`` wire frame and /metrics."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "buckets": list(self.buckets),
        }

    @staticmethod
    def from_dict(record: dict) -> "StageAggregate":
        aggregate = StageAggregate()
        aggregate.count = int(record.get("count", 0))
        aggregate.total = float(record.get("total_seconds", 0.0))
        aggregate.min = (
            float(record.get("min_seconds", 0.0))
            if aggregate.count
            else float("inf")
        )
        aggregate.max = float(record.get("max_seconds", 0.0))
        buckets = list(record.get("buckets", ()))
        if len(buckets) == len(HISTOGRAM_BOUNDS) + 1:
            aggregate.buckets = [int(value) for value in buckets]
        return aggregate


class FlightRecorder:
    """Bounded span ring + per-stage aggregates + slow-chunk captures.

    Thread-safe (spans arrive from the ingest thread, the server's pump
    threads, and the asyncio loop) and picklable: the lock is dropped on
    ``__getstate__`` and rebuilt on ``__setstate__``, everything else is
    plain tuples/dicts, so a checkpoint can carry the recorder and a
    resumed service starts with its pre-crash history intact.
    """

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        slow_chunk_capacity: int = DEFAULT_SLOW_CHUNK_CAPACITY,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.ring_size = int(ring_size)
        self._ring: list[tuple] = []
        self._aggregates: dict[str, StageAggregate] = {}
        self._slow_chunks: list[dict] = []
        self._slow_chunk_capacity = int(slow_chunk_capacity)
        self.slow_chunk_count = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------
    def record(self, span: tuple) -> None:
        with self._lock:
            self._record_locked(span)

    def record_many(self, spans: list[tuple]) -> None:
        with self._lock:
            for span in spans:
                self._record_locked(span)

    def _record_locked(self, span: tuple) -> None:
        ring = self._ring
        ring.append(span)
        if len(ring) > self.ring_size:
            # Amortised trim: shed the oldest half in one slice instead
            # of paying a popleft per span (a deque would not pickle its
            # maxlen portably across refactors; a list slice is simpler
            # and just as bounded).
            del ring[: len(ring) - self.ring_size]
        stage = span[0]
        aggregate = self._aggregates.get(stage)
        if aggregate is None:
            aggregate = self._aggregates[stage] = StageAggregate()
        aggregate.observe(span[2])

    def record_slow_chunk(self, record: dict) -> int:
        """Capture one slow-chunk record; returns the running count."""
        with self._lock:
            self.slow_chunk_count += 1
            self._slow_chunks.append(record)
            if len(self._slow_chunks) > self._slow_chunk_capacity:
                del self._slow_chunks[0]
            return self.slow_chunk_count

    # -- reading -------------------------------------------------------
    def spans(self) -> list[tuple]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain_spans(self) -> list[tuple]:
        """Pop every buffered span (shard-side shipping)."""
        with self._lock:
            spans, self._ring = self._ring, []
            return spans

    def slow_chunks(self) -> list[dict]:
        with self._lock:
            return list(self._slow_chunks)

    def stage_stats(self) -> dict[str, dict]:
        """Per-stage aggregates as JSON-ready dicts, stage-sorted."""
        with self._lock:
            return {
                stage: self._aggregates[stage].to_dict()
                for stage in sorted(self._aggregates)
            }

    # -- pickling ------------------------------------------------------
    def __getstate__(self) -> dict:
        with self._lock:
            state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Tracer:
    """The recording front end installed on a service, shard, or server.

    ``enabled`` is the single hot-path gate: call sites read it once,
    skip their ``perf_counter`` pair entirely when it is false, and call
    :meth:`record` with readings they already made when it is true — so
    the *disabled* cost is one attribute load and one branch.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        ring_size: int = DEFAULT_RING_SIZE,
        slow_chunk_threshold: float | None = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.recorder = FlightRecorder(ring_size=ring_size)
        if slow_chunk_threshold is not None and slow_chunk_threshold < 0:
            raise ValueError(
                f"slow_chunk_threshold must be >= 0 seconds, "
                f"got {slow_chunk_threshold}"
            )
        self.slow_chunk_threshold = slow_chunk_threshold

    def record(
        self,
        stage: str,
        started: float,
        ended: float,
        *,
        lane: str | None = None,
        chunk: int | None = None,
        meta: dict | None = None,
    ) -> None:
        """Record one finished span from the caller's clock readings."""
        if not self.enabled:
            return
        self.recorder.record((stage, started, ended - started, lane, chunk, meta))

    @contextmanager
    def span(
        self,
        stage: str,
        *,
        lane: str | None = None,
        chunk: int | None = None,
        meta: dict | None = None,
    ):
        """Context-manager convenience for cold paths (CLI, checkpoint)."""
        if not self.enabled:
            yield
            return
        started = perf_counter()
        try:
            yield
        finally:
            self.recorder.record(
                (stage, started, perf_counter() - started, lane, chunk, meta)
            )

    def drain_spans(self) -> list[tuple]:
        """Pop buffered spans (shards ship these back with replies)."""
        return self.recorder.drain_spans()

    def stage_stats(self) -> dict[str, dict]:
        return self.recorder.stage_stats()


# ----------------------------------------------------------------------
# The module-global current tracer
# ----------------------------------------------------------------------
_GLOBAL: Tracer | None = None
_TLS = threading.local()


def install(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the process-wide tracer."""
    global _GLOBAL
    _GLOBAL = tracer


def current() -> Tracer | None:
    """The active tracer: the thread-local override, else the global."""
    tracer = getattr(_TLS, "tracer", None)
    return tracer if tracer is not None else _GLOBAL


@contextmanager
def activate(tracer: Tracer | None):
    """Thread-locally override :func:`current` (shard message handling).

    Concurrent shard threads each activate their own tracer, so spans
    recorded by shared code (the sweep kernel, the window pair) land in
    the tracer of the shard actually doing the work.
    """
    previous = getattr(_TLS, "tracer", None)
    _TLS.tracer = tracer
    try:
        yield
    finally:
        _TLS.tracer = previous
