"""Structured JSON logging for the service/server loggers.

Opt-in via ``repro serve --log-json`` or ``REPRO_LOG_JSON=1``: one
:class:`JsonLogFormatter` attached to the ``repro`` logger turns every
log line from the existing ``repro.*`` loggers (``service.service``,
``service.bus``, ``server.engine``, ``server.server``) into one JSON
object per line::

    {"ts": 1754550000.123456, "level": "WARNING",
     "logger": "repro.service.service", "event": "quarantined record ...",
     "reason": "nan_timestamp", "chunk_index": 12}

``event`` is the rendered message; any ``extra={...}`` fields the call
site passed ride along as top-level keys, which is what makes
subscriber-fault / quarantine / degraded-mode / slow-chunk events
machine-parseable instead of grep-parseable.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: Attributes every LogRecord carries; anything else came from ``extra=``.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "module", "msecs",
        "message", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class JsonLogFormatter(logging.Formatter):
    """Render each record as one JSON object: ``{ts, level, logger, event, **fields}``."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and key not in payload:
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        # default=str: extra= fields may carry Paths, specs, exceptions —
        # a log line must never raise, so everything coerces.
        return json.dumps(payload, default=str, allow_nan=True)


def enable_json_logging(
    *, level: int = logging.INFO, stream: IO[str] | None = None
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger tree.

    Every ``repro.*`` logger propagates to it, so one handler covers the
    whole pipeline.  Returns the handler (tests detach it again).
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(level)
    return handler
