"""Observability: stage spans, flight recorder, histograms, exports.

See :mod:`repro.obs.tracer` for the recording model,
:mod:`repro.obs.export` for the Chrome ``trace_event`` dump, and
:mod:`repro.obs.logjson` for the structured-logging opt-in.
"""

from repro.obs.export import (
    chrome_trace_events,
    format_stage_table,
    write_chrome_trace,
)
from repro.obs.logjson import JsonLogFormatter, enable_json_logging
from repro.obs.tracer import (
    DEFAULT_RING_SIZE,
    HISTOGRAM_BOUNDS,
    STAGES,
    FlightRecorder,
    StageAggregate,
    Tracer,
    activate,
    current,
    install,
)

__all__ = [
    "DEFAULT_RING_SIZE",
    "HISTOGRAM_BOUNDS",
    "STAGES",
    "FlightRecorder",
    "JsonLogFormatter",
    "StageAggregate",
    "Tracer",
    "activate",
    "chrome_trace_events",
    "current",
    "enable_json_logging",
    "format_stage_table",
    "install",
    "write_chrome_trace",
]
