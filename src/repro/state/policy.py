"""When to take a checkpoint: every N chunks and/or every T stream-seconds.

The policy is deliberately defined on *stream* time, not wall time: a
replayed historical stream should produce the same checkpoint cadence as the
live run did, so recovery behaviour is reproducible in tests and benchmarks.
Chunk count is the natural unit of the ingestion path (one WAL record, one
shard broadcast per chunk); stream seconds bound the replay horizon for slow
streams where a chunk budget alone could leave hours between snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint cadence: whichever configured trigger fires first.

    Parameters
    ----------
    every_chunks:
        Take a checkpoint once this many chunks were ingested since the last
        one (``None`` disables the chunk trigger).
    every_stream_seconds:
        Take a checkpoint once the stream clock advanced this far past the
        last checkpoint's stream time (``None`` disables the time trigger).

    A policy with both triggers disabled is valid and means "manual
    checkpoints only" (explicit :meth:`~repro.service.SurgeService.checkpoint`
    calls still work).
    """

    every_chunks: int | None = None
    every_stream_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.every_chunks is not None and self.every_chunks < 1:
            raise ValueError(
                f"every_chunks must be a positive chunk count, got "
                f"{self.every_chunks}"
            )
        if self.every_stream_seconds is not None and (
            self.every_stream_seconds <= 0
            or math.isnan(self.every_stream_seconds)
        ):
            raise ValueError(
                f"every_stream_seconds must be a positive duration, got "
                f"{self.every_stream_seconds}"
            )

    @property
    def automatic(self) -> bool:
        """Whether any trigger is configured at all."""
        return self.every_chunks is not None or self.every_stream_seconds is not None

    def due(
        self,
        chunks_since_checkpoint: int,
        stream_time: float,
        checkpoint_stream_time: float,
    ) -> bool:
        """Whether a checkpoint should be taken now.

        ``checkpoint_stream_time`` is the stream time recorded at the last
        checkpoint (``-inf`` before the first, which makes the time trigger
        fire on the first opportunity — the earliest durable point).
        """
        if chunks_since_checkpoint < 1:
            return False  # nothing new to persist
        if self.every_chunks is not None and chunks_since_checkpoint >= self.every_chunks:
            return True
        if self.every_stream_seconds is not None and (
            stream_time - checkpoint_stream_time >= self.every_stream_seconds
        ):
            return True
        return False

    def to_dict(self) -> dict:
        """JSON form stored in the service manifest (for resume)."""
        return {
            "every_chunks": self.every_chunks,
            "every_stream_seconds": self.every_stream_seconds,
        }

    @staticmethod
    def from_dict(record: dict) -> "CheckpointPolicy":
        return CheckpointPolicy(
            every_chunks=record.get("every_chunks"),
            every_stream_seconds=record.get("every_stream_seconds"),
        )
