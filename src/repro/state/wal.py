"""Chunk-offset write-ahead log for the checkpoint subsystem.

The durable state of a service is a *snapshot* (taken every N chunks / T
stream-seconds) plus this log.  The WAL records, per ingested chunk, the
chunk offset, its object count and its end-of-chunk stream time; at every
checkpoint it is atomically rewritten to start from a ``checkpoint`` record.
Recovery therefore needs no scan of the stream itself::

    last checkpoint record  ->  which snapshot generation to load, and the
                                chunk offset its state already contains
    chunk records after it  ->  exactly the chunks whose effects were lost
                                with the process (they are re-applied by
                                replaying the stream from the snapshot's
                                offset via ``iter_chunks(start_offset=...)``)

This gives exactly-once resume semantics with respect to durable state: a
chunk is either inside the snapshot (offset < checkpoint offset) or replayed
(offset >= checkpoint offset) — never both, never neither — for any stream
source that can reproduce its chunk sequence (same source, same chunk size).

Format: JSON Lines.  The first line is a header ``{"schema": "wal/v1"}``;
every following line is one record with a ``"type"`` of ``"chunk"`` or
``"checkpoint"``.  Appends are flushed per record but not fsynced (the WAL
is an optimisation aid — losing its tail costs only re-replayed chunks, which
resume handles anyway); a torn final line from a crash mid-append is detected
and ignored on read.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.state.snapshot import SnapshotError, check_schema

#: The WAL format version this build reads and writes.
WAL_SCHEMA = "wal/v1"


@dataclass(frozen=True)
class WalCheckpoint:
    """A ``checkpoint`` WAL record: durable state exists up to ``chunk_offset``."""

    chunk_offset: int
    generation: int
    stream_time: float | None = None


@dataclass
class WalState:
    """Everything a recovery needs from one read of the WAL."""

    #: The last checkpoint record, or ``None`` if none was ever written.
    checkpoint: WalCheckpoint | None = None
    #: Chunk records appended after the last checkpoint (offset order).
    chunks_after_checkpoint: list[dict[str, Any]] = field(default_factory=list)
    #: Whether a torn (unparseable) final line was skipped.
    torn_tail: bool = False

    @property
    def lost_chunks(self) -> int:
        """Chunks whose effects died with the process (replayed on resume)."""
        return len(self.chunks_after_checkpoint)

    @property
    def next_chunk_offset(self) -> int:
        """The offset of the first chunk the crashed process never applied."""
        if self.chunks_after_checkpoint:
            return int(self.chunks_after_checkpoint[-1]["chunk"]) + 1
        if self.checkpoint is not None:
            return self.checkpoint.chunk_offset
        return 0


class ChunkWal:
    """Append-only chunk-offset log with atomic checkpoint rewrites.

    Records are appended with an open-append-close per call: one chunk is
    hundreds of objects, so the syscall cost is noise, and never holding a
    file handle keeps the WAL trivially safe across ``fork`` (process shard
    executors) and object lifetime bugs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if not self.path.exists():
            self._rewrite([])

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_chunk(
        self, chunk_offset: int, objects: int, end_time: float | None
    ) -> None:
        """Record that the chunk at ``chunk_offset`` was applied in memory."""
        self._append(
            {
                "type": "chunk",
                "chunk": int(chunk_offset),
                "objects": int(objects),
                "end_time": end_time,
            }
        )

    def mark_checkpoint(self, checkpoint: WalCheckpoint) -> None:
        """Atomically restart the log from a ``checkpoint`` record.

        Chunk records before a checkpoint are dead weight (their effects are
        inside the snapshot), so the log is rewritten rather than appended —
        the WAL stays O(chunks since last checkpoint) on disk.
        """
        self.reset(checkpoint)

    def reset(self, checkpoint: WalCheckpoint | None = None) -> None:
        """Atomically rewrite the log: header plus an optional checkpoint.

        A service attaching to a directory calls this so the ledger starts
        from *its* durable state — a stale log left by a previous run (or by
        the crash the attach is recovering from) would otherwise record the
        replayed chunks twice and break the exactly-once reading.
        """
        records = []
        if checkpoint is not None:
            records.append(
                {
                    "type": "checkpoint",
                    "chunk_offset": checkpoint.chunk_offset,
                    "generation": checkpoint.generation,
                    "stream_time": checkpoint.stream_time,
                }
            )
        self._rewrite(records)

    def _append(self, record: dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def _rewrite(self, records: list[dict[str, Any]]) -> None:
        lines = [json.dumps({"schema": WAL_SCHEMA}, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in records)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @staticmethod
    def read(path: str | Path) -> WalState:
        """Parse a WAL file into a :class:`WalState` (torn tail tolerated)."""
        path = Path(path)
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        if not raw_lines:
            raise SnapshotError(f"{path}: empty write-ahead log (missing header)")
        try:
            header = json.loads(raw_lines[0])
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{path}: corrupt WAL header: {exc}") from exc
        if not isinstance(header, dict):
            raise SnapshotError(f"{path}: corrupt WAL header: not a JSON object")
        check_schema(header.get("schema"), WAL_SCHEMA, path, "write-ahead log")

        state = WalState()
        for index, line in enumerate(raw_lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(raw_lines):
                    # Torn final line: the process died mid-append.  Its
                    # chunk is simply replayed on resume.
                    state.torn_tail = True
                    break
                raise SnapshotError(
                    f"{path}: corrupt WAL record on line {index} "
                    f"(not the final line, so this is not a torn append)"
                )
            if record.get("type") == "checkpoint":
                state.checkpoint = WalCheckpoint(
                    chunk_offset=int(record["chunk_offset"]),
                    generation=int(record["generation"]),
                    stream_time=record.get("stream_time"),
                )
                state.chunks_after_checkpoint = []
            elif record.get("type") == "chunk":
                state.chunks_after_checkpoint.append(record)
            else:
                raise SnapshotError(
                    f"{path}: unknown WAL record type {record.get('type')!r} "
                    f"on line {index}"
                )
        return state
