"""Versioned, schema-tagged snapshot files for durable monitor/service state.

A snapshot file is the unit of durability of the checkpoint subsystem: one
file holds the complete live state of a :class:`~repro.core.monitor.
SurgeMonitor` (window deques, per-detector incremental state — cell records,
lazy bound heaps, memoised candidates, top-k dirty flags — and the objects
counter) or of one service shard (every query pipeline it hosts, plus the
routing counters), together with enough header metadata to decide *whether*
the payload can be read at all before touching it.

File format (``snapshot/v1``)
-----------------------------
::

    REPRO-SNAPSHOT\\n                 16-byte ASCII magic line
    {"schema": "snapshot/v1", ...}\\n one JSON header line (UTF-8)
    <pickle bytes>                    the payload

The header carries ``schema`` (the codec version), ``kind`` (what the
payload is: ``"monitor"``, ``"service-shard"``, ...), a free-form
``meta`` mapping (chunk offsets, stream time, generation numbers), and —
since the robustness pass — a ``crc32`` / ``payload_bytes`` pair over the
pickle bytes.  The header is parsed and validated *before* the payload is
unpickled, so a snapshot written by a newer codec fails with a clear
:class:`SnapshotSchemaError` instead of a confusing unpickling crash, and
a truncated or bit-rotted payload fails the checksum with a clear
:class:`SnapshotError` instead of unpickling garbage (unpickling corrupt
bytes can execute arbitrary reduce hooks — the checksum runs first).
Files written before the checksum existed carry no ``crc32`` and still
load.

Writes are atomic: the file is assembled under a temporary name in the same
directory, flushed and fsynced, then moved into place with :func:`os.replace`
— a crash mid-write can never leave a truncated snapshot under the final
name, so recovery can always trust any snapshot a manifest points at.

The payload codec is :mod:`pickle`: every piece of detector state is plain
Python data (deques, dicts, dataclasses, heap lists), and pickling round-trips
floats, container ordering and object identity-sharing exactly — which is
what makes restore-then-resume *bit-identical* to an uninterrupted run.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import zlib
from pathlib import Path
from typing import Any, Mapping

#: Magic first line of every snapshot file.
SNAPSHOT_MAGIC = b"REPRO-SNAPSHOT\n"

#: The codec version this build reads and writes.
SNAPSHOT_SCHEMA = "snapshot/v1"


class SnapshotError(RuntimeError):
    """A snapshot file could not be written or read."""


class SnapshotSchemaError(SnapshotError):
    """A snapshot (or WAL / manifest) carries a schema this build cannot read."""


def check_schema(found: Any, expected: str, path: str | Path, what: str) -> None:
    """Raise :class:`SnapshotSchemaError` unless ``found == expected``.

    Shared by the snapshot codec, the WAL and the service manifest so every
    durable file fails version drift with the same clear message shape.
    """
    if found != expected:
        raise SnapshotSchemaError(
            f"{path}: {what} has schema {found!r}, but this build only reads "
            f"{expected!r}; the file was written by an incompatible version — "
            f"re-create the checkpoint with this version (or read the file "
            f"with the version that wrote it)"
        )


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (same-directory temp + replace)."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise


def write_snapshot(
    path: str | Path,
    kind: str,
    payload: Any,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Serialise ``payload`` to ``path`` as a ``snapshot/v1`` file.

    Returns the header that was written.  The write is atomic; on any
    failure the previous file at ``path`` (if one existed) is untouched.
    """
    try:
        payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickling failure: unserialisable state
        raise SnapshotError(f"cannot snapshot {kind!r} state to {path}: {exc}") from exc
    header = {
        "schema": SNAPSHOT_SCHEMA,
        "kind": kind,
        "meta": dict(meta) if meta else {},
        # Integrity check of the payload, verified before unpickling on
        # read.  Same schema version: readers without the field ignore it,
        # files without the field skip verification.
        "crc32": zlib.crc32(payload_bytes),
        "payload_bytes": len(payload_bytes),
    }
    buffer = io.BytesIO()
    buffer.write(SNAPSHOT_MAGIC)
    buffer.write(json.dumps(header, sort_keys=True).encode("utf-8"))
    buffer.write(b"\n")
    buffer.write(payload_bytes)
    _atomic_write_bytes(Path(path), buffer.getvalue())
    return header


def read_snapshot_header(path: str | Path) -> dict[str, Any]:
    """Read and validate only the header of a snapshot file.

    Cheap (no payload unpickling); used to probe checkpoint directories and
    to produce clear errors for files from other codec versions.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(SNAPSHOT_MAGIC))
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(
                f"{path} is not a repro snapshot file (bad magic "
                f"{magic[:16]!r}; expected {SNAPSHOT_MAGIC!r})"
            )
        header_line = handle.readline()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header: {exc}") from exc
    if not isinstance(header, dict):
        raise SnapshotError(f"{path}: corrupt snapshot header: not a JSON object")
    check_schema(header.get("schema"), SNAPSHOT_SCHEMA, path, "snapshot file")
    return header


def read_snapshot(
    path: str | Path, expected_kind: str | None = None
) -> tuple[dict[str, Any], Any]:
    """Read a snapshot file; returns ``(header, payload)``.

    The header is validated (magic, schema version, optionally ``kind``)
    before the payload is unpickled.
    """
    header = read_snapshot_header(path)
    if expected_kind is not None and header.get("kind") != expected_kind:
        raise SnapshotError(
            f"{path} holds a {header.get('kind')!r} snapshot, not the "
            f"expected {expected_kind!r}"
        )
    with open(path, "rb") as handle:
        handle.read(len(SNAPSHOT_MAGIC))
        handle.readline()
        payload_bytes = handle.read()
    expected_crc = header.get("crc32")
    if expected_crc is not None:
        # Verified *before* unpickling: corrupt pickle bytes can execute
        # arbitrary reduce hooks, so garbage must never reach the codec.
        expected_size = header.get("payload_bytes")
        if expected_size is not None and len(payload_bytes) != expected_size:
            raise SnapshotError(
                f"{path}: corrupt snapshot payload: {len(payload_bytes)} bytes "
                f"on disk, header records {expected_size} (truncated or "
                f"overwritten file)"
            )
        found_crc = zlib.crc32(payload_bytes)
        if found_crc != expected_crc:
            raise SnapshotError(
                f"{path}: corrupt snapshot payload: CRC32 mismatch "
                f"(found {found_crc:#010x}, header records "
                f"{expected_crc:#010x}) — the file was truncated or bit-rotted"
            )
    try:
        payload = pickle.loads(payload_bytes)
    except Exception as exc:
        raise SnapshotError(f"{path}: corrupt snapshot payload: {exc}") from exc
    return header, payload
