"""Durable state: versioned snapshots, WAL-backed crash recovery, policies.

This package turns the continuous monitors into restartable services:

* :mod:`repro.state.snapshot` — the ``snapshot/v1`` codec: schema-tagged,
  atomically-written files holding the complete live state of a
  :class:`~repro.core.monitor.SurgeMonitor` or one service shard;
* :mod:`repro.state.wal` — the chunk-offset write-ahead log giving
  exactly-once resume semantics (load last snapshot, replay only the chunks
  after its offset);
* :mod:`repro.state.policy` — :class:`CheckpointPolicy`: every N chunks
  and/or every T stream-seconds;
* :mod:`repro.state.recovery` — the checkpoint-directory layout (per-shard
  snapshot files + service manifest) shared by
  :meth:`repro.service.SurgeService.checkpoint` / ``restore`` and the
  ``repro serve --checkpoint-dir/--resume`` CLI.

Quickstart::

    from repro.state import CheckpointPolicy

    service = SurgeService(
        specs,
        checkpoint_dir="ckpt/",
        checkpoint_policy=CheckpointPolicy(every_chunks=64),
    )
    for updates in service.run(stream, chunk_size=512):
        ...                                   # checkpoints happen inline

    # after a crash:
    service = SurgeService.restore("ckpt/")
    for updates in service.run(stream, chunk_size=512,
                               start_offset=service.chunk_offset):
        ...                                   # replays only the lost tail
"""

from repro.state.policy import CheckpointPolicy
from repro.state.recovery import (
    MANIFEST_SCHEMA,
    ServiceManifest,
    has_checkpoint,
    read_manifest,
    read_previous_manifest,
)
from repro.state.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    SnapshotSchemaError,
    read_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.state.wal import WAL_SCHEMA, ChunkWal, WalCheckpoint, WalState

__all__ = [
    "CheckpointPolicy",
    "ServiceManifest",
    "MANIFEST_SCHEMA",
    "has_checkpoint",
    "read_manifest",
    "read_previous_manifest",
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "SnapshotSchemaError",
    "read_snapshot",
    "read_snapshot_header",
    "write_snapshot",
    "WAL_SCHEMA",
    "ChunkWal",
    "WalCheckpoint",
    "WalState",
]
