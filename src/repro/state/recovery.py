"""Checkpoint-directory layout and the service manifest.

A service checkpoint directory looks like::

    <dir>/
      MANIFEST.json           the service-level manifest (written last)
      wal.log                 chunk-offset write-ahead log (repro.state.wal)
      shard-00.g000003.ckpt   one snapshot file per shard, per generation
      shard-01.g000003.ckpt   (repro.state.snapshot, kind "service-shard")
      ingest.g000003.ckpt     disorder-tolerant tier state, when enabled
      obs.g000003.ckpt        tracing flight recorder, when a tracer is on

Checkpoint protocol (crash-safe by ordering):

1. every shard writes its own generation-``g`` snapshot file (atomic; under
   the process executor each worker process persists its shard
   independently — the shard state never crosses the process boundary);
2. the manifest — query registry, shard assignment, chunk offset, stats,
   and the list of generation-``g`` shard files — is atomically replaced;
3. the WAL is restarted from a ``checkpoint`` record for generation ``g``;
4. older generations' shard files are deleted (best effort).

A crash anywhere in 1–3 leaves the *previous* manifest pointing at the
previous generation's files, all intact.  Recovery reads the manifest, loads
the shard snapshots it names, and replays the stream from
``manifest.chunk_offset`` — see :meth:`repro.service.SurgeService.restore`.

Manifest floats are stored as JSON numbers (Python's ``json`` round-trips
``float`` exactly via ``repr``), except the pre-ingestion stream clock
``-inf``, which is stored as ``None``.
"""

from __future__ import annotations

import json
import logging
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.state.snapshot import SnapshotError, _atomic_write_bytes, check_schema

logger = logging.getLogger(__name__)

#: The manifest format version this build reads and writes.
MANIFEST_SCHEMA = "service-manifest/v1"
MANIFEST_NAME = "MANIFEST.json"
#: Backup of the manifest the last checkpoint replaced.  Restore falls back
#: to it when the current manifest names a shard file whose write was
#: interrupted (a violated atomic-write contract, e.g. power loss between
#: fsync and publish on some filesystems).
MANIFEST_PREV_NAME = "MANIFEST.prev.json"
WAL_NAME = "wal.log"

#: ``kind`` of the per-shard snapshot files in a checkpoint directory.
SHARD_SNAPSHOT_KIND = "service-shard"

#: ``kind`` of the ingest-tier snapshot (reorder buffer + released-but-
#: undispatched objects) written alongside the shard files when the service
#: runs the disorder-tolerant ingestion tier.
INGEST_SNAPSHOT_KIND = "service-ingest"

#: ``kind`` of the observability snapshot (the tracing tier's flight
#: recorder: span ring + per-stage latency aggregates) written alongside the
#: shard files when the service carries a tracer.
OBS_SNAPSHOT_KIND = "service-obs"


def shard_snapshot_name(shard_index: int, generation: int) -> str:
    """File name of one shard's snapshot at one checkpoint generation."""
    return f"shard-{shard_index:02d}.g{generation:06d}.ckpt"


def ingest_snapshot_name(generation: int) -> str:
    """File name of the ingest-tier snapshot at one checkpoint generation."""
    return f"ingest.g{generation:06d}.ckpt"


def obs_snapshot_name(generation: int) -> str:
    """File name of the flight-recorder snapshot at one checkpoint generation."""
    return f"obs.g{generation:06d}.ckpt"


def encode_stream_time(time: float) -> float | None:
    """JSON form of a stream clock (``-inf`` — never ingested — as ``None``)."""
    return None if math.isinf(time) and time < 0 else time


def decode_stream_time(value: float | None) -> float:
    return float("-inf") if value is None else float(value)


@dataclass
class ServiceManifest:
    """Everything :meth:`SurgeService.restore` needs besides the shard files."""

    generation: int
    chunk_offset: int
    chunk_index: int
    stream_time: float
    n_shards: int
    executor: str
    order: list[str]
    shard_of: dict[str, int]
    registered: int
    specs: list[dict]
    policy: dict
    stats: dict
    shard_files: list[str]
    #: Free-form caller metadata (e.g. the CLI records its ``--chunk-size``
    #: here so a resume can refuse a mismatching re-chunking).
    extra: dict = field(default_factory=dict)
    #: Whether the service ran the shared-work execution plan (inverted
    #: keyword routing + shared window groups/detector units, see
    #: :mod:`repro.service.shards`).  Informational: restore re-normalises
    #: the shard state to whichever plan the restored service is given, so
    #: this only selects the *default* when no override is passed.  Absent
    #: in pre-shared-plan manifests, which defaults to the plan those
    #: services effectively ran bit-identically to (either value restores
    #: them correctly).
    shared_plan: bool = True
    #: Disorder-tolerant ingestion tier state (``None`` = strict mode, and
    #: in every pre-robustness manifest): ``max_lateness``, the raw-record
    #: replay offset ``raw_consumed``, the quarantine/subscriber counters,
    #: and the name of the generation's ingest snapshot file (reorder
    #: buffer + released-but-undispatched objects).  Optional field, same
    #: schema version — old manifests load with the tier off.
    ingest: dict | None = None
    #: Overload tier state (``None`` = tier unconfigured, and in every
    #: pre-overload manifest): the :class:`~repro.service.overload.
    #: OverloadConfig` in force, the cumulative :class:`~repro.service.
    #: overload.OverloadStats` (including whether the service was degraded
    #: at checkpoint time, so a resume continues shedding exactly where the
    #: victim stopped), and the ``max_inflight_chunks`` budget.  Optional
    #: field, same schema version — old manifests load with the tier off.
    overload: dict | None = None
    #: Network-tier listener configuration (``None`` = the service was not
    #: serving, and in every pre-server manifest): host/port of the frame
    #: listener and the optional metrics endpoint, plus the serving chunk
    #: size — enough for ``repro serve --resume`` to re-serve the same
    #: endpoint without re-specifying it.  Optional field, same schema
    #: version — old manifests load with no listener recorded.
    server: dict | None = None
    #: Observability tier state (``None`` = no tracer attached, and in every
    #: pre-tracing manifest): whether the tracer was enabled, its slow-chunk
    #: threshold, and the name of the generation's flight-recorder snapshot
    #: (span ring + per-stage latency aggregates).  Optional field, same
    #: schema version — old manifests load with the tier off.
    obs: dict | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "generation": self.generation,
            "chunk_offset": self.chunk_offset,
            "chunk_index": self.chunk_index,
            "stream_time": encode_stream_time(self.stream_time),
            "n_shards": self.n_shards,
            "executor": self.executor,
            "order": list(self.order),
            "shard_of": dict(self.shard_of),
            "registered": self.registered,
            "specs": list(self.specs),
            "policy": dict(self.policy),
            "stats": dict(self.stats),
            "shard_files": list(self.shard_files),
            "extra": dict(self.extra),
            "shared_plan": self.shared_plan,
            "ingest": dict(self.ingest) if self.ingest is not None else None,
            "overload": dict(self.overload) if self.overload is not None else None,
            "server": dict(self.server) if self.server is not None else None,
            "obs": dict(self.obs) if self.obs is not None else None,
        }

    @staticmethod
    def from_dict(record: Mapping[str, Any], path: str | Path) -> "ServiceManifest":
        check_schema(record.get("schema"), MANIFEST_SCHEMA, path, "service manifest")
        try:
            return ServiceManifest(
                generation=int(record["generation"]),
                chunk_offset=int(record["chunk_offset"]),
                chunk_index=int(record["chunk_index"]),
                stream_time=decode_stream_time(record["stream_time"]),
                n_shards=int(record["n_shards"]),
                executor=str(record["executor"]),
                order=list(record["order"]),
                shard_of={key: int(value) for key, value in record["shard_of"].items()},
                registered=int(record["registered"]),
                specs=list(record["specs"]),
                policy=dict(record.get("policy", {})),
                stats=dict(record.get("stats", {})),
                shard_files=list(record["shard_files"]),
                extra=dict(record.get("extra", {})),
                shared_plan=bool(record.get("shared_plan", True)),
                ingest=(
                    dict(record["ingest"])
                    if record.get("ingest") is not None
                    else None
                ),
                overload=(
                    dict(record["overload"])
                    if record.get("overload") is not None
                    else None
                ),
                server=(
                    dict(record["server"])
                    if record.get("server") is not None
                    else None
                ),
                obs=(
                    dict(record["obs"])
                    if record.get("obs") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path}: corrupt service manifest (missing or malformed "
                f"field: {exc})"
            ) from exc


def manifest_path(directory: str | Path) -> Path:
    return Path(directory) / MANIFEST_NAME


def previous_manifest_path(directory: str | Path) -> Path:
    return Path(directory) / MANIFEST_PREV_NAME


def wal_path(directory: str | Path) -> Path:
    return Path(directory) / WAL_NAME


def has_checkpoint(directory: str | Path) -> bool:
    """Whether ``directory`` holds a completed service checkpoint."""
    return manifest_path(directory).exists()


def write_manifest(directory: str | Path, manifest: ServiceManifest) -> Path:
    """Atomically write the manifest into the checkpoint directory.

    The manifest being replaced (if any) is first preserved as
    ``MANIFEST.prev.json`` so restore can fall back one generation when
    the new generation's shard files turn out to be unreadable.
    """
    path = manifest_path(directory)
    if path.exists():
        try:
            _atomic_write_bytes(previous_manifest_path(directory), path.read_bytes())
        except OSError:
            pass  # fallback manifest is best-effort; the primary path is intact
    payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
    _atomic_write_bytes(path, payload.encode("utf-8"))
    return path


def read_manifest(directory: str | Path) -> ServiceManifest:
    """Read and validate the manifest of a checkpoint directory."""
    path = manifest_path(directory)
    if not path.exists():
        raise SnapshotError(
            f"{Path(directory)} holds no service checkpoint "
            f"(missing {MANIFEST_NAME})"
        )
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path}: corrupt service manifest: {exc}") from exc
    if not isinstance(record, dict):
        raise SnapshotError(f"{path}: corrupt service manifest: not a JSON object")
    return ServiceManifest.from_dict(record, path)


def read_previous_manifest(directory: str | Path) -> ServiceManifest | None:
    """The manifest the last checkpoint replaced, or ``None`` if absent/corrupt."""
    path = previous_manifest_path(directory)
    if not path.exists():
        return None
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(record, dict):
            return None
        return ServiceManifest.from_dict(record, path)
    except (OSError, json.JSONDecodeError, SnapshotError):
        return None


def next_generation(directory: str | Path) -> int:
    """The generation number the next checkpoint in ``directory`` should use."""
    if not has_checkpoint(directory):
        return 1
    return read_manifest(directory).generation + 1


#: One structured warning per process for failed prunes — the counter keeps
#: climbing, the log does not.
_prune_warned = False


def prune_generations(directory: str | Path, keep_generation: int) -> int:
    """Remove shard/ingest/obs snapshots from superseded generations.

    The newest generation *and* the one before it are kept — the previous
    generation backs ``MANIFEST.prev.json``, the fallback restore target
    when the newest generation's files were torn by a crash.  Deletion
    failures are counted (and warned about once per process, structured)
    rather than swallowed, so a filling shared checkpoint directory is
    visible in stats before it fills the disk.  Returns the number of
    failed deletes.
    """
    global _prune_warned
    keep_suffixes = {f".g{keep_generation:06d}.ckpt"}
    if keep_generation > 1:
        keep_suffixes.add(f".g{keep_generation - 1:06d}.ckpt")
    directory = Path(directory)
    failed = 0
    first_error: OSError | None = None
    for pattern in ("shard-*.ckpt", "ingest.*.ckpt", "obs.*.ckpt"):
        for path in directory.glob(pattern):
            if not any(path.name.endswith(suffix) for suffix in keep_suffixes):
                try:
                    path.unlink()
                except OSError as exc:
                    failed += 1
                    if first_error is None:
                        first_error = exc
    if failed and not _prune_warned:
        _prune_warned = True
        logger.warning(
            "checkpoint prune left %d stale snapshot file(s) in %s: %s "
            "(counted as prune_errors in stats; the manifest never names "
            "stale files, but the directory will keep growing)",
            failed,
            directory,
            first_error,
            extra={
                "event": "checkpoint_prune_errors",
                "directory": str(directory),
                "failed": failed,
            },
        )
    return failed
