"""Greedy brute-force top-k ground truth on window snapshots.

A thin wrapper around :func:`repro.core.brute.greedy_top_k_brute_force` that
works directly on a :class:`~repro.streams.windows.WindowState`, so tests and
the evaluation harness can validate the streaming top-k detectors at any
instant of a run.
"""

from __future__ import annotations

from repro.core.base import RegionResult
from repro.core.brute import greedy_top_k_brute_force
from repro.core.query import SurgeQuery
from repro.streams.windows import WindowState


def greedy_top_k_snapshot(
    state: WindowState, query: SurgeQuery, k: int | None = None
) -> list[RegionResult]:
    """Exact greedy top-k bursty regions for a window snapshot (Definition 9)."""
    return greedy_top_k_brute_force(
        current=state.current,
        past=state.past,
        query=query,
        k=k,
    )
