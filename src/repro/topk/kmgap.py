"""MGAP-kSURGE: top-k extension of the multi-grid approximation (Algorithm 7).

Each of the four shifted grids contributes its top ``4k`` cells (a cell of
one grid can overlap at most four cells of another, so ``4k`` per grid is
enough to guarantee k non-overlapping winners exist in the merged pool); the
merged pool is then scanned greedily, keeping the best cells that do not
overlap an already-selected one.
"""

from __future__ import annotations

from repro.core.base import RegionResult
from repro.core.mgap import MGapSurge
from repro.core.query import SurgeQuery


class MGapSurgeTopK(MGapSurge):
    """Multi-grid approximate top-k detector (paper's ``kMGAPS``)."""

    name = "kmgaps"
    exact = False

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        """The k best pairwise non-overlapping cells across the four grids."""
        if k is None:
            k = self.query.k
        return super().top_k(k)
