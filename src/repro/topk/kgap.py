"""GAP-kSURGE: top-k extension of the grid-based approximation (Algorithm 6).

GAP-SURGE already maintains every non-empty cell in a score-ordered heap, so
the top-k extension simply reports the k best cells.  Cells of the same grid
never overlap, hence the reported regions are automatically disjoint and the
object-disjoint semantics of Definition 9 holds trivially.
"""

from __future__ import annotations

from repro.core.base import RegionResult
from repro.core.gap import GapSurge
from repro.core.query import SurgeQuery


class GapSurgeTopK(GapSurge):
    """Grid-based approximate top-k detector (paper's ``kGAPS``)."""

    name = "kgaps"
    exact = False

    def result(self) -> RegionResult | None:
        """The best cell (identical to GAP-SURGE)."""
        return super().result()

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        """The k grid cells with the highest burst scores, best first."""
        if k is None:
            k = self.query.k
        return super().top_k(k)
