"""Top-k bursty region detection (Section VI of the paper).

The top-k variant reports ``k`` regions under the greedy, object-disjoint
semantics of Definition 9: the i-th region maximises the burst score computed
over the objects not covered by the first ``i - 1`` regions.

* :class:`~repro.topk.kccs.CellCSPOTTopK` — exact extension of Cell-CSPOT
  (Algorithm 4): rectangle levels, per-level candidate reuse.
* :class:`~repro.topk.kgap.GapSurgeTopK` — GAP-kSURGE (Algorithm 6): the k
  best grid cells.
* :class:`~repro.topk.kmgap.MGapSurgeTopK` — MGAP-kSURGE (Algorithm 7): the k
  best non-overlapping cells across four shifted grids.
* :func:`~repro.topk.greedy_brute.greedy_top_k_snapshot` — brute-force ground
  truth used by the tests.
"""

from repro.topk.kccs import CellCSPOTTopK
from repro.topk.kgap import GapSurgeTopK
from repro.topk.kmgap import MGapSurgeTopK
from repro.topk.greedy_brute import greedy_top_k_snapshot

__all__ = [
    "CellCSPOTTopK",
    "GapSurgeTopK",
    "MGapSurgeTopK",
    "greedy_top_k_snapshot",
]
