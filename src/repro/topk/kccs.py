"""CCS-kSURGE: the exact top-k extension of Cell-CSPOT (Algorithm 4).

Definition 9 of the paper defines the top-k bursty regions greedily: the i-th
region maximises the burst score computed over the objects **not** covered by
the first ``i - 1`` regions.  Through the Theorem 1 reduction this becomes k
chained CSPOT problems: the i-th bursty point is searched over the rectangle
objects that do not cover any of the first ``i - 1`` bursty points (the
paper's *rectangle levels*).

Implementation notes
--------------------
The paper shares work across the k CSPOT problems with per-level upper bounds
and candidate points.  This implementation keeps the same two sharing ideas
in a slightly more conservative form that favours clear correctness:

* the cell grid and its rectangle lists are shared by all levels, and the
  *full* static bound of a cell (over all rectangles, Lemma 2) is used to
  prune the search of every level — excluding rectangles can only lower the
  current-window mass of a point, so the bound stays valid for every level;
* per ``(cell, level)`` the result of the last sweep is memoised together
  with the cell version and the exact set of excluded rectangles it was
  computed under; the memo is reused whenever neither has changed, which is
  the common case when the top-k points are stable across events.

Additionally, the k chained CSPOT problems are **amortized across events**:
processing an event only updates cell state and marks the result list dirty,
and the greedy top-k recomputation runs lazily when ``result()`` /
``top_k()`` is read.  Batch ingestion (``SurgeMonitor.push_many`` or
``process_all`` followed by one read) therefore pays for a single
recomputation per batch instead of one per window event.

The reported regions are exact with respect to Definition 9 (the test suite
checks them against a greedy brute force); the pruning is merely less tight
than the paper's most aggressive bookkeeping, which only affects constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.cell_index import UniformGridIndex
from repro.core.cells import CandidatePoint
from repro.core.query import SurgeQuery
from repro.core.sweep_backends import SweepBackend, resolve_backend
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.geometry.primitives import Rect
from repro.streams.objects import EventBatch, EventKind, RectangleObject, WindowEvent

#: Slack protecting the bound-vs-incumbent pruning from floating-point drift.
_BOUND_TOLERANCE = 1e-9


@dataclass
class _TopKRecord:
    """A rectangle object stored in a cell (shared by all k levels)."""

    rect: RectangleObject
    in_current: bool


@dataclass
class _LevelMemo:
    """Memoised sweep result for one (cell, level) pair."""

    version: int
    excluded: frozenset[int]
    candidate: CandidatePoint | None


@dataclass
class _TopKCell:
    """Per-cell state shared by the k chained CSPOT problems."""

    bounds: Rect
    records: dict[int, _TopKRecord] = field(default_factory=dict)
    static_bound: float = 0.0
    #: Monotone counter bumped whenever the rectangle set or a label changes.
    version: int = 0
    #: level index -> memoised sweep result.
    memos: dict[int, _LevelMemo] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.records


class CellCSPOTTopK(BurstyRegionDetector):
    """Exact continuous top-k detector (paper's ``kCCS``)."""

    name = "kccs"
    exact = True

    def __init__(
        self,
        query: SurgeQuery,
        grid: GridSpec | None = None,
        backend: str | SweepBackend | None = None,
    ) -> None:
        super().__init__(query)
        self.grid = grid if grid is not None else query.base_grid()
        self.cell_index = UniformGridIndex(self.grid)
        self.sweep_backend = resolve_backend(backend)
        self.cells: dict[CellIndex, _TopKCell] = {}
        self._bound_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()
        self._results: list[RegionResult] = []
        #: Whether cell state changed since ``_results`` was last computed.
        self._dirty = False

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return
        rect = obj.to_rectangle(self.query.rect_width, self.query.rect_height)

        for key in self.cell_index.cells_overlapping(
            rect.x, rect.y, rect.x + rect.width, rect.y + rect.height
        ):
            cell = self._update_cell(key, rect, event.kind)
            if cell is not None:
                self._bound_heap.push(key, cell.static_bound)

        # The greedy top-k recomputation is deferred to the next result read
        # (amortization: a batch of events pays for one recomputation).
        self._dirty = True

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch with one bulk bound-heap refresh.

        The greedy recomputation is already lazy (it runs on the next result
        read), so batching here only has to make the state updates cheap:
        per-cell records are updated in the batch's lifecycle-safe order and
        every dirty cell's static bound enters the heap once via
        :meth:`LazyMaxHeap.push_all` instead of once per event.
        """
        processed_before = self.stats.events_processed
        skipped_before = self.stats.events_skipped
        cells = self.cells
        dirty = self._apply_batch_records(
            batch, cells, self._overlapping_cells, self._update_cell
        )
        self._bound_heap.push_all(
            (key, cells[key].static_bound) for key in dirty if key in cells
        )
        accepted = (self.stats.events_processed - processed_before) - (
            self.stats.events_skipped - skipped_before
        )
        if accepted > 0:
            self._dirty = True

    def _update_cell(
        self, key: CellIndex, rect: RectangleObject, kind: EventKind
    ) -> _TopKCell | None:
        """Update one cell's records; returns the surviving (dirty) cell."""
        cell = self.cells.get(key)
        if kind is EventKind.NEW:
            if cell is None:
                cell = _TopKCell(bounds=self.grid.cell_rect(key))
                self.cells[key] = cell
            cell.records[rect.object_id] = _TopKRecord(rect=rect, in_current=True)
            cell.static_bound += rect.weight / self.query.current_length
        elif kind is EventKind.GROWN:
            if cell is None:
                return None
            record = cell.records.get(rect.object_id)
            if record is None:
                return None
            record.in_current = False
            cell.static_bound -= rect.weight / self.query.current_length
        else:  # EXPIRED
            if cell is None:
                return None
            if cell.records.pop(rect.object_id, None) is None:
                return None
            if cell.is_empty:
                del self.cells[key]
                self._bound_heap.remove(key)
                return None
        cell.version += 1
        return cell

    # ------------------------------------------------------------------
    # Greedy top-k computation (the k chained CSPOT problems)
    # ------------------------------------------------------------------
    def _ensure_results(self) -> None:
        """Recompute the memoised top-k list if events arrived since last read.

        Note on stats: with lazy recomputation, ``events_triggering_search``
        counts *result reads* that performed at least one cell search, so
        ``search_trigger_ratio`` depends on the read cadence and is not
        comparable to the eager detectors' per-event ratio (Table II only
        reports that metric for ccs/bccs, which are unaffected).
        """
        if not self._dirty:
            return
        searches_before = self.stats.cells_searched
        self._results = self._compute_top_k()
        self._dirty = False
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def _compute_top_k(self) -> list[RegionResult]:
        excluded: set[int] = set()
        results: list[RegionResult] = []
        for level in range(self.query.k):
            best = self._best_point_excluding(level, excluded)
            if best is None or (best.fc <= 0.0 and best.fp <= 0.0):
                break
            results.append(
                RegionResult.from_point(
                    best.point, best.score, self.query, fc=best.fc, fp=best.fp
                )
            )
            excluded |= self._rectangles_covering(best.point)
        return results

    def _best_point_excluding(
        self, level: int, excluded: set[int]
    ) -> CandidatePoint | None:
        """The bursty point over rectangles not in ``excluded`` (level-i CSPOT)."""
        best: CandidatePoint | None = None
        popped: list[tuple[CellIndex, float]] = []
        while True:
            top = self._bound_heap.peek()
            if top is None:
                break
            key, bound = top
            if best is not None and bound <= best.score + _BOUND_TOLERANCE:
                break
            self._bound_heap.pop()
            popped.append((key, bound))
            cell = self.cells.get(key)
            if cell is None:
                continue
            candidate = self._cell_candidate(key, cell, level, excluded)
            if candidate is not None and (best is None or candidate.score > best.score):
                best = candidate
        for key, bound in popped:
            if key in self.cells:
                self._bound_heap.push(key, bound)
        return best

    def _cell_candidate(
        self, key: CellIndex, cell: _TopKCell, level: int, excluded: set[int]
    ) -> CandidatePoint | None:
        """Best point of one cell for one level, reusing the memo when possible."""
        local_excluded = frozenset(excluded & cell.records.keys())
        memo = cell.memos.get(level)
        if (
            memo is not None
            and memo.version == cell.version
            and memo.excluded == local_excluded
        ):
            return memo.candidate

        self.stats.cells_searched += 1
        labeled = [
            LabeledRect(
                record.rect.x,
                record.rect.y,
                record.rect.x + record.rect.width,
                record.rect.y + record.rect.height,
                record.rect.weight,
                record.in_current,
            )
            for object_id, record in cell.records.items()
            if object_id not in local_excluded
        ]
        candidate: CandidatePoint | None = None
        if labeled:
            outcome = sweep_bursty_point(
                labeled,
                alpha=self.query.alpha,
                current_length=self.query.current_length,
                past_length=self.query.past_length,
                bounds=cell.bounds,
                backend=self.sweep_backend,
            )
            if outcome is not None:
                self.stats.rectangles_swept += outcome.rectangles_swept
                candidate = CandidatePoint(
                    point=outcome.point,
                    score=outcome.score,
                    fc=outcome.fc,
                    fp=outcome.fp,
                    valid=True,
                )
        cell.memos[level] = _LevelMemo(
            version=cell.version, excluded=local_excluded, candidate=candidate
        )
        return candidate

    def _rectangles_covering(self, point) -> set[int]:
        """Ids of all live rectangle objects covering ``point``."""
        key = self.grid.cell_of(point.x, point.y)
        covering: set[int] = set()
        # Any rectangle covering the point overlaps every cell containing it,
        # so scanning the cell addressed by the point is sufficient; we also
        # scan neighbouring cells when the point lies exactly on a grid line.
        candidates = {key}
        cell_rect = self.grid.cell_rect(key)
        on_left_edge = point.x == cell_rect.min_x
        on_bottom_edge = point.y == cell_rect.min_y
        if on_left_edge:
            candidates.add((key[0] - 1, key[1]))
        if on_bottom_edge:
            candidates.add((key[0], key[1] - 1))
        if on_left_edge and on_bottom_edge:
            candidates.add((key[0] - 1, key[1] - 1))
        for cell_key in candidates:
            cell = self.cells.get(cell_key)
            if cell is None:
                continue
            for object_id, record in cell.records.items():
                if record.rect.covers(point.x, point.y):
                    covering.add(object_id)
        return covering

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        self._ensure_results()
        return self._results[0] if self._results else None

    def top_k(self, k: int | None = None) -> list[RegionResult]:
        self._ensure_results()
        if k is None or k >= len(self._results):
            return list(self._results)
        return self._results[:k]
