"""``aG2``: the adapted continuous-MaxRS baseline (Appendix J of the paper).

Amagata & Hara's aG2 algorithm monitors the MaxRS region over a spatial
stream using a coarse grid (cell size independent of — and in the
experiments ten times larger than — the query rectangle), a per-cell *overlap
graph* whose nodes are the rectangle objects mapped to the cell and whose
edges connect overlapping rectangles, per-rectangle upper bounds derived from
the graph neighbourhood, and a branch-and-bound search that only sweeps a
rectangle's neighbourhood when its bound beats the incumbent.

As in the paper, the algorithm cannot be used verbatim for SURGE, so the
adaptation keeps the grid, the overlap graph and the branch-and-bound
skeleton, and swaps the inner search for SL-CSPOT so the burst score (not the
plain weight sum) is maximised.  The expensive parts the paper calls out are
faithfully reproduced: maintaining the overlap graph costs ``O(n_cell)`` per
event and ``O(n_cell²)`` space in dense cells, which is why aG2 trails
Cell-CSPOT in Figure 5 and exhausts memory for the largest windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.cells import CandidatePoint
from repro.core.query import SurgeQuery
from repro.core.sweep_backends import SweepBackend, resolve_backend
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.geometry.primitives import Rect
from repro.streams.objects import EventBatch, EventKind, RectangleObject, WindowEvent

#: Default ratio between the aG2 grid cell and the query rectangle
#: (the paper's experiments use cells of size ``10 q``).
DEFAULT_CELL_SCALE = 10.0


@dataclass
class _GraphRecord:
    """One rectangle object stored in an aG2 cell."""

    rect: RectangleObject
    in_current: bool


@dataclass
class _GraphCell:
    """State of one coarse aG2 cell: rectangle list + overlap graph."""

    bounds: Rect
    records: dict[int, _GraphRecord] = field(default_factory=dict)
    #: Overlap graph: object id -> ids of overlapping rectangles in the cell.
    adjacency: dict[int, set[int]] = field(default_factory=dict)
    static_bound: float = 0.0
    best: CandidatePoint | None = None
    clean: bool = False

    @property
    def is_empty(self) -> bool:
        return not self.records

    @property
    def edge_count(self) -> int:
        """Number of (directed) overlap-graph edges currently stored."""
        return sum(len(neighbours) for neighbours in self.adjacency.values())


class AG2Detector(BurstyRegionDetector):
    """Adapted aG2 baseline (exact, but with coarse cells and an overlap graph)."""

    name = "ag2"
    exact = True

    def __init__(
        self,
        query: SurgeQuery,
        cell_scale: float = DEFAULT_CELL_SCALE,
        backend: str | SweepBackend | None = None,
    ) -> None:
        super().__init__(query)
        if cell_scale < 1.0:
            raise ValueError("cell_scale must be at least 1")
        self.cell_scale = cell_scale
        self.sweep_backend = resolve_backend(backend)
        base = query.base_grid()
        self.grid = GridSpec(
            cell_width=base.cell_width * cell_scale,
            cell_height=base.cell_height * cell_scale,
            origin_x=base.origin_x,
            origin_y=base.origin_y,
        )
        self.cells: dict[CellIndex, _GraphCell] = {}
        self._bound_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()
        self._result: RegionResult | None = None

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return
        rect = obj.to_rectangle(self.query.rect_width, self.query.rect_height)
        searches_before = self.stats.cells_searched

        for key in self.grid.cells_overlapping(rect.rect):
            cell = self._update_cell(key, rect, event.kind)
            if cell is not None:
                self._bound_heap.push(key, cell.static_bound)

        self._refresh_result()
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch, re-running branch-and-bound once.

        Overlap-graph maintenance stays per event (it is keyed by object
        id), but every touched cell's bound enters the heap once and the
        branch-and-bound result refresh runs a single time per batch.
        """
        searches_before = self.stats.cells_searched
        cells = self.cells
        dirty = self._apply_batch_records(
            batch, cells, self._overlapping_cells, self._update_cell
        )
        self._bound_heap.push_all(
            (key, cells[key].static_bound) for key in dirty if key in cells
        )
        self._refresh_result()
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def _overlapping_cells(self, rect: RectangleObject) -> list[CellIndex]:
        """aG2 uses its coarse grid, not a query-sized cell index."""
        return list(self.grid.cells_overlapping(rect.rect))

    def _update_cell(
        self, key: CellIndex, rect: RectangleObject, kind: EventKind
    ) -> _GraphCell | None:
        """Update one cell's overlap graph; returns the surviving (dirty) cell."""
        cell = self.cells.get(key)
        if kind is EventKind.NEW:
            if cell is None:
                cell = _GraphCell(bounds=self.grid.cell_rect(key))
                self.cells[key] = cell
            self._insert_rectangle(cell, rect)
        elif kind is EventKind.GROWN:
            if cell is None:
                return None
            record = cell.records.get(rect.object_id)
            if record is None:
                return None
            record.in_current = False
            cell.static_bound -= rect.weight / self.query.current_length
        else:  # EXPIRED
            if cell is None:
                return None
            self._remove_rectangle(cell, rect.object_id)
            if cell.is_empty:
                del self.cells[key]
                self._bound_heap.remove(key)
                return None
        cell.clean = False
        return cell

    def _insert_rectangle(self, cell: _GraphCell, rect: RectangleObject) -> None:
        """Add a node to the overlap graph, connecting it to overlapping rectangles."""
        geometry = rect.rect
        neighbours: set[int] = set()
        for other_id, other in cell.records.items():
            if geometry.intersects(other.rect.rect):
                neighbours.add(other_id)
                cell.adjacency[other_id].add(rect.object_id)
        cell.records[rect.object_id] = _GraphRecord(rect=rect, in_current=True)
        cell.adjacency[rect.object_id] = neighbours
        cell.static_bound += rect.weight / self.query.current_length

    def _remove_rectangle(self, cell: _GraphCell, object_id: int) -> None:
        """Remove a node and its edges from the overlap graph."""
        if cell.records.pop(object_id, None) is None:
            return
        for neighbour in cell.adjacency.pop(object_id, set()):
            cell.adjacency.get(neighbour, set()).discard(object_id)

    # ------------------------------------------------------------------
    # Branch-and-bound search
    # ------------------------------------------------------------------
    def _refresh_result(self) -> None:
        while True:
            top = self._bound_heap.peek()
            if top is None:
                self._result = None
                return
            key, _ = top
            cell = self.cells[key]
            if cell.clean and cell.best is not None:
                best = cell.best
                self._result = RegionResult.from_point(
                    best.point, best.score, self.query, fc=best.fc, fp=best.fp
                )
                return
            self._search_cell(key, cell)

    def _search_cell(self, key: CellIndex, cell: _GraphCell) -> None:
        """Branch-and-bound over the rectangles mapped to one coarse cell."""
        self.stats.cells_searched += 1
        current_length = self.query.current_length
        past_length = self.query.past_length

        # Per-rectangle upper bound: every point inside rectangle ``g`` can only
        # be covered by ``g`` and its overlap-graph neighbours, so the sum of
        # their current-window contributions bounds the burst score.
        bounds_by_rect: list[tuple[float, int]] = []
        for object_id, record in cell.records.items():
            bound = record.rect.weight / current_length if record.in_current else 0.0
            for neighbour in cell.adjacency.get(object_id, ()):  # pragma: no branch
                other = cell.records[neighbour]
                if other.in_current:
                    bound += other.rect.weight / current_length
            bounds_by_rect.append((bound, object_id))
        bounds_by_rect.sort(reverse=True)

        best: CandidatePoint | None = None
        for bound, object_id in bounds_by_rect:
            if best is not None and bound <= best.score:
                break
            record = cell.records[object_id]
            neighbourhood_ids = cell.adjacency.get(object_id, set()) | {object_id}
            labeled = [
                LabeledRect(
                    cell.records[rid].rect.x,
                    cell.records[rid].rect.y,
                    cell.records[rid].rect.x + cell.records[rid].rect.width,
                    cell.records[rid].rect.y + cell.records[rid].rect.height,
                    cell.records[rid].rect.weight,
                    cell.records[rid].in_current,
                )
                for rid in neighbourhood_ids
            ]
            search_bounds = record.rect.rect.intersection(cell.bounds)
            if search_bounds is None:
                continue
            outcome = sweep_bursty_point(
                labeled,
                alpha=self.query.alpha,
                current_length=current_length,
                past_length=past_length,
                bounds=search_bounds,
                backend=self.sweep_backend,
            )
            if outcome is None:
                continue
            self.stats.rectangles_swept += outcome.rectangles_swept
            if best is None or outcome.score > best.score:
                best = CandidatePoint(
                    point=outcome.point,
                    score=outcome.score,
                    fc=outcome.fc,
                    fp=outcome.fp,
                    valid=True,
                )

        if best is None:
            # Only past-window rectangles intersect the cell: every point inside
            # it scores zero.
            best = CandidatePoint(
                point=cell.bounds.top_right, score=0.0, fc=0.0, fp=0.0, valid=True
            )
        cell.best = best
        cell.clean = True
        self._bound_heap.push(key, best.score)

    # ------------------------------------------------------------------
    # Results / introspection
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        return self._result

    @property
    def total_graph_edges(self) -> int:
        """Total number of overlap-graph edges across all cells (space proxy)."""
        return sum(cell.edge_count for cell in self.cells.values())
