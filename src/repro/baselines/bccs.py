"""``B-CCS``: Cell-CSPOT restricted to the static upper bound.

This baseline isolates the contribution of the dynamic upper bound and the
Lemma 4 candidate maintenance: cells are still ranked by an upper bound, but
only the static one (Definition 7), and a cell's memoised candidate is
discarded as soon as the cell is touched by an event.  Because the static
bound ignores the past window entirely it is loose — especially with weights
drawn from ``[1, 100]`` — so far more cells have to be re-searched than with
the full Cell-CSPOT machinery (Table II of the paper), which is what the
Table II / Figure 5 benchmarks measure.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.cell_index import UniformGridIndex
from repro.core.cells import CandidatePoint, CellState
from repro.core.query import SurgeQuery
from repro.core.sweep_backends import SweepBackend, resolve_backend
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.streams.objects import EventBatch, EventKind, RectangleObject, WindowEvent

#: Slack used when comparing a static bound against the incumbent score, so
#: floating-point drift never prunes the true optimum.
_BOUND_TOLERANCE = 1e-9


class StaticBoundCellCSPOT(BurstyRegionDetector):
    """Exact cell-based detector using only the static upper bound (paper's ``B-CCS``)."""

    name = "bccs"
    exact = True

    def __init__(
        self,
        query: SurgeQuery,
        grid: GridSpec | None = None,
        backend: str | SweepBackend | None = None,
    ) -> None:
        super().__init__(query)
        self.grid = grid if grid is not None else query.base_grid()
        self.cell_index = UniformGridIndex(self.grid)
        self.sweep_backend = resolve_backend(backend)
        self.cells: dict[CellIndex, CellState] = {}
        #: Cells ranked by their static upper bound.
        self._bound_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()
        #: Cells with a memoised (valid) candidate, ranked by its score.
        self._score_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return
        rect = obj.to_rectangle(self.query.rect_width, self.query.rect_height)
        searches_before = self.stats.cells_searched

        for key in self.cell_index.cells_overlapping(
            rect.x, rect.y, rect.x + rect.width, rect.y + rect.height
        ):
            cell = self._update_cell(key, rect, event.kind)
            if cell is not None:
                self._bound_heap.push(key, cell.static_bound)

        self._settle()
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch, settling the pruned search once at the end.

        Touched cells are invalidated once per dirty cell (invalidation is
        idempotent, so only the first touch matters), their static bounds go
        into the heap in one ``push_all``, and the bound-ordered search loop
        runs a single time after the last event.
        """
        searches_before = self.stats.cells_searched
        cells = self.cells
        dirty = self._apply_batch_records(
            batch, cells, self._overlapping_cells, self._update_cell
        )
        self._bound_heap.push_all(
            (key, cells[key].static_bound) for key in dirty if key in cells
        )
        self._settle()
        if self.stats.cells_searched > searches_before:
            self.stats.events_triggering_search += 1

    def _update_cell(
        self, key: CellIndex, rect: RectangleObject, kind: EventKind
    ) -> CellState | None:
        """Update one cell's records; returns the surviving (dirty) cell."""
        cell = self.cells.get(key)
        if kind is EventKind.NEW:
            if cell is None:
                cell = CellState(bounds=self.grid.cell_rect(key))
                self.cells[key] = cell
            cell.add_new(rect, self.query.current_length)
        elif kind is EventKind.GROWN:
            if cell is None:
                return None
            cell.mark_grown(rect, self.query.current_length)
        else:  # EXPIRED
            if cell is None:
                return None
            cell.remove_expired(rect, self.query.past_length, self.query.alpha)
            if cell.is_empty:
                del self.cells[key]
                self._bound_heap.remove(key)
                self._score_heap.remove(key)
                return None
        # Without Lemma 4 bookkeeping any touched cell must be re-searched.
        cell.invalidate_candidate()
        self._score_heap.remove(key)
        return cell

    # ------------------------------------------------------------------
    # Pruned search loop
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Search cells in descending static-bound order until none can win."""
        popped: list[tuple[CellIndex, float]] = []
        while True:
            top = self._bound_heap.peek()
            if top is None:
                break
            incumbent = self._score_heap.peek()
            key, bound = top
            if incumbent is not None and bound <= incumbent[1] + _BOUND_TOLERANCE:
                break
            self._bound_heap.pop()
            popped.append((key, bound))
            cell = self.cells.get(key)
            if cell is None:
                continue
            if not cell.has_valid_candidate():
                self._search_cell(key, cell)
        for key, bound in popped:
            if key in self.cells:
                self._bound_heap.push(key, bound)

    def _search_cell(self, key: CellIndex, cell: CellState) -> None:
        self.stats.cells_searched += 1
        labeled = [
            LabeledRect(
                record.rect.x,
                record.rect.y,
                record.rect.x + record.rect.width,
                record.rect.y + record.rect.height,
                record.rect.weight,
                record.in_current,
            )
            for record in cell.records.values()
        ]
        outcome = sweep_bursty_point(
            labeled,
            alpha=self.query.alpha,
            current_length=self.query.current_length,
            past_length=self.query.past_length,
            bounds=cell.bounds,
            backend=self.sweep_backend,
        )
        if outcome is None:  # pragma: no cover - records always intersect the cell
            cell.candidate = None
            return
        self.stats.rectangles_swept += outcome.rectangles_swept
        cell.candidate = CandidatePoint(
            point=outcome.point,
            score=outcome.score,
            fc=outcome.fc,
            fp=outcome.fp,
            valid=True,
        )
        self._score_heap.push(key, outcome.score)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        top = self._score_heap.peek()
        if top is None:
            return None
        key, _ = top
        candidate = self.cells[key].candidate
        if candidate is None or not candidate.valid:  # pragma: no cover - defensive
            return None
        return RegionResult.from_point(
            candidate.point,
            candidate.score,
            self.query,
            fc=candidate.fc,
            fp=candidate.fp,
        )
