"""Baseline detectors the paper compares against.

* :class:`~repro.baselines.naive.NaiveSweepDetector` — re-run SL-CSPOT over
  every rectangle in both windows on every event (the "naïve idea" of
  Section IV-C).
* :class:`~repro.baselines.base_cell.BaseCellDetector` — the paper's
  ``Base``: cells, no upper bounds; every cell touched by an event is
  searched immediately.
* :class:`~repro.baselines.bccs.StaticBoundCellCSPOT` — the paper's
  ``B-CCS``: cells with the static upper bound only.
* :class:`~repro.baselines.ag2.AG2Detector` — the adapted ``aG2`` continuous
  MaxRS baseline of Amagata & Hara (Appendix J of the paper).
"""

from repro.baselines.naive import NaiveSweepDetector
from repro.baselines.base_cell import BaseCellDetector
from repro.baselines.bccs import StaticBoundCellCSPOT
from repro.baselines.ag2 import AG2Detector

__all__ = [
    "NaiveSweepDetector",
    "BaseCellDetector",
    "StaticBoundCellCSPOT",
    "AG2Detector",
]
