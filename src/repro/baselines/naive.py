"""The naïve exact baseline: full sweep-line recomputation on every event.

Section IV-C of the paper opens with this idea ("whenever an event happens,
we invoke Algorithm 1 to detect a bursty point on the snapshot of the
stream") and rejects it as prohibitively expensive.  We keep it both as a
reference point for the benchmarks and as a second, structurally independent
exact implementation for the test suite (its answers must agree with
Cell-CSPOT on every snapshot).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.query import SurgeQuery
from repro.core.sweep_backends import SweepBackend, resolve_backend
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.streams.objects import EventBatch, EventKind, WindowEvent


class NaiveSweepDetector(BurstyRegionDetector):
    """Exact detector that re-sweeps the full rectangle set on every event."""

    name = "naive"
    exact = True

    def __init__(
        self, query: SurgeQuery, backend: str | SweepBackend | None = None
    ) -> None:
        super().__init__(query)
        self.sweep_backend = resolve_backend(backend)
        # object_id -> (labelled rectangle geometry, weight, in_current flag)
        self._rects: dict[int, LabeledRect] = {}
        self._result: RegionResult | None = None

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return

        self._apply_event(event)
        self._recompute()
        self.stats.events_triggering_search += 1

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch with a single full re-sweep at the end.

        The naive baseline's answer depends only on the final rectangle set,
        so a batch needs exactly one sweep-line invocation — the per-event
        path pays one full sweep per event, which is what makes it the
        paper's worst case.
        """
        stats = self.stats
        accepts = self.query.accepts
        touched = False
        for event in batch:
            stats.events_processed += 1
            if not accepts(event.obj.x, event.obj.y):
                stats.events_skipped += 1
                continue
            self._apply_event(event)
            touched = True
        if touched:
            self._recompute()
            stats.events_triggering_search += 1

    def _apply_event(self, event: WindowEvent) -> None:
        """Update the labelled rectangle set for one (accepted) event."""
        obj = event.obj
        if event.kind is EventKind.NEW:
            self._rects[obj.object_id] = LabeledRect(
                obj.x,
                obj.y,
                obj.x + self.query.rect_width,
                obj.y + self.query.rect_height,
                obj.weight,
                True,
            )
        elif event.kind is EventKind.GROWN:
            existing = self._rects.get(obj.object_id)
            if existing is not None:
                self._rects[obj.object_id] = LabeledRect(
                    existing.min_x,
                    existing.min_y,
                    existing.max_x,
                    existing.max_y,
                    existing.weight,
                    False,
                )
        else:  # EXPIRED
            self._rects.pop(obj.object_id, None)

    def _recompute(self) -> None:
        if not self._rects:
            self._result = None
            return
        self.stats.sweepline_calls += 1
        outcome = sweep_bursty_point(
            self._rects.values(),
            alpha=self.query.alpha,
            current_length=self.query.current_length,
            past_length=self.query.past_length,
            backend=self.sweep_backend,
        )
        if outcome is None:  # pragma: no cover - defensive
            self._result = None
            return
        self.stats.rectangles_swept += outcome.rectangles_swept
        self._result = RegionResult.from_point(
            outcome.point, outcome.score, self.query, fc=outcome.fc, fp=outcome.fp
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        return self._result
