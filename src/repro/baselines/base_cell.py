"""``Base``: the cell-based baseline without any upper-bound pruning.

Appendix J of the paper describes it as: divide the space into cells and,
whenever an event happens, search every cell that overlaps with the event's
rectangle object.  The per-cell best points are memoised so that unaffected
cells keep their previous answer, and the global answer is the best memoised
point.  The only thing missing compared to Cell-CSPOT is the pruning — every
affected cell is swept on every event — which is exactly what makes it an
order of magnitude slower (Figure 5).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.base import BurstyRegionDetector, RegionResult
from repro.core.cell_index import UniformGridIndex
from repro.core.cells import CandidatePoint, CellState
from repro.core.query import SurgeQuery
from repro.core.sweep_backends import SweepBackend, resolve_backend
from repro.core.sweepline import LabeledRect, sweep_bursty_point
from repro.geometry.grids import CellIndex, GridSpec
from repro.geometry.heaps import LazyMaxHeap
from repro.streams.objects import EventBatch, EventKind, RectangleObject, WindowEvent


class BaseCellDetector(BurstyRegionDetector):
    """Exact cell-based detector that searches every affected cell (paper's ``Base``)."""

    name = "base"
    exact = True

    def __init__(
        self,
        query: SurgeQuery,
        grid: GridSpec | None = None,
        backend: str | SweepBackend | None = None,
    ) -> None:
        super().__init__(query)
        self.grid = grid if grid is not None else query.base_grid()
        self.cell_index = UniformGridIndex(self.grid)
        self.sweep_backend = resolve_backend(backend)
        self.cells: dict[CellIndex, CellState] = {}
        self._score_heap: LazyMaxHeap[CellIndex] = LazyMaxHeap()

    # ------------------------------------------------------------------
    # Event processing
    # ------------------------------------------------------------------
    def process(self, event: WindowEvent) -> None:
        self.stats.events_processed += 1
        obj = event.obj
        if not self.query.accepts(obj.x, obj.y):
            self.stats.events_skipped += 1
            return
        rect = obj.to_rectangle(self.query.rect_width, self.query.rect_height)
        searched = False

        for key in self.cell_index.cells_overlapping(
            rect.x, rect.y, rect.x + rect.width, rect.y + rect.height
        ):
            cell = self._update_cell(key, rect, event.kind)
            if cell is None:
                continue
            self._search_cell(key, cell)
            searched = True

        if searched:
            self.stats.events_triggering_search += 1

    def apply_events(self, batch: "EventBatch | Iterable[WindowEvent]") -> None:
        """Apply a whole event batch, sweeping each affected cell only once.

        The per-event path re-sweeps a cell for *every* event that touches
        it; the batch path updates all cell records first and then sweeps
        each distinct dirty cell a single time over its final record set,
        which is where the Base baseline's batched speedup comes from.
        """
        cells = self.cells
        dirty = self._apply_batch_records(
            batch, cells, self._overlapping_cells, self._update_cell
        )
        searched = False
        for key in dirty:
            cell = cells.get(key)
            if cell is not None:
                self._search_cell(key, cell)
                searched = True
        if searched:
            # With batching, this counts result settlements that searched at
            # least one cell (one per batch), not per-event triggers.
            self.stats.events_triggering_search += 1

    def _update_cell(
        self, key: CellIndex, rect: RectangleObject, kind: EventKind
    ) -> CellState | None:
        """Update one cell's records; returns the surviving cell to re-sweep."""
        cell = self.cells.get(key)
        if kind is EventKind.NEW:
            if cell is None:
                cell = CellState(bounds=self.grid.cell_rect(key))
                self.cells[key] = cell
            cell.add_new(rect, self.query.current_length)
        elif kind is EventKind.GROWN:
            if cell is None:
                return None
            cell.mark_grown(rect, self.query.current_length)
        else:  # EXPIRED
            if cell is None:
                return None
            cell.remove_expired(rect, self.query.past_length, self.query.alpha)
            if cell.is_empty:
                del self.cells[key]
                self._score_heap.remove(key)
                return None
        return cell

    def _search_cell(self, key: CellIndex, cell: CellState) -> None:
        """Unconditionally sweep one cell and memoise its best point."""
        self.stats.cells_searched += 1
        labeled = [
            LabeledRect(
                record.rect.x,
                record.rect.y,
                record.rect.x + record.rect.width,
                record.rect.y + record.rect.height,
                record.rect.weight,
                record.in_current,
            )
            for record in cell.records.values()
        ]
        outcome = sweep_bursty_point(
            labeled,
            alpha=self.query.alpha,
            current_length=self.query.current_length,
            past_length=self.query.past_length,
            bounds=cell.bounds,
            backend=self.sweep_backend,
        )
        if outcome is None:  # pragma: no cover - records always intersect the cell
            cell.candidate = None
            self._score_heap.remove(key)
            return
        self.stats.rectangles_swept += outcome.rectangles_swept
        cell.candidate = CandidatePoint(
            point=outcome.point,
            score=outcome.score,
            fc=outcome.fc,
            fp=outcome.fp,
            valid=True,
        )
        self._score_heap.push(key, outcome.score)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> RegionResult | None:
        top = self._score_heap.peek()
        if top is None:
            return None
        key, _ = top
        candidate = self.cells[key].candidate
        if candidate is None:  # pragma: no cover - defensive
            return None
        return RegionResult.from_point(
            candidate.point,
            candidate.score,
            self.query,
            fc=candidate.fc,
            fp=candidate.fp,
        )
