"""repro — a reproduction of SURGE (Feng et al., ICDE 2018).

SURGE continuously detects *bursty regions* — fixed-size rectangles showing
the largest spike of weighted spatial objects across two consecutive sliding
windows — over a high-rate stream of spatial objects.  This package provides

* the exact detector Cell-CSPOT and the approximate detectors GAP-SURGE and
  MGAP-SURGE, plus their top-k extensions,
* the baselines the paper compares against (Base, B-CCS, adapted aG2, naive
  full recomputation),
* the stream / window / dataset substrates they run on,
* a multi-query monitoring service multiplexing one shared stream across N
  registered queries with sharded execution
  (:class:`~repro.service.SurgeService`), and
* an evaluation harness reproducing every table and figure of the paper.

Quickstart
----------
>>> from repro import SurgeQuery, SurgeMonitor, SpatialObject
>>> query = SurgeQuery(rect_width=1.0, rect_height=1.0, window_length=60.0)
>>> monitor = SurgeMonitor(query, algorithm="ccs")
>>> monitor.push(SpatialObject(x=0.5, y=0.5, timestamp=0.0, weight=2.0))
...
"""

from repro.core.base import BurstyRegionDetector, DetectorStats, RegionResult
from repro.core.burst import burst_score
from repro.core.monitor import DETECTOR_NAMES, SurgeMonitor, make_detector
from repro.core.sweep_backends import available_backends
from repro.core.query import SurgeQuery
from repro.geometry.primitives import Point, Rect
from repro.service import QuerySpec, SurgeService
from repro.state import CheckpointPolicy, SnapshotError, SnapshotSchemaError
from repro.streams.objects import (
    EventBatch,
    EventKind,
    RectangleObject,
    SpatialObject,
    WindowEvent,
)
from repro.streams.windows import SlidingWindowPair

__version__ = "1.0.0"

__all__ = [
    "BurstyRegionDetector",
    "DetectorStats",
    "RegionResult",
    "burst_score",
    "SurgeMonitor",
    "make_detector",
    "available_backends",
    "DETECTOR_NAMES",
    "SurgeQuery",
    "QuerySpec",
    "SurgeService",
    "CheckpointPolicy",
    "SnapshotError",
    "SnapshotSchemaError",
    "Point",
    "Rect",
    "EventBatch",
    "EventKind",
    "RectangleObject",
    "SpatialObject",
    "WindowEvent",
    "SlidingWindowPair",
    "__version__",
]
