"""Multi-query monitoring service: shared stream, N queries, sharded execution.

Public surface:

* :class:`~repro.service.spec.QuerySpec` — one query registration (routing
  keyword + SURGE query + detector choice), with the ``queries.json``
  round-trip and :func:`~repro.service.spec.load_query_specs` /
  :func:`~repro.service.spec.make_query_grid` helpers;
* :class:`~repro.service.service.SurgeService` — the service facade
  (``push_many`` / ``run`` / ``add_query`` / ``remove_query`` / ``results``);
* :mod:`~repro.service.shards` — the pluggable ``serial`` / ``thread`` /
  ``process`` shard executors (:data:`~repro.service.shards.EXECUTOR_NAMES`);
* :mod:`~repro.service.bus` — :class:`~repro.service.bus.QueryUpdate`,
  :class:`~repro.service.bus.QueryStats`,
  :class:`~repro.service.bus.ServiceStats` and the subscriber bus, with
  bounded :class:`~repro.service.bus.Subscription` queues;
* :mod:`~repro.service.overload` — the overload tier's types:
  :class:`~repro.service.overload.OverloadConfig` (watermarks + policy),
  :class:`~repro.service.overload.OverloadStats` and the typed
  :class:`~repro.service.overload.OverloadError`.

Durability — :meth:`SurgeService.checkpoint` / :meth:`SurgeService.restore`,
the ``checkpoint_dir`` / ``checkpoint_policy`` constructor options and the
``repro serve --checkpoint-dir --resume`` CLI — is provided by
:mod:`repro.state` (snapshot codec, write-ahead log, policies).
"""

from repro.service.bus import (
    QueryStats,
    QueryUpdate,
    ResultBus,
    ServiceStats,
    Subscription,
    SubscriptionSelfBlockError,
)
from repro.service.overload import OverloadConfig, OverloadError, OverloadStats
from repro.service.service import SurgeService
from repro.service.shards import EXECUTOR_NAMES, make_executor
from repro.service.spec import QuerySpec, load_query_specs, make_query_grid

__all__ = [
    "EXECUTOR_NAMES",
    "OverloadConfig",
    "OverloadError",
    "OverloadStats",
    "QuerySpec",
    "QueryStats",
    "QueryUpdate",
    "ResultBus",
    "ServiceStats",
    "Subscription",
    "SubscriptionSelfBlockError",
    "SurgeService",
    "load_query_specs",
    "make_executor",
    "make_query_grid",
]
