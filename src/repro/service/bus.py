"""Result bus: the service-side surface for per-query updates and stats.

Every chunk broadcast produces one :class:`QueryUpdate` per live query.  The
:class:`ResultBus` keeps the latest update per query, fans updates out to
subscribers (dashboards, alert hooks, tests), and accumulates the per-query
:class:`QueryStats` — objects routed, shard busy time, and the chunk *lag*
(how long a query's answer trailed the service receiving the chunk, i.e.
wall time of the whole broadcast minus nothing: the query's result is only
available once its shard's reply is gathered).

Two subscriber surfaces coexist:

* :meth:`ResultBus.subscribe` — the legacy synchronous callback, still
  isolated (a raising callback is counted and skipped, never kills
  ingestion) but *unbounded*: a slow callback slows the publish path.
* :meth:`ResultBus.open_subscription` — a bounded queue with a selectable
  slow-consumer policy (:data:`SUBSCRIPTION_POLICIES`): ``block``
  propagates backpressure to the publisher, ``drop_oldest`` discards the
  stalest update (counted globally and per query in
  :attr:`QueryStats.dropped_results`), ``evict`` unsubscribes the laggard.
  Whatever the consumer does, bus memory is bounded by
  ``sum(maxsize)`` updates.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable

from repro.core.base import RegionResult
from repro.service.overload import OverloadError, OverloadStats
from repro.streams.watermark import IngestStats

logger = logging.getLogger(__name__)

#: Selectable slow-consumer policies for bounded subscriptions.
SUBSCRIPTION_POLICIES = ("block", "drop_oldest", "evict")


class SubscriptionSelfBlockError(RuntimeError):
    """A blocking subscription would deadlock its own publisher.

    Raised by a ``policy="block"`` subscription with no ``block_timeout``
    when the publishing thread is also the only thread that has ever
    consumed from it and the queue is full: waiting would hang forever,
    because the one thread able to make room is the one about to wait.
    Single-threaded callers that both publish and drain should drain
    first, set a ``block_timeout``, or use ``drop_oldest``.
    """

    def __init__(self, message: str, *, subscription_name: str) -> None:
        super().__init__(message)
        self.subscription_name = subscription_name


@dataclass(frozen=True, slots=True)
class QueryUpdate:
    """One query's answer after one ingestion step.

    ``busy_seconds`` is the time the query's pipeline spent routing and
    detecting inside its shard; ``lag_seconds`` (stamped by the service, not
    the shard) is the wall time from chunk submission until this update was
    surfaced — the queueing/transport overhead a tenant actually observes.
    ``shed`` marks an update whose chunk was load-shed for this query: the
    carried ``result`` is the last computed answer, not a fresh one.
    """

    query_id: str
    chunk_index: int
    result: RegionResult | None
    objects_routed: int
    busy_seconds: float
    lag_seconds: float = 0.0
    shed: bool = False

    def with_lag(self, lag_seconds: float) -> "QueryUpdate":
        return QueryUpdate(
            query_id=self.query_id,
            chunk_index=self.chunk_index,
            result=self.result,
            objects_routed=self.objects_routed,
            busy_seconds=self.busy_seconds,
            lag_seconds=lag_seconds,
            shed=self.shed,
        )


@dataclass
class QueryStats:
    """Cumulative per-query counters maintained by the bus."""

    objects_routed: int = 0
    chunks_processed: int = 0
    busy_seconds: float = 0.0
    last_lag_seconds: float = 0.0
    max_lag_seconds: float = 0.0
    #: Updates for this query discarded by a bounded subscription's
    #: ``drop_oldest`` policy (summed across subscriptions).
    dropped_results: int = 0
    #: Chunks load-shed for this query while the service was degraded.
    chunks_shed: int = 0

    @property
    def objects_per_second(self) -> float:
        """Routed-object throughput against this query's own busy time."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.objects_routed / self.busy_seconds

    def observe(self, update: QueryUpdate) -> None:
        if update.shed:
            self.chunks_shed += 1
            return
        self.objects_routed += update.objects_routed
        self.chunks_processed += 1
        self.busy_seconds += update.busy_seconds
        self.last_lag_seconds = update.lag_seconds
        if update.lag_seconds > self.max_lag_seconds:
            self.max_lag_seconds = update.lag_seconds

    def to_dict(self) -> dict:
        """JSON form stored in service checkpoints (floats round-trip exactly)."""
        return {
            "objects_routed": self.objects_routed,
            "chunks_processed": self.chunks_processed,
            "busy_seconds": self.busy_seconds,
            "last_lag_seconds": self.last_lag_seconds,
            "max_lag_seconds": self.max_lag_seconds,
            "dropped_results": self.dropped_results,
            "chunks_shed": self.chunks_shed,
        }

    @staticmethod
    def from_dict(record: dict) -> "QueryStats":
        return QueryStats(
            objects_routed=int(record.get("objects_routed", 0)),
            chunks_processed=int(record.get("chunks_processed", 0)),
            busy_seconds=float(record.get("busy_seconds", 0.0)),
            last_lag_seconds=float(record.get("last_lag_seconds", 0.0)),
            max_lag_seconds=float(record.get("max_lag_seconds", 0.0)),
            dropped_results=int(record.get("dropped_results", 0)),
            chunks_shed=int(record.get("chunks_shed", 0)),
        )


@dataclass
class ServiceStats:
    """Aggregate counters for one service instance.

    ``object_query_pairs`` is the multi-tenant work unit: every pushed
    object is examined by every live query, so a chunk of ``n`` objects
    against ``m`` queries contributes ``n·m`` pairs.  The aggregate
    ``pairs_per_second`` over the ingestion wall time is the benchmark
    headline (``benchmarks/bench_service.py``).

    ``ingest`` surfaces the disorder-tolerant ingestion tier's counters
    (reordered, late_dropped, duplicates_seen, quarantined,
    subscriber_errors) — all zero when the service runs in strict mode.

    ``overload`` surfaces the overload tier's counters (degraded-mode
    transitions, shed work, deferred checkpoints, compactions) — all zero
    when the service never crossed its watermark.
    """

    objects_pushed: int = 0
    chunks_pushed: int = 0
    object_query_pairs: int = 0
    wall_seconds: float = 0.0
    per_query: dict[str, QueryStats] = field(default_factory=dict)
    ingest: IngestStats = field(default_factory=IngestStats)
    overload: OverloadStats = field(default_factory=OverloadStats)

    @property
    def pairs_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.object_query_pairs / self.wall_seconds


class Subscription:
    """A bounded per-subscriber queue with a slow-consumer policy.

    Consumers pull with :meth:`get` / :meth:`drain`; the publisher enqueues
    through the owning bus.  The queue never holds more than ``maxsize``
    updates, whatever the consumer does:

    * ``block`` — the publisher waits for space (backpressure propagates to
      the ingestion path); a ``block_timeout`` bounds the wait and raises
      :class:`~repro.service.overload.OverloadError` on expiry, so a dead
      consumer cannot hang the service forever.  ``maxsize`` must be
      positive (a zero-capacity blocking queue could never accept).
    * ``drop_oldest`` — the stalest update is discarded to make room,
      counted in :attr:`dropped` and per query.  ``maxsize == 0`` degrades
      to dropping every offered update — still bounded, still counted.
    * ``evict`` — the subscription is closed and detached from the bus on
      the first overflowing publish (``maxsize == 0`` evicts on the first
      publish), counted in ``ResultBus.evicted_subscribers``.

    Counters satisfy ``offered == delivered + dropped + depth`` at every
    quiescent point (i.e. outside a concurrent :meth:`get`).  With a
    ``query_ids`` filter, updates for other queries bypass the subscription
    entirely — they are not offered, so the identity holds over the
    filtered updates alone.
    """

    def __init__(
        self,
        *,
        maxsize: int,
        policy: str = "block",
        block_timeout: float | None = None,
        name: str | None = None,
        query_ids: Iterable[str] | None = None,
    ) -> None:
        maxsize = int(maxsize)
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        if policy not in SUBSCRIPTION_POLICIES:
            raise ValueError(
                f"policy must be one of {SUBSCRIPTION_POLICIES}, got {policy!r}"
            )
        if policy == "block" and maxsize == 0:
            raise ValueError(
                "a zero-capacity blocking subscription could never accept an "
                "update; use maxsize >= 1 or the drop_oldest/evict policy"
            )
        if block_timeout is not None and block_timeout <= 0:
            raise ValueError(f"block_timeout must be positive, got {block_timeout!r}")
        self.maxsize = maxsize
        self.policy = policy
        self.block_timeout = block_timeout
        self.name = name
        #: Optional per-query filter: ``None`` = every update, otherwise
        #: only updates whose ``query_id`` is in the set are offered.
        self.query_ids: frozenset[str] | None = (
            frozenset(query_ids) if query_ids is not None else None
        )
        self._queue: deque[QueryUpdate] = deque()
        self._cond = threading.Condition()
        #: Thread idents that have ever consumed (get/drain) — the
        #: self-block detector's evidence that nobody else can make room.
        self._consumer_idents: set[int] = set()
        self.offered = 0
        self.delivered = 0
        self.dropped = 0
        self.peak_depth = 0
        self.closed = False
        self.evicted = False

    @property
    def depth(self) -> int:
        """Updates currently buffered."""
        return len(self._queue)

    def _offer(self, update: QueryUpdate) -> list[str] | None:
        """Enqueue one update (publisher side).

        Returns the query ids of any updates discarded to make room, or
        ``None`` when the subscription must be evicted.
        """
        if self.query_ids is not None and update.query_id not in self.query_ids:
            return []
        with self._cond:
            if self.closed:
                return []
            self.offered += 1
            if self.policy == "evict":
                if len(self._queue) >= self.maxsize:
                    self.evicted = True
                    self.closed = True
                    self._cond.notify_all()
                    return None
                self._queue.append(update)
            elif self.policy == "drop_oldest":
                dropped_ids: list[str] = []
                if self.maxsize == 0:
                    self.dropped += 1
                    return [update.query_id]
                while len(self._queue) >= self.maxsize:
                    stale = self._queue.popleft()
                    self.dropped += 1
                    dropped_ids.append(stale.query_id)
                self._queue.append(update)
                if len(self._queue) > self.peak_depth:
                    self.peak_depth = len(self._queue)
                return dropped_ids
            else:  # block
                if (
                    self.block_timeout is None
                    and len(self._queue) >= self.maxsize
                    and self._consumer_idents == {threading.get_ident()}
                ):
                    # The queue is full, the wait would be unbounded, and
                    # the only thread that has ever drained this
                    # subscription is the one publishing: nobody else can
                    # make room, so waiting would deadlock.  Fail typed
                    # and loud instead of hanging the ingestion path.
                    label = self.name if self.name is not None else "<anonymous>"
                    raise SubscriptionSelfBlockError(
                        f"subscription {label!r} would self-deadlock: "
                        f"policy=block with no block_timeout, queue full "
                        f"(maxsize={self.maxsize}), and the publishing "
                        f"thread is the only consumer this subscription "
                        f"has ever had; drain first, set a block_timeout, "
                        f"or use the drop_oldest policy",
                        subscription_name=label,
                    )
                if not self._cond.wait_for(
                    lambda: self.closed or len(self._queue) < self.maxsize,
                    timeout=self.block_timeout,
                ):
                    raise OverloadError(
                        f"subscriber queue full for {self.block_timeout}s "
                        f"(maxsize={self.maxsize}, policy=block)",
                        depth_chunks=float(len(self._queue)),
                    )
                if self.closed:
                    return []
                self._queue.append(update)
            if len(self._queue) > self.peak_depth:
                self.peak_depth = len(self._queue)
            self._cond.notify_all()
            return []

    def get(self, timeout: float | None = None) -> QueryUpdate | None:
        """Pop the oldest buffered update (``None`` on timeout/closed-empty)."""
        with self._cond:
            self._consumer_idents.add(threading.get_ident())
            if not self._cond.wait_for(
                lambda: self._queue or self.closed, timeout=timeout
            ):
                return None
            if not self._queue:
                return None
            update = self._queue.popleft()
            self.delivered += 1
            self._cond.notify_all()
            return update

    def drain(self) -> list[QueryUpdate]:
        """Pop everything currently buffered, oldest first."""
        with self._cond:
            self._consumer_idents.add(threading.get_ident())
            drained = list(self._queue)
            self._queue.clear()
            self.delivered += len(drained)
            self._cond.notify_all()
            return drained

    def close(self) -> None:
        """Stop accepting updates (buffered ones remain drainable)."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def counters(self) -> dict[str, int]:
        """The subscription's accounting as a plain dict."""
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "depth": self.depth,
            "peak_depth": self.peak_depth,
        }


class ResultBus:
    """Latest-result cache plus subscriber fan-out for query updates.

    Subscriber callbacks are *isolated*: a raising callback must not kill
    ingestion (it runs on the service's push path), so :meth:`publish`
    catches the exception, counts it in :attr:`subscriber_errors`, logs it,
    and keeps delivering the update to the remaining subscribers.  Bounded
    :class:`Subscription` queues (see :meth:`open_subscription`) bound the
    memory a slow consumer can pin.
    """

    def __init__(self) -> None:
        self._latest: dict[str, QueryUpdate] = {}
        self._stats: dict[str, QueryStats] = {}
        self._subscribers: list[Callable[[QueryUpdate], None]] = []
        self._subscriptions: list[Subscription] = []
        #: Exceptions raised (and swallowed) by subscriber callbacks.
        self.subscriber_errors = 0
        #: Subscriptions detached by the ``evict`` policy.
        self.evicted_subscribers = 0
        #: Optional :class:`~repro.obs.tracer.Tracer` (set by the owning
        #: service); when enabled, every :meth:`publish` records one
        #: ``bus.publish`` span covering the whole fan-out.
        self.tracer = None

    def subscribe(self, callback: Callable[[QueryUpdate], None]) -> None:
        """Register a callback invoked once per update, in publish order."""
        self._subscribers.append(callback)

    def open_subscription(
        self,
        *,
        maxsize: int,
        policy: str = "block",
        block_timeout: float | None = None,
        name: str | None = None,
        query_ids: Iterable[str] | None = None,
    ) -> Subscription:
        """Open a bounded pull subscription (see :class:`Subscription`)."""
        subscription = Subscription(
            maxsize=maxsize,
            policy=policy,
            block_timeout=block_timeout,
            name=name,
            query_ids=query_ids,
        )
        self._subscriptions.append(subscription)
        return subscription

    def subscriptions(self) -> list[Subscription]:
        """The live bounded subscriptions (a copy; for stats surfaces)."""
        return list(self._subscriptions)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach and close a bounded subscription."""
        subscription.close()
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    def publish(self, updates: Iterable[QueryUpdate]) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            started = perf_counter()
            self._publish(updates)
            tracer.record("bus.publish", started, perf_counter(), lane="bus")
            return
        self._publish(updates)

    def _publish(self, updates: Iterable[QueryUpdate]) -> None:
        for update in updates:
            self._latest[update.query_id] = update
            self._stats.setdefault(update.query_id, QueryStats()).observe(update)
            for callback in self._subscribers:
                try:
                    callback(update)
                except Exception:
                    self.subscriber_errors += 1
                    logger.exception(
                        "result-bus subscriber %r failed on update for query %s "
                        "(isolated; delivery continues)",
                        callback,
                        update.query_id,
                    )
            if self._subscriptions:
                evicted: list[Subscription] = []
                for subscription in self._subscriptions:
                    dropped_ids = subscription._offer(update)
                    if dropped_ids is None:
                        evicted.append(subscription)
                        continue
                    for query_id in dropped_ids:
                        self._stats.setdefault(
                            query_id, QueryStats()
                        ).dropped_results += 1
                for subscription in evicted:
                    self._subscriptions.remove(subscription)
                    self.evicted_subscribers += 1
                    logger.warning(
                        "result-bus subscription evicted after overflowing its "
                        "%d-update queue (policy=evict)",
                        subscription.maxsize,
                    )

    def latest(self, query_id: str) -> QueryUpdate | None:
        """The most recent update for a query (``None`` before the first)."""
        return self._latest.get(query_id)

    def stats(self, query_id: str) -> QueryStats:
        """Cumulative stats for a query (zeros before its first update)."""
        return self._stats.setdefault(query_id, QueryStats())

    def forget(self, query_id: str) -> None:
        """Drop the cached state of a removed query."""
        self._latest.pop(query_id, None)
        self._stats.pop(query_id, None)

    def max_queue_depth(self) -> int:
        """Deepest bounded-subscription queue right now (0 with none open)."""
        if not self._subscriptions:
            return 0
        return max(subscription.depth for subscription in self._subscriptions)

    def peak_queue_depth(self) -> int:
        """Deepest any bounded-subscription queue has ever been."""
        if not self._subscriptions:
            return 0
        return max(subscription.peak_depth for subscription in self._subscriptions)

    # ------------------------------------------------------------------
    # Durability (service checkpoints carry the cumulative stats along)
    # ------------------------------------------------------------------
    def export_stats(self) -> dict[str, dict]:
        """Per-query stats in the JSON form of :meth:`QueryStats.to_dict`."""
        return {query_id: stats.to_dict() for query_id, stats in self._stats.items()}

    def load_stats(self, records: dict[str, dict]) -> None:
        """Replace the cumulative per-query stats (checkpoint restore)."""
        self._stats = {
            query_id: QueryStats.from_dict(record)
            for query_id, record in records.items()
        }
