"""Result bus: the service-side surface for per-query updates and stats.

Every chunk broadcast produces one :class:`QueryUpdate` per live query.  The
:class:`ResultBus` keeps the latest update per query, fans updates out to
subscribers (dashboards, alert hooks, tests), and accumulates the per-query
:class:`QueryStats` — objects routed, shard busy time, and the chunk *lag*
(how long a query's answer trailed the service receiving the chunk, i.e.
wall time of the whole broadcast minus nothing: the query's result is only
available once its shard's reply is gathered).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.base import RegionResult
from repro.streams.watermark import IngestStats

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class QueryUpdate:
    """One query's answer after one ingestion step.

    ``busy_seconds`` is the time the query's pipeline spent routing and
    detecting inside its shard; ``lag_seconds`` (stamped by the service, not
    the shard) is the wall time from chunk submission until this update was
    surfaced — the queueing/transport overhead a tenant actually observes.
    """

    query_id: str
    chunk_index: int
    result: RegionResult | None
    objects_routed: int
    busy_seconds: float
    lag_seconds: float = 0.0

    def with_lag(self, lag_seconds: float) -> "QueryUpdate":
        return QueryUpdate(
            query_id=self.query_id,
            chunk_index=self.chunk_index,
            result=self.result,
            objects_routed=self.objects_routed,
            busy_seconds=self.busy_seconds,
            lag_seconds=lag_seconds,
        )


@dataclass
class QueryStats:
    """Cumulative per-query counters maintained by the bus."""

    objects_routed: int = 0
    chunks_processed: int = 0
    busy_seconds: float = 0.0
    last_lag_seconds: float = 0.0
    max_lag_seconds: float = 0.0

    @property
    def objects_per_second(self) -> float:
        """Routed-object throughput against this query's own busy time."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.objects_routed / self.busy_seconds

    def observe(self, update: QueryUpdate) -> None:
        self.objects_routed += update.objects_routed
        self.chunks_processed += 1
        self.busy_seconds += update.busy_seconds
        self.last_lag_seconds = update.lag_seconds
        if update.lag_seconds > self.max_lag_seconds:
            self.max_lag_seconds = update.lag_seconds

    def to_dict(self) -> dict:
        """JSON form stored in service checkpoints (floats round-trip exactly)."""
        return {
            "objects_routed": self.objects_routed,
            "chunks_processed": self.chunks_processed,
            "busy_seconds": self.busy_seconds,
            "last_lag_seconds": self.last_lag_seconds,
            "max_lag_seconds": self.max_lag_seconds,
        }

    @staticmethod
    def from_dict(record: dict) -> "QueryStats":
        return QueryStats(
            objects_routed=int(record.get("objects_routed", 0)),
            chunks_processed=int(record.get("chunks_processed", 0)),
            busy_seconds=float(record.get("busy_seconds", 0.0)),
            last_lag_seconds=float(record.get("last_lag_seconds", 0.0)),
            max_lag_seconds=float(record.get("max_lag_seconds", 0.0)),
        )


@dataclass
class ServiceStats:
    """Aggregate counters for one service instance.

    ``object_query_pairs`` is the multi-tenant work unit: every pushed
    object is examined by every live query, so a chunk of ``n`` objects
    against ``m`` queries contributes ``n·m`` pairs.  The aggregate
    ``pairs_per_second`` over the ingestion wall time is the benchmark
    headline (``benchmarks/bench_service.py``).

    ``ingest`` surfaces the disorder-tolerant ingestion tier's counters
    (reordered, late_dropped, duplicates_seen, quarantined,
    subscriber_errors) — all zero when the service runs in strict mode.
    """

    objects_pushed: int = 0
    chunks_pushed: int = 0
    object_query_pairs: int = 0
    wall_seconds: float = 0.0
    per_query: dict[str, QueryStats] = field(default_factory=dict)
    ingest: IngestStats = field(default_factory=IngestStats)

    @property
    def pairs_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.object_query_pairs / self.wall_seconds


class ResultBus:
    """Latest-result cache plus subscriber fan-out for query updates.

    Subscriber callbacks are *isolated*: a raising callback must not kill
    ingestion (it runs on the service's push path), so :meth:`publish`
    catches the exception, counts it in :attr:`subscriber_errors`, logs it,
    and keeps delivering the update to the remaining subscribers.
    """

    def __init__(self) -> None:
        self._latest: dict[str, QueryUpdate] = {}
        self._stats: dict[str, QueryStats] = {}
        self._subscribers: list[Callable[[QueryUpdate], None]] = []
        #: Exceptions raised (and swallowed) by subscriber callbacks.
        self.subscriber_errors = 0

    def subscribe(self, callback: Callable[[QueryUpdate], None]) -> None:
        """Register a callback invoked once per update, in publish order."""
        self._subscribers.append(callback)

    def publish(self, updates: Iterable[QueryUpdate]) -> None:
        for update in updates:
            self._latest[update.query_id] = update
            self._stats.setdefault(update.query_id, QueryStats()).observe(update)
            for callback in self._subscribers:
                try:
                    callback(update)
                except Exception:
                    self.subscriber_errors += 1
                    logger.exception(
                        "result-bus subscriber %r failed on update for query %s "
                        "(isolated; delivery continues)",
                        callback,
                        update.query_id,
                    )

    def latest(self, query_id: str) -> QueryUpdate | None:
        """The most recent update for a query (``None`` before the first)."""
        return self._latest.get(query_id)

    def stats(self, query_id: str) -> QueryStats:
        """Cumulative stats for a query (zeros before its first update)."""
        return self._stats.setdefault(query_id, QueryStats())

    def forget(self, query_id: str) -> None:
        """Drop the cached state of a removed query."""
        self._latest.pop(query_id, None)
        self._stats.pop(query_id, None)

    # ------------------------------------------------------------------
    # Durability (service checkpoints carry the cumulative stats along)
    # ------------------------------------------------------------------
    def export_stats(self) -> dict[str, dict]:
        """Per-query stats in the JSON form of :meth:`QueryStats.to_dict`."""
        return {query_id: stats.to_dict() for query_id, stats in self._stats.items()}

    def load_stats(self, records: dict[str, dict]) -> None:
        """Replace the cumulative per-query stats (checkpoint restore)."""
        self._stats = {
            query_id: QueryStats.from_dict(record)
            for query_id, record in records.items()
        }
