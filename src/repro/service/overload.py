"""Overload tier: typed errors, configuration and counters for degraded mode.

The service is only production-credible if it stays *bounded* when consumers
or detectors cannot keep up.  Three cooperating mechanisms live behind this
module's types:

* **Backpressure** — ``SurgeService(max_inflight_chunks=)`` bounds how many
  chunks' worth of raw arrivals may sit buffered ahead of the shards, and
  :class:`~repro.service.bus.Subscription` bounds every subscriber queue.
* **Load-shedding / degraded mode** — when the observed queue depth crosses
  ``high_watermark_chunks`` the service flips into a counted degraded state
  and applies :attr:`OverloadConfig.policy` until depth falls back to
  ``low_watermark_chunks`` (hysteresis, so the service does not flap on a
  boundary).  ``shed`` skips whole sheddable route classes (lowest-priority
  queries first), ``stretch`` widens the checkpoint cadence, and ``error``
  raises :class:`OverloadError` for strict deployments that prefer failing
  loudly over degrading silently.
* **Observability** — every transition and every shed unit of work is
  counted in :class:`OverloadStats`, exported through
  :class:`~repro.service.bus.ServiceStats`, persisted in checkpoint
  manifests, and printed in the ``repro serve`` final block, so a resumed
  service reports exactly what an uninterrupted one would.

All types here are plain data with exact JSON round-trips; the state machine
itself lives in :class:`~repro.service.service.SurgeService`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "OverloadError",
    "OverloadConfig",
    "OverloadStats",
    "OVERLOAD_POLICIES",
]

#: Selectable degraded-mode policies (see :class:`OverloadConfig.policy`).
OVERLOAD_POLICIES = ("shed", "stretch", "error")


class OverloadError(RuntimeError):
    """The service crossed its overload watermark under the ``error`` policy.

    Raised from the ingestion path (``push_many`` / ``run``) so strict
    deployments fail fast instead of degrading silently.  The queue depth
    that tripped the watermark is carried for the operator.
    """

    def __init__(self, message: str, *, depth_chunks: float = 0.0) -> None:
        super().__init__(message)
        self.depth_chunks = depth_chunks


@dataclass(frozen=True)
class OverloadConfig:
    """Degraded-mode thresholds and policy for one service instance.

    ``high_watermark_chunks`` / ``low_watermark_chunks``
        Queue depth (in chunks of buffered work) at which the service
        enters / exits degraded mode.  ``low < high`` gives hysteresis:
        once degraded, the service stays degraded until depth falls to the
        low watermark, so a depth oscillating around one threshold does not
        flap the mode (and the transition counters stay meaningful).
    ``policy``
        ``"shed"``  — skip sheddable route classes (queries whose
        :attr:`~repro.service.spec.QuerySpec.priority` is below
        ``shed_below_priority``) while degraded, counting every skipped
        chunk and suppressed update.
        ``"stretch"`` — multiply the checkpoint cadence by
        ``checkpoint_stretch`` while degraded, trading recovery granularity
        for ingest throughput.
        ``"error"`` — raise :class:`OverloadError` on entry (strict mode).
    ``shed_below_priority``
        Queries with ``priority`` strictly below this rank are sheddable.
        ``None`` (default) sheds everything below the highest priority
        present — with uniform priorities nothing is sheddable and ``shed``
        degrades to counting transitions only, which is the safe default.
    ``checkpoint_stretch``
        Cadence multiplier for the ``stretch`` policy (must be ``>= 1``).
    """

    high_watermark_chunks: float = 8.0
    low_watermark_chunks: float = 2.0
    policy: str = "shed"
    shed_below_priority: int | None = None
    checkpoint_stretch: int = 4

    def __post_init__(self) -> None:
        if self.policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"policy must be one of {OVERLOAD_POLICIES}, got {self.policy!r}"
            )
        if not self.high_watermark_chunks > 0:
            raise ValueError(
                f"high_watermark_chunks must be positive, "
                f"got {self.high_watermark_chunks!r}"
            )
        if not 0 <= self.low_watermark_chunks <= self.high_watermark_chunks:
            raise ValueError(
                f"low_watermark_chunks must satisfy 0 <= low <= high, got "
                f"low={self.low_watermark_chunks!r} "
                f"high={self.high_watermark_chunks!r}"
            )
        if self.checkpoint_stretch < 1:
            raise ValueError(
                f"checkpoint_stretch must be >= 1, got {self.checkpoint_stretch!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON form stored in service checkpoint manifests."""
        return {
            "high_watermark_chunks": self.high_watermark_chunks,
            "low_watermark_chunks": self.low_watermark_chunks,
            "policy": self.policy,
            "shed_below_priority": self.shed_below_priority,
            "checkpoint_stretch": self.checkpoint_stretch,
        }

    @staticmethod
    def from_dict(record: Mapping[str, Any]) -> "OverloadConfig":
        shed_below = record.get("shed_below_priority")
        return OverloadConfig(
            high_watermark_chunks=float(record.get("high_watermark_chunks", 8.0)),
            low_watermark_chunks=float(record.get("low_watermark_chunks", 2.0)),
            policy=str(record.get("policy", "shed")),
            shed_below_priority=None if shed_below is None else int(shed_below),
            checkpoint_stretch=int(record.get("checkpoint_stretch", 4)),
        )


@dataclass
class OverloadStats:
    """Counters of everything the overload tier did.

    ``degraded``
        Whether the service is currently in degraded mode.
    ``entered_degraded`` / ``exited_degraded``
        Hysteresis transitions (entries can exceed exits by at most one).
    ``chunks_shed`` / ``updates_shed``
        Chunks skipped for at least one query and individual per-query
        updates suppressed while shedding.
    ``checkpoints_deferred``
        Checkpoints the ``stretch`` policy postponed while degraded.
    ``compactions`` / ``queries_compacted``
        Safe-boundary re-epoching passes that ran and the number of
        late-registered queries they merged back into shared plan groups.
    ``max_depth_chunks``
        Peak observed queue depth, in chunks.
    """

    degraded: bool = False
    entered_degraded: int = 0
    exited_degraded: int = 0
    chunks_shed: int = 0
    updates_shed: int = 0
    checkpoints_deferred: int = 0
    compactions: int = 0
    queries_compacted: int = 0
    max_depth_chunks: float = 0.0
    #: Query ids currently being shed (live view, not checkpointed as truth —
    #: recomputed from the registry + config after restore).
    shedding: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON form stored in service checkpoint manifests."""
        return {
            "degraded": self.degraded,
            "entered_degraded": self.entered_degraded,
            "exited_degraded": self.exited_degraded,
            "chunks_shed": self.chunks_shed,
            "updates_shed": self.updates_shed,
            "checkpoints_deferred": self.checkpoints_deferred,
            "compactions": self.compactions,
            "queries_compacted": self.queries_compacted,
            "max_depth_chunks": self.max_depth_chunks,
        }

    @staticmethod
    def from_dict(record: Mapping[str, Any]) -> "OverloadStats":
        return OverloadStats(
            degraded=bool(record.get("degraded", False)),
            entered_degraded=int(record.get("entered_degraded", 0)),
            exited_degraded=int(record.get("exited_degraded", 0)),
            chunks_shed=int(record.get("chunks_shed", 0)),
            updates_shed=int(record.get("updates_shed", 0)),
            checkpoints_deferred=int(record.get("checkpoints_deferred", 0)),
            compactions=int(record.get("compactions", 0)),
            queries_compacted=int(record.get("queries_compacted", 0)),
            max_depth_chunks=float(record.get("max_depth_chunks", 0.0)),
        )
