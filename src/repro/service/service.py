"""The multi-query monitoring service: one shared stream, N continuous queries.

:class:`SurgeService` multiplexes a timestamp-ordered object stream across
every registered :class:`~repro.service.spec.QuerySpec`:

* **routing** — each query sees only the objects its keyword predicate
  accepts (``None`` = the whole stream), exactly as if it ran a private
  :class:`~repro.core.monitor.SurgeMonitor` over the filtered substream;
* **shared chunking** — the stream is cut into chunks once; every chunk is
  broadcast to each shard exactly once, and inside the shard each query's
  monitor ingests its filtered slice through the batched ``push_many`` path;
* **sharded execution** — queries are assigned round-robin to ``shards``
  shards, driven by a pluggable executor backend (``serial`` / ``thread`` /
  ``process``, see :mod:`repro.service.shards`).  Results are bit-identical
  across backends: the backend only decides *where* the identical per-shard
  code runs;
* **result bus** — every chunk yields one
  :class:`~repro.service.bus.QueryUpdate` per query (latest results,
  subscriber callbacks, per-query lag/throughput stats).

Example::

    specs = [
        QuerySpec("concerts", SurgeQuery(0.01, 0.01, 3600), keyword="concert"),
        QuerySpec("city-wide", SurgeQuery(0.05, 0.05, 1800)),
    ]
    with SurgeService(specs, shards=4, executor="process") as service:
        for updates in service.run(stream, chunk_size=1024):
            for update in updates:
                ...  # (query_id, RegionResult) pairs, freshest first
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Sequence

from repro.core.base import RegionResult
from repro.service.bus import QueryUpdate, ResultBus, ServiceStats
from repro.service.shards import EXECUTOR_NAMES, make_executor
from repro.service.spec import QuerySpec
from repro.streams.objects import SpatialObject
from repro.streams.sources import iter_chunks


class SurgeService:
    """Continuous multi-query monitor over one shared spatial stream.

    Parameters
    ----------
    specs:
        Initial query registrations (more can be added later with
        :meth:`add_query`); ids must be unique.
    shards:
        Number of shards the queries are spread over (round-robin in
        registration order).
    executor:
        Shard execution backend: ``"serial"``, ``"thread"`` or ``"process"``.
    """

    def __init__(
        self,
        specs: Sequence[QuerySpec] = (),
        *,
        shards: int = 1,
        executor: str = "serial",
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if executor.lower() not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        self.executor_name = executor.lower()
        self.n_shards = shards
        # Round-robin assignment keyed to a monotone registration counter:
        # removals never reshuffle surviving queries, so a given sequence of
        # add/remove operations lands every query on the same shard under
        # every backend and shard count stays load-balanced over time.
        self._shard_of: dict[str, int] = {}
        self._order: list[str] = []
        self._registered = 0
        shard_specs: list[list[QuerySpec]] = [[] for _ in range(shards)]
        for spec in specs:
            self._claim(spec)
            shard_specs[self._shard_of[spec.query_id]].append(spec)
        self._executor = make_executor(self.executor_name, shard_specs)
        self.bus = ResultBus()
        self._time = float("-inf")
        self._chunk_index = 0
        self._stats = ServiceStats()
        self._closed = False

    def _claim(self, spec: QuerySpec) -> None:
        if spec.query_id in self._shard_of:
            raise ValueError(f"query {spec.query_id!r} is already registered")
        self._shard_of[spec.query_id] = self._registered % self.n_shards
        self._order.append(spec.query_id)
        self._registered += 1

    # ------------------------------------------------------------------
    # Query registry
    # ------------------------------------------------------------------
    @property
    def query_ids(self) -> list[str]:
        """Live query ids in registration order."""
        return list(self._order)

    def add_query(self, spec: QuerySpec) -> str:
        """Register a query mid-stream; it sees only objects pushed later."""
        self._claim(spec)
        try:
            self._executor.send(self._shard_of[spec.query_id], ("add", spec))
        except Exception:
            self._order.remove(spec.query_id)
            del self._shard_of[spec.query_id]
            raise
        return spec.query_id

    def remove_query(self, query_id: str) -> None:
        """Drop a query; its shard slot is not reused (see ``_claim``)."""
        if query_id not in self._shard_of:
            raise KeyError(f"query {query_id!r} is not registered")
        self._executor.send(self._shard_of[query_id], ("remove", query_id))
        self._order.remove(query_id)
        del self._shard_of[query_id]
        self.bus.forget(query_id)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push_many(self, chunk: Iterable[SpatialObject]) -> list[QueryUpdate]:
        """Broadcast one timestamp-ordered chunk to every shard.

        Returns the per-query updates in query registration order (also
        published on :attr:`bus`).  Timestamp order is validated against the
        service clock here — per-query monitors only see their filtered
        substreams, so an out-of-order object that no query matches would
        otherwise corrupt the clock silently.
        """
        objs = chunk if isinstance(chunk, list) else list(chunk)
        previous = self._time
        for position, obj in enumerate(objs):
            if obj.timestamp < previous:
                raise ValueError(
                    f"out-of-order arrival in service chunk: object "
                    f"id={obj.object_id} (chunk position {position}) has "
                    f"timestamp t={obj.timestamp}, earlier than the "
                    f"last-accepted stream time t={previous}"
                )
            previous = obj.timestamp
        if objs:
            self._time = previous
        return self._dispatch(("chunk", objs, self._chunk_index), len(objs))

    def push(self, obj: SpatialObject) -> list[QueryUpdate]:
        """Push a single object (a one-object chunk)."""
        return self.push_many([obj])

    def advance_time(self, stream_time: float) -> list[QueryUpdate]:
        """Advance every query's clock without new arrivals."""
        if stream_time < self._time:
            raise ValueError(
                f"cannot move stream time backwards: requested t={stream_time} "
                f"is earlier than the last-accepted stream time t={self._time}"
            )
        self._time = stream_time
        return self._dispatch(("advance", stream_time, self._chunk_index), 0)

    def _dispatch(self, message: tuple, n_objects: int) -> list[QueryUpdate]:
        started = time.perf_counter()
        replies = self._executor.broadcast(message)
        wall = time.perf_counter() - started
        by_query = {
            update.query_id: update for reply in replies for update in reply
        }
        # Registration order, with the broadcast wall time stamped as each
        # query's lag: an update is only observable once the gather returns.
        updates = [
            by_query[query_id].with_lag(wall)
            for query_id in self._order
            if query_id in by_query
        ]
        self._chunk_index += 1
        self._stats.objects_pushed += n_objects
        self._stats.chunks_pushed += 1
        self._stats.object_query_pairs += n_objects * len(updates)
        self._stats.wall_seconds += wall
        self.bus.publish(updates)
        return updates

    def run(
        self,
        stream: Iterable[SpatialObject],
        chunk_size: int = 512,
    ) -> Iterator[list[QueryUpdate]]:
        """Chunk a whole stream through the service, yielding per-chunk updates."""
        for chunk in iter_chunks(stream, chunk_size):
            yield self.push_many(chunk)

    # ------------------------------------------------------------------
    # Results and stats
    # ------------------------------------------------------------------
    def results(self) -> dict[str, RegionResult | None]:
        """Current result of every live query (queried from the shards)."""
        merged: dict[str, RegionResult | None] = {}
        for reply in self._executor.broadcast(("results",)):
            merged.update(reply)
        return {query_id: merged[query_id] for query_id in self._order}

    def top_k(self, k: int | None = None) -> dict[str, list[RegionResult]]:
        """Current top-k regions of every live query (best first)."""
        merged: dict[str, list[RegionResult]] = {}
        for reply in self._executor.broadcast(("top_k", k)):
            merged.update(reply)
        return {query_id: merged[query_id] for query_id in self._order}

    def latest(self, query_id: str) -> QueryUpdate | None:
        """Most recent bus update for a query — no shard round-trip."""
        return self.bus.latest(query_id)

    def stats(self) -> ServiceStats:
        """Aggregate service stats with per-query lag/throughput attached."""
        self._stats.per_query = {
            query_id: self.bus.stats(query_id) for query_id in self._order
        }
        return self._stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard executor (idempotent)."""
        if not self._closed:
            self._executor.close()
            self._closed = True

    def __enter__(self) -> "SurgeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SurgeService(queries={len(self._order)}, shards={self.n_shards}, "
            f"executor={self.executor_name!r})"
        )
