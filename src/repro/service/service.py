"""The multi-query monitoring service: one shared stream, N continuous queries.

:class:`SurgeService` multiplexes a timestamp-ordered object stream across
every registered :class:`~repro.service.spec.QuerySpec`:

* **routing** — each query sees only the objects its keyword predicate
  accepts (``None`` = the whole stream), exactly as if it ran a private
  :class:`~repro.core.monitor.SurgeMonitor` over the filtered substream.
  By default shards run the *shared-work execution plan*: the chunk is
  bucketed by keyword once (O(chunk + matches) instead of
  O(queries × chunk)), same-keyword/same-window queries share one sliding
  window pair and one event batch, and fully identical specs share the
  detector itself — bit-identical to the unshared plan, just without the
  redundant work (see :mod:`repro.service.shards`; ``shared_plan=False``
  is the escape hatch);
* **shared chunking** — the stream is cut into chunks once; every chunk is
  broadcast to each shard exactly once, and inside the shard each query's
  monitor ingests its filtered slice through the batched ``push_many`` path;
* **sharded execution** — queries are assigned round-robin to ``shards``
  shards, driven by a pluggable executor backend (``serial`` / ``thread`` /
  ``process``, see :mod:`repro.service.shards`).  Results are bit-identical
  across backends: the backend only decides *where* the identical per-shard
  code runs;
* **result bus** — every chunk yields one
  :class:`~repro.service.bus.QueryUpdate` per query (latest results,
  subscriber callbacks, per-query lag/throughput stats).

Example::

    specs = [
        QuerySpec("concerts", SurgeQuery(0.01, 0.01, 3600), keyword="concert"),
        QuerySpec("city-wide", SurgeQuery(0.05, 0.05, 1800)),
    ]
    with SurgeService(specs, shards=4, executor="process") as service:
        for updates in service.run(stream, chunk_size=1024):
            for update in updates:
                ...  # (query_id, RegionResult) pairs, freshest first
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.base import RegionResult
from repro.obs.tracer import FlightRecorder, Tracer
from repro.service.bus import QueryUpdate, ResultBus, ServiceStats
from repro.service.overload import OverloadConfig, OverloadError, OverloadStats
from repro.service.shards import EXECUTOR_NAMES, make_executor
from repro.service.spec import QuerySpec
from repro.state.policy import CheckpointPolicy
from repro.state.recovery import (
    INGEST_SNAPSHOT_KIND,
    OBS_SNAPSHOT_KIND,
    ServiceManifest,
    encode_stream_time,
    has_checkpoint,
    ingest_snapshot_name,
    manifest_path,
    next_generation,
    obs_snapshot_name,
    prune_generations,
    read_manifest,
    read_previous_manifest,
    shard_snapshot_name,
    wal_path,
    write_manifest,
)
from repro.state.snapshot import SnapshotError, read_snapshot, write_snapshot
from repro.state.wal import ChunkWal, WalCheckpoint
from repro.streams.objects import SpatialObject
from repro.streams.sources import iter_chunks
from repro.streams.watermark import (
    IngestStats,
    WatermarkReorderBuffer,
    classify_bad_record,
)
from repro.streams.windows import OutOfOrderError

logger = logging.getLogger(__name__)

#: Chunk cadence of the default automatic checkpoint policy (used when a
#: ``checkpoint_dir`` is given without an explicit policy).
DEFAULT_CHECKPOINT_EVERY_CHUNKS = 64


class SurgeService:
    """Continuous multi-query monitor over one shared spatial stream.

    Parameters
    ----------
    specs:
        Initial query registrations (more can be added later with
        :meth:`add_query`); ids must be unique.
    shards:
        Number of shards the queries are spread over (round-robin in
        registration order).
    executor:
        Shard execution backend: ``"serial"``, ``"thread"`` or ``"process"``.
    shared_plan:
        Whether shards run the shared-work execution plan (inverted keyword
        routing, shared window groups and shared detector units — see
        :mod:`repro.service.shards`).  Default on; results are bit-identical
        either way, the plan only removes redundant work, so ``False`` is an
        escape hatch (``repro serve --no-shared-plan``) and the baseline the
        plan's speedup is benchmarked against.
    checkpoint_dir:
        Optional checkpoint directory (see :mod:`repro.state`).  When given,
        every ingested chunk is recorded in the directory's write-ahead log
        and the service snapshots itself there whenever ``checkpoint_policy``
        says so; :meth:`restore` later resumes from the last checkpoint.
    checkpoint_policy:
        :class:`~repro.state.CheckpointPolicy` driving automatic checkpoints
        (default when a directory is given: every
        :data:`DEFAULT_CHECKPOINT_EVERY_CHUNKS` chunks).  Ignored without a
        ``checkpoint_dir``.
    checkpoint_extra:
        Free-form JSON-serialisable metadata stored in every manifest this
        service writes (e.g. the CLI records its ``--chunk-size`` so a
        resume can refuse a mismatching re-chunking).
    max_lateness:
        Disorder tolerance of :meth:`run`, in stream seconds.  ``0``
        (default) is **strict mode**: out-of-order input fails fast with
        :class:`~repro.streams.windows.OutOfOrderError`, exactly the
        historical behaviour.  Positive: arrivals are re-sorted through a
        :class:`~repro.streams.watermark.WatermarkReorderBuffer` ahead of
        the chunker, stragglers displaced further than the bound are
        counted and dropped, and any stream whose disorder stays within the
        bound produces results bit-identical to the pre-sorted stream.
    on_bad_record:
        Optional callback ``(record, reason) -> None`` invoked for every
        malformed record quarantined by :meth:`run` (NaN timestamps,
        non-finite coordinates, non-``SpatialObject`` values, broken
        keyword payloads — see
        :func:`~repro.streams.watermark.classify_bad_record`).  Setting it
        (or ``quarantine_dir``, or a positive ``max_lateness``) enables the
        quarantine screen; otherwise malformed records fail fast as before.
    quarantine_dir:
        Optional directory; quarantined records are appended to
        ``quarantine.jsonl`` there (one JSON line each: reason + record),
        in addition to being counted in
        :attr:`~repro.service.bus.ServiceStats.ingest`.  The spill is
        observability, not state: replaying a crashed run may append a
        pre-crash record again, but the counters are checkpointed and stay
        exactly-once.  An unwritable or full directory never kills
        ingestion — failed spills are counted
        (:attr:`~repro.streams.watermark.IngestStats.spill_errors`) with a
        one-time warning, and the service continues.
    max_inflight_chunks:
        Optional bound (in chunks) on the raw arrivals buffered between the
        disorder-tolerant ingestion tier and the shard executors (reorder
        heap plus pending chunk).  When the budget would be exceeded, the
        oldest held-back arrivals are force-released early
        (:meth:`~repro.streams.watermark.WatermarkReorderBuffer.
        force_release`) and dispatched: memory stays provably bounded at
        ``max_inflight_chunks × chunk_size`` objects whatever the stream
        does, trading a slice of the reorder horizon under pressure
        (force-released objects are counted; a straggler landing behind the
        raised order floor is dropped as late).  ``None`` (default)
        disables the budget.
    overload:
        Optional :class:`~repro.service.overload.OverloadConfig` enabling
        degraded mode: when the observed queue depth (buffered ingest work
        and/or the deepest bounded bus subscription, measured in chunks)
        crosses the high watermark, the service flips into a counted
        degraded state and applies the configured policy — ``shed`` (skip
        chunks for low-priority route classes), ``stretch`` (widen the
        checkpoint cadence), or ``error`` (raise
        :class:`~repro.service.overload.OverloadError`) — until depth
        falls back to the low watermark (hysteresis).  All transitions and
        shed work are counted in
        :attr:`~repro.service.bus.ServiceStats.overload`.
    compact_every_chunks:
        Optional cadence (in chunks) for automatic safe-boundary
        re-epoching: every that-many ingested chunks the service runs a
        :meth:`compact` pass, merging late-registered queries whose window
        state has converged with their route-mates' back into shared plan
        groups (restoring the sharing a churn storm destroyed).  ``None``
        (default) means manual :meth:`compact` calls only.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` enabling pipeline-wide
        stage tracing (see :mod:`repro.obs`): every shard records spans for
        its routing/window/sweep/settle stages and ships them back with the
        chunk's results, the ingest tier traces reorder and quarantine work,
        and the bus traces publication — all into the tracer's bounded
        flight recorder.  A tracer with ``enabled=False`` keeps the plumbing
        attached but records nothing (the zero-overhead off switch the
        benchmarks measure).  The recorder is included in checkpoints and
        restored by :meth:`restore` when a tracer is passed there.
    """

    def __init__(
        self,
        specs: Sequence[QuerySpec] = (),
        *,
        shards: int = 1,
        executor: str = "serial",
        executor_options: Mapping[str, Any] | None = None,
        shared_plan: bool = True,
        checkpoint_dir: str | Path | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        checkpoint_extra: Mapping[str, Any] | None = None,
        max_lateness: float = 0.0,
        on_bad_record: Callable[[Any, str], None] | None = None,
        quarantine_dir: str | Path | None = None,
        max_inflight_chunks: int | None = None,
        overload: OverloadConfig | None = None,
        compact_every_chunks: int | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if executor.lower() not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        self.executor_name = executor.lower()
        self.executor_options = dict(executor_options) if executor_options else {}
        self.n_shards = shards
        self.shared_plan = bool(shared_plan)
        if self.executor_name == "remote" and checkpoint_dir is None:
            # Legal but worth flagging: without durable generations the
            # failover base degrades to "rebuild from specs + replay every
            # mutating message since the start" — correct, unbounded memory.
            logger.warning(
                "remote executor without checkpoint_dir: worker failover "
                "must replay the full message ledger from the start of the "
                "stream; attach checkpoint_dir=... to bound recovery",
                extra={"executor": self.executor_name},
            )
        # Round-robin assignment keyed to a monotone registration counter:
        # removals never reshuffle surviving queries, so a given sequence of
        # add/remove operations lands every query on the same shard under
        # every backend and shard count stays load-balanced over time.
        self._shard_of: dict[str, int] = {}
        self._order: list[str] = []
        self._specs: dict[str, QuerySpec] = {}
        self._registered = 0
        shard_specs: list[list[QuerySpec]] = [[] for _ in range(shards)]
        for spec in specs:
            self._claim(spec)
            shard_specs[self._shard_of[spec.query_id]].append(spec)
        self._executor = make_executor(
            self.executor_name,
            shard_specs,
            shared_plan=self.shared_plan,
            **self.executor_options,
        )
        self.bus = ResultBus()
        # Observability tier (see repro.obs): shard-side span recording is
        # switched on with one control message; the shards ship their spans
        # back piggybacked on each chunk's reply, so the per-chunk cost of
        # tracing is one list per shard, never an extra round-trip.
        self._tracer = tracer
        self.bus.tracer = tracer
        set_tracer = getattr(self._executor, "set_tracer", None)
        if set_tracer is not None and tracer is not None:
            # The remote coordinator records its own spans (remote.scatter,
            # remote.failover) into the service tracer's recorder.
            set_tracer(tracer)
        if tracer is not None and tracer.enabled:
            self._executor.broadcast(("trace", True))
        self._time = float("-inf")
        self._chunk_index = 0
        self._chunk_offset = 0
        self._stats = ServiceStats()
        self._closed = False
        # Disorder-tolerant ingestion tier (see run()): active when any of
        # the three knobs is set, otherwise run() is the historical strict
        # chunker with zero new work on the hot path.
        max_lateness = float(max_lateness)
        if max_lateness < 0:
            raise ValueError(f"max_lateness must be >= 0, got {max_lateness}")
        self.max_lateness = max_lateness
        self.on_bad_record = on_bad_record
        self.quarantine_dir = Path(quarantine_dir) if quarantine_dir is not None else None
        self._reorder: WatermarkReorderBuffer | None = (
            WatermarkReorderBuffer(max_lateness) if max_lateness > 0 else None
        )
        #: Released by the reorder buffer (or screened, in lateness-0
        #: tolerant mode) but not yet dispatched as a full chunk.
        self._pending: list[SpatialObject] = []
        #: Raw records consumed from the input stream by tolerant run()s —
        #: the tolerant tier's replay offset (resume skips raw records, not
        #: chunks: a chunk boundary no longer maps 1:1 to the raw stream).
        self._raw_consumed = 0
        self._quarantined = 0
        self._spill_errors = 0
        self._spill_warned = False
        # Overload tier (see the class docstring): backpressure budget,
        # degraded-mode state machine, compaction cadence.
        if max_inflight_chunks is not None and max_inflight_chunks < 1:
            raise ValueError(
                f"max_inflight_chunks must be >= 1, got {max_inflight_chunks}"
            )
        if compact_every_chunks is not None and compact_every_chunks < 1:
            raise ValueError(
                f"compact_every_chunks must be >= 1, got {compact_every_chunks}"
            )
        self.max_inflight_chunks = max_inflight_chunks
        self.overload_config = overload
        self.compact_every_chunks = compact_every_chunks
        self._overload = OverloadStats()
        self._peak_buffered = 0
        #: Chunk size of the active run() (the unit the queue depth is
        #: measured in); manual push_many callers can rely on the bus-side
        #: depth only.
        self._run_chunk_size: int | None = None
        self._shed_cache: frozenset[str] | None = None
        #: Listener configuration recorded by the network tier (see
        #: :mod:`repro.server`): persisted in the manifest so a ``--resume``
        #: can re-serve the same endpoint without re-specifying it.
        self.server_info: dict[str, Any] | None = None
        # Durability (all disabled until a checkpoint directory is attached).
        self._checkpoint_dir: Path | None = None
        self._checkpoint_policy: CheckpointPolicy = CheckpointPolicy()
        self.checkpoint_extra: dict[str, Any] = {}
        self._wal: ChunkWal | None = None
        self._generation = 0
        self._last_checkpoint_offset = 0
        self._last_checkpoint_time = float("-inf")
        #: Checkpoint prune deletes that failed (see prune_generations):
        #: counted, never fatal — stale generations only cost disk.
        self._prune_errors = 0
        if checkpoint_dir is not None:
            if checkpoint_policy is None:
                checkpoint_policy = CheckpointPolicy(
                    every_chunks=DEFAULT_CHECKPOINT_EVERY_CHUNKS
                )
            self._attach_durability(checkpoint_dir, checkpoint_policy, checkpoint_extra)

    def _claim(self, spec: QuerySpec) -> None:
        if spec.query_id in self._shard_of:
            raise ValueError(f"query {spec.query_id!r} is already registered")
        self._shard_of[spec.query_id] = self._registered % self.n_shards
        self._order.append(spec.query_id)
        self._specs[spec.query_id] = spec
        self._registered += 1
        self._shed_cache = None

    # ------------------------------------------------------------------
    # Query registry
    # ------------------------------------------------------------------
    @property
    def query_ids(self) -> list[str]:
        """Live query ids in registration order."""
        return list(self._order)

    def add_query(self, spec: QuerySpec) -> str:
        """Register a query mid-stream; it sees only objects pushed later.

        With a checkpoint directory attached the new registry is snapshotted
        immediately: registry changes are control-plane operations that the
        chunk-replay recovery cannot reconstruct from the stream, so they
        must be durable the moment they happen.
        """
        self._claim(spec)
        try:
            self._executor.send(self._shard_of[spec.query_id], ("add", spec))
        except Exception:
            self._order.remove(spec.query_id)
            del self._shard_of[spec.query_id]
            del self._specs[spec.query_id]
            raise
        if self._checkpoint_dir is not None:
            self.checkpoint()
        return spec.query_id

    def remove_query(self, query_id: str) -> None:
        """Drop a query; its shard slot is not reused (see ``_claim``).

        Checkpointed immediately when a directory is attached, for the same
        reason as :meth:`add_query`.
        """
        if query_id not in self._shard_of:
            raise KeyError(f"query {query_id!r} is not registered")
        self._executor.send(self._shard_of[query_id], ("remove", query_id))
        self._order.remove(query_id)
        del self._shard_of[query_id]
        del self._specs[query_id]
        self._shed_cache = None
        self.bus.forget(query_id)
        if self._checkpoint_dir is not None:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Overload tier: queue depth, hysteresis, shedding
    # ------------------------------------------------------------------
    def queue_depth_chunks(self) -> float:
        """Observed queue depth in chunks — the overload watermark's input.

        The larger of two backlogs: raw arrivals buffered ahead of the
        shards (reorder heap + pending chunk, over the active run's chunk
        size — a pure function of the stream, so replayed runs see the
        same depths), and the deepest bounded bus subscription (updates,
        over the live query count: one chunk produces one update per
        query).
        """
        depth = 0.0
        if self._run_chunk_size:
            buffered = len(self._pending)
            if self._reorder is not None:
                buffered += len(self._reorder)
            depth = buffered / self._run_chunk_size
        if self._order:
            bus_depth = self.bus.max_queue_depth() / len(self._order)
            if bus_depth > depth:
                depth = bus_depth
        return depth

    def overload_stats(self) -> OverloadStats:
        """The overload tier's counters (all zero while never overloaded)."""
        return self._overload

    @property
    def degraded(self) -> bool:
        """Whether the service is currently in degraded mode."""
        return self._overload.degraded

    def _sheddable_ids(self) -> frozenset[str]:
        """Query ids shed while degraded: whole low-priority route classes.

        Shedding is decided at *route class* granularity — the
        (keyword, window lengths) key that also defines shared window
        groups — and a class is shed only when **every** member is below
        the priority threshold.  A partially-shed class would force a
        shared window group's clock to advance for some members but not
        others, splitting provably-identical state; whole classes keep
        every group fully shed or fully active, so the shared and unshared
        plans degrade bit-identically.
        """
        if self._shed_cache is not None:
            return self._shed_cache
        config = self.overload_config
        if config is None or not self._specs:
            self._shed_cache = frozenset()
            return self._shed_cache
        threshold = config.shed_below_priority
        if threshold is None:
            # Default: shed everything ranked below the best present.  With
            # uniform priorities nothing is sheddable — degrading to
            # transition-counting only, never to silently dropped work.
            threshold = max(spec.priority for spec in self._specs.values())
        classes: dict[tuple, list[QuerySpec]] = {}
        for spec in self._specs.values():
            query = spec.query
            past = (
                query.past_window_length
                if query.past_window_length is not None
                else query.window_length
            )
            key = (spec.keyword, query.window_length, past)
            classes.setdefault(key, []).append(spec)
        shed: set[str] = set()
        for members in classes.values():
            if all(member.priority < threshold for member in members):
                shed.update(member.query_id for member in members)
        self._shed_cache = frozenset(shed)
        return self._shed_cache

    def _evaluate_overload(self) -> frozenset[str]:
        """Run the hysteresis state machine; return the chunk's shed set.

        Degraded mode is entered at ``depth >= high_watermark_chunks`` and
        left at ``depth <= low_watermark_chunks`` — the dead band between
        them keeps a depth oscillating around one threshold from flapping
        the mode.  Under the ``error`` policy entry raises
        :class:`~repro.service.overload.OverloadError` (strict mode fails
        loudly); ``shed`` returns the sheddable route classes;
        ``stretch`` only flags the mode (the checkpoint path consults it).
        """
        config = self.overload_config
        if config is None:
            return frozenset()
        depth = self.queue_depth_chunks()
        stats = self._overload
        if depth > stats.max_depth_chunks:
            stats.max_depth_chunks = depth
        if not stats.degraded:
            if depth >= config.high_watermark_chunks:
                stats.degraded = True
                stats.entered_degraded += 1
                if config.policy == "error":
                    raise OverloadError(
                        f"queue depth {depth:.2f} chunks crossed the "
                        f"high watermark "
                        f"({config.high_watermark_chunks} chunks) under the "
                        f"error policy",
                        depth_chunks=depth,
                    )
        elif depth <= config.low_watermark_chunks:
            stats.degraded = False
            stats.exited_degraded += 1
        if stats.degraded and config.policy == "shed":
            shed = self._sheddable_ids()
            stats.shedding = sorted(shed)
            return shed
        stats.shedding = []
        return frozenset()

    def _stretched_due(self, chunks_since: int) -> bool:
        """Whether a due checkpoint survives the ``stretch`` policy.

        While degraded under ``stretch``, the configured cadence is
        multiplied by ``checkpoint_stretch``; a checkpoint the base policy
        wanted but the stretched one defers is counted.
        """
        config = self.overload_config
        if (
            config is None
            or config.policy != "stretch"
            or not self._overload.degraded
        ):
            return True
        policy = self._checkpoint_policy
        stretched = CheckpointPolicy(
            every_chunks=(
                policy.every_chunks * config.checkpoint_stretch
                if policy.every_chunks is not None
                else None
            ),
            every_stream_seconds=(
                policy.every_stream_seconds * config.checkpoint_stretch
                if policy.every_stream_seconds is not None
                else None
            ),
        )
        if stretched.due(chunks_since, self._time, self._last_checkpoint_time):
            return True
        self._overload.checkpoints_deferred += 1
        return False

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push_many(self, chunk: Iterable[SpatialObject]) -> list[QueryUpdate]:
        """Broadcast one timestamp-ordered chunk to every shard.

        Returns the per-query updates in query registration order (also
        published on :attr:`bus`).  Timestamp order is validated against the
        service clock here — per-query monitors only see their filtered
        substreams, so an out-of-order object that no query matches would
        otherwise corrupt the clock silently.
        """
        objs = chunk if isinstance(chunk, list) else list(chunk)
        previous = self._time
        for position, obj in enumerate(objs):
            if obj.timestamp < previous:
                raise OutOfOrderError(
                    f"out-of-order arrival in service chunk: object "
                    f"id={obj.object_id} (chunk position {position}) has "
                    f"timestamp t={obj.timestamp}, earlier than the "
                    f"last-accepted stream time t={previous}",
                    object_id=obj.object_id,
                    timestamp=obj.timestamp,
                    last_time=previous,
                )
            previous = obj.timestamp
        if objs:
            self._time = previous
        shed = self._evaluate_overload()
        if shed:
            message = ("chunk", objs, self._chunk_index, shed)
        else:
            message = ("chunk", objs, self._chunk_index)
        updates = self._dispatch(message, len(objs))
        if shed and objs:
            self._overload.chunks_shed += 1
            self._overload.updates_shed += len(shed)
        if objs:
            # Empty chunks are no-ops for every monitor and are never
            # produced by iter_chunks, so they must not advance the replay
            # offset — counting one would make a resume skip a real chunk.
            offset = self._chunk_offset
            self._chunk_offset = offset + 1
            if (
                self.compact_every_chunks is not None
                and self._chunk_offset % self.compact_every_chunks == 0
            ):
                # Before a possible checkpoint, so the snapshot carries the
                # merged plan — and on replay the same offsets re-run the
                # same (deterministic) passes, keeping counters exactly-once.
                self.compact()
            if self._wal is not None:
                self._wal.append_chunk(offset, len(objs), objs[-1].timestamp)
                chunks_since = self._chunk_offset - self._last_checkpoint_offset
                if self._checkpoint_policy.due(
                    chunks_since,
                    self._time,
                    self._last_checkpoint_time,
                ) and self._stretched_due(chunks_since):
                    self.checkpoint()
        return updates

    def push(self, obj: SpatialObject) -> list[QueryUpdate]:
        """Push a single object (a one-object chunk)."""
        return self.push_many([obj])

    def compact(self) -> int:
        """Safe-boundary re-epoching: restore sharing lost to churn.

        Runs between chunks (every pipeline settled at the same chunk
        boundary, no partial state anywhere) and asks every shard to merge
        late-registered queries whose window state has *converged* with
        their route-mates' back into the veterans' sharing groups — see
        :meth:`repro.service.shards.ShardState.compact` for the exactness
        argument.  Results are bit-identical before and after: the pass
        only de-duplicates provably equal state.

        Returns the number of queries merged (0 when nothing has converged
        yet — the pass is cheap and idempotent, so calling it on a cadence
        via ``compact_every_chunks`` is the intended mode).
        """
        merged = sum(self._executor.broadcast(("compact",)))
        self._overload.compactions += 1
        self._overload.queries_compacted += merged
        return merged

    def advance_time(self, stream_time: float) -> list[QueryUpdate]:
        """Advance every query's clock without new arrivals.

        Clock advances are *not* recorded in the write-ahead log — the
        chunk-offset replay of recovery reconstructs the clock from the
        stream's own timestamps, not from explicit advances.  A caller
        relying on a standalone ``advance_time`` past the end of the
        replayable stream should call :meth:`checkpoint` afterwards to make
        its effects durable.
        """
        if stream_time < self._time:
            raise OutOfOrderError(
                f"cannot move stream time backwards: requested t={stream_time} "
                f"is earlier than the last-accepted stream time t={self._time}",
                timestamp=stream_time,
                last_time=self._time,
            )
        self._time = stream_time
        return self._dispatch(("advance", stream_time, self._chunk_index), 0)

    def _dispatch(self, message: tuple, n_objects: int) -> list[QueryUpdate]:
        chunk_index = self._chunk_index
        started = time.perf_counter()
        replies = self._executor.broadcast(message)
        wall = time.perf_counter() - started
        by_query: dict[str, QueryUpdate] = {}
        for shard, reply in enumerate(replies):
            if isinstance(reply, tuple):
                # A tracing shard replies (updates, spans): absorb the spans
                # into the service-side recorder, labelled with the shard's
                # lane so the exported trace shows per-shard timelines.
                reply, spans = reply
                if spans:
                    self._absorb_shard_spans(shard, spans, started)
            for update in reply:
                by_query[update.query_id] = update
        # Registration order, with the broadcast wall time stamped as each
        # query's lag: an update is only observable once the gather returns.
        updates = [
            by_query[query_id].with_lag(wall)
            for query_id in self._order
            if query_id in by_query
        ]
        self._chunk_index += 1
        self._stats.objects_pushed += n_objects
        self._stats.chunks_pushed += 1
        # Shed queries did no work on this chunk, so they contribute no
        # object–query pairs to the throughput headline.
        self._stats.object_query_pairs += n_objects * sum(
            1 for update in updates if not update.shed
        )
        self._stats.wall_seconds += wall
        self.bus.publish(updates)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            threshold = tracer.slow_chunk_threshold
            if threshold is not None and wall > threshold:
                self._record_slow_chunk(chunk_index, wall, started)
        return updates

    def _absorb_shard_spans(
        self, shard: int, spans: list[tuple], dispatch_started: float
    ) -> None:
        tracer = self._tracer
        if tracer is None or not tracer.enabled:
            return
        if self.executor_name in ("process", "remote"):
            # Worker processes run on their own perf_counter epoch; rebase
            # their spans onto this process's clock (anchored at the
            # dispatch start) so all lanes share one timeline.  Serial and
            # thread executors already share the clock — no shift.
            delta = dispatch_started - min(span[1] for span in spans)
        else:
            delta = 0.0
        lane = f"shard{shard}"
        recorder = tracer.recorder
        for stage, start, duration, span_lane, chunk, meta in spans:
            recorder.record(
                (stage, start + delta, duration, span_lane or lane, chunk, meta)
            )

    def _record_slow_chunk(
        self, chunk_index: int, wall: float, started: float
    ) -> None:
        """Capture a slow chunk: its span tree plus the live queue depths."""
        tracer = self._tracer
        assert tracer is not None
        depths: dict[str, Any] = {
            "pending_objects": len(self._pending),
            "bus_max_queue_depth": self.bus.max_queue_depth(),
            "queue_depth_chunks": self.queue_depth_chunks(),
        }
        if self._reorder is not None:
            depths["reorder"] = self._reorder.depths()
        spans = [span for span in tracer.recorder.spans() if span[1] >= started]
        count = tracer.recorder.record_slow_chunk(
            {
                "chunk_index": chunk_index,
                "wall_seconds": wall,
                "threshold_seconds": tracer.slow_chunk_threshold,
                "spans": spans,
                "depths": depths,
            }
        )
        logger.warning(
            "slow chunk %d: %.6fs wall (threshold %.6fs), %d spans captured",
            chunk_index,
            wall,
            tracer.slow_chunk_threshold,
            len(spans),
            extra={
                "chunk_index": chunk_index,
                "wall_seconds": wall,
                "threshold_seconds": tracer.slow_chunk_threshold,
                "slow_chunks": count,
            },
        )

    def run(
        self,
        stream: Iterable[SpatialObject],
        chunk_size: int = 512,
        start_offset: int = 0,
    ) -> Iterator[list[QueryUpdate]]:
        """Chunk a whole stream through the service, yielding per-chunk updates.

        ``start_offset`` skips that many leading chunks — the resume idiom:
        a service restored from a checkpoint replays the same stream with
        ``start_offset=service.chunk_offset`` (and the *same* ``chunk_size``
        as the original run, or the skipped prefix would not line up), so
        every chunk lands in the service state exactly once.

        With the disorder-tolerant tier enabled (``max_lateness``,
        ``on_bad_record`` or ``quarantine_dir`` set) the stream is screened
        and re-sorted *ahead of* the chunker: malformed records are
        quarantined, bounded disorder is absorbed by the reorder buffer, and
        the ordered output is re-cut into ``chunk_size`` chunks — so the
        chunks the shards see are exactly those of the pre-sorted stream,
        which is what makes the results bit-identical to it (chunk
        boundaries are score-visible at the 1e-15 level, so re-sorting
        *within* chunks would not be enough).  Resume then replays *raw
        records*, not chunks: pass ``start_offset=service.chunk_offset``
        exactly as in strict mode, and the tier skips the
        already-consumed raw prefix itself.
        """
        self._run_chunk_size = chunk_size
        if not self._tolerant:
            for chunk in iter_chunks(stream, chunk_size, start_offset=start_offset):
                yield self.push_many(chunk)
            return
        yield from self._run_tolerant(stream, chunk_size, start_offset)

    @property
    def _tolerant(self) -> bool:
        return (
            self._reorder is not None
            or self.on_bad_record is not None
            or self.quarantine_dir is not None
        )

    def feed(
        self, records: Iterable[Any], chunk_size: int = 512
    ) -> Iterator[list[QueryUpdate]]:
        """Push-style incremental ingestion — the network tier's entry point.

        Unlike :meth:`run`, which consumes a whole stream, ``feed`` accepts
        arrivals in arbitrary batches and dispatches whatever *full* chunks
        they complete, holding the remainder (and, in tolerant mode, the
        reorder buffer's contents) for the next batch.  Interleaving
        ``feed`` calls with :meth:`flush_pending` at the very end is
        bit-identical to one :meth:`run` over the concatenated batches:
        chunk boundaries depend only on the arrival sequence, never on how
        it was split across calls.

        In tolerant mode (``max_lateness`` / ``on_bad_record`` /
        ``quarantine_dir``) records are screened and re-sorted exactly as in
        :meth:`run`.  In strict mode a malformed record raises
        :class:`ValueError` and an out-of-order one raises
        :class:`~repro.streams.windows.OutOfOrderError` — fail-fast, so a
        network caller gets a typed refusal instead of silent corruption.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._run_chunk_size = chunk_size
        for record in records:
            yield from self._ingest_record(record, chunk_size)

    def flush_pending(
        self, chunk_size: int | None = None
    ) -> Iterator[list[QueryUpdate]]:
        """Release every held-back arrival and dispatch the remainder.

        End-of-stream semantics for :meth:`feed`: the reorder buffer is
        drained in order and the pending list is cut into chunks, the last
        possibly short — exactly what chunking the pre-sorted stream would
        have produced.  Safe to call when nothing is pending (no-op).
        """
        if chunk_size is None:
            chunk_size = self._run_chunk_size or 512
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if self._reorder is not None:
            self._pending.extend(self._reorder.flush())
        while self._pending:
            chunk = self._pending[:chunk_size]
            del self._pending[:chunk_size]
            yield self.push_many(chunk)

    def _run_tolerant(
        self,
        stream: Iterable[SpatialObject],
        chunk_size: int,
        start_offset: int,
    ) -> Iterator[list[QueryUpdate]]:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if start_offset != self._chunk_offset:
            raise ValueError(
                f"tolerant-mode resume replays raw records, not chunks: pass "
                f"start_offset=service.chunk_offset "
                f"(={self._chunk_offset}), got {start_offset}"
            )
        iterator = iter(stream)
        # Skip the raw records already consumed before the checkpoint this
        # service was restored from; their surviving effects (applied
        # chunks, held-back buffer contents, pending list, counters) were
        # all restored with the service state.
        skipped = 0
        while skipped < self._raw_consumed:
            try:
                next(iterator)
            except StopIteration:
                raise ValueError(
                    f"resume stream is shorter than the checkpoint's "
                    f"raw-record offset: consumed {self._raw_consumed} "
                    f"records before the crash, replay provided {skipped} "
                    f"(different stream?)"
                ) from None
            skipped += 1
        for record in iterator:
            yield from self._ingest_record(record, chunk_size)
        # End of stream: everything still held back is released (in order)
        # and dispatched, last chunk possibly short — exactly what chunking
        # the pre-sorted stream would have produced.
        yield from self.flush_pending(chunk_size)

    def _ingest_record(
        self, record: Any, chunk_size: int
    ) -> Iterator[list[QueryUpdate]]:
        self._raw_consumed += 1
        reason = classify_bad_record(record)
        if reason is not None:
            if not self._tolerant:
                # feed() in strict mode: fail fast with the classifier's
                # reason instead of quarantining silently — the historical
                # strict contract, surfaced as a typed refusal.
                raise ValueError(
                    f"malformed record in strict mode ({reason}); enable "
                    f"the quarantine screen (max_lateness, on_bad_record "
                    f"or quarantine_dir) to absorb bad records"
                )
            self._quarantine(record, reason)
            return
        if self._reorder is not None:
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                reorder_started = time.perf_counter()
                released = self._reorder.push(record)
                tracer.record(
                    "ingest.reorder",
                    reorder_started,
                    time.perf_counter(),
                    lane="ingest",
                )
                self._pending.extend(released)
            else:
                self._pending.extend(self._reorder.push(record))
        else:
            # Lateness 0 with only the quarantine screen active: ordering
            # stays strict, and the violation surfaces here (fail-fast)
            # rather than at the next chunk boundary.
            last = self._pending[-1].timestamp if self._pending else self._time
            if record.timestamp < last:
                raise OutOfOrderError(
                    f"out-of-order arrival: object id={record.object_id} has "
                    f"timestamp t={record.timestamp}, which is earlier than "
                    f"the last-accepted stream time t={last} (strict mode: "
                    f"set max_lateness > 0 to absorb bounded disorder)",
                    object_id=record.object_id,
                    timestamp=record.timestamp,
                    last_time=last,
                )
            self._pending.append(record)
        # Dispatch in full chunks only; the remainder stays pending so the
        # chunk boundaries match the pre-sorted stream's.  A checkpoint
        # firing inside push_many sees consistent state: the dispatched
        # chunk is already off the pending list and _raw_consumed counts
        # every record consumed so far.
        while len(self._pending) >= chunk_size:
            chunk = self._pending[:chunk_size]
            del self._pending[:chunk_size]
            yield self.push_many(chunk)
        if self.max_inflight_chunks is not None and self._reorder is not None:
            # Backpressure valve: the reorder heap is the only place raw
            # arrivals can pile up without bound (a flash crowd inside one
            # lateness window).  Over budget, the oldest held-back arrivals
            # are released early — still in sorted order — and dispatched,
            # so the buffered total never exceeds the budget after any
            # record (the transient above it is the one record just pushed).
            budget = self.max_inflight_chunks * chunk_size
            while (
                len(self._pending) + len(self._reorder) > budget
                and len(self._reorder) > 0
            ):
                # Release enough to cover the excess AND complete a full
                # chunk — a release that leaves pending short of a chunk
                # dispatches nothing and the total would stay over budget.
                excess = len(self._pending) + len(self._reorder) - budget
                short = chunk_size - (len(self._pending) % chunk_size)
                self._pending.extend(
                    self._reorder.force_release(max(excess, short))
                )
                while len(self._pending) >= chunk_size:
                    chunk = self._pending[:chunk_size]
                    del self._pending[:chunk_size]
                    yield self.push_many(chunk)
        buffered = len(self._pending) + (
            len(self._reorder) if self._reorder is not None else 0
        )
        if buffered > self._peak_buffered:
            self._peak_buffered = buffered

    def _quarantine(self, record: Any, reason: str) -> None:
        tracer = self._tracer
        traced = tracer is not None and tracer.enabled
        quarantine_started = time.perf_counter() if traced else 0.0
        self._quarantined += 1
        if self.quarantine_dir is not None:
            if isinstance(record, SpatialObject):
                payload: Any = {
                    "x": record.x,
                    "y": record.y,
                    "timestamp": record.timestamp,
                    "weight": record.weight,
                    "object_id": record.object_id,
                    "attributes": dict(record.attributes),
                }
            else:
                payload = repr(record)
            line = json.dumps(
                {"reason": reason, "record": payload}, default=repr, sort_keys=True
            )
            try:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                with open(
                    self.quarantine_dir / "quarantine.jsonl", "a", encoding="utf-8"
                ) as handle:
                    handle.write(line + "\n")
            except OSError as exc:
                # The spill is observability, not state: an unwritable or
                # full directory must not kill ingestion mid-chunk.  The
                # failure is counted and warned about exactly once.
                self._spill_errors += 1
                if not self._spill_warned:
                    self._spill_warned = True
                    logger.warning(
                        "quarantine spill to %s failed (%s); quarantined "
                        "records are still counted and skipped, but will not "
                        "be written out (warning once)",
                        self.quarantine_dir,
                        exc,
                        extra={
                            "quarantine_dir": str(self.quarantine_dir),
                            "spill_errors": self._spill_errors,
                        },
                    )
        if self.on_bad_record is not None:
            self.on_bad_record(record, reason)
        if traced:
            tracer.record(
                "ingest.quarantine",
                quarantine_started,
                time.perf_counter(),
                lane="ingest",
                meta={"reason": reason},
            )

    # ------------------------------------------------------------------
    # Results and stats
    # ------------------------------------------------------------------
    def results(self) -> dict[str, RegionResult | None]:
        """Current result of every live query (queried from the shards)."""
        merged: dict[str, RegionResult | None] = {}
        for reply in self._executor.broadcast(("results",)):
            merged.update(reply)
        return {query_id: merged[query_id] for query_id in self._order}

    def top_k(self, k: int | None = None) -> dict[str, list[RegionResult]]:
        """Current top-k regions of every live query (best first)."""
        merged: dict[str, list[RegionResult]] = {}
        for reply in self._executor.broadcast(("top_k", k)):
            merged.update(reply)
        return {query_id: merged[query_id] for query_id in self._order}

    def latest(self, query_id: str) -> QueryUpdate | None:
        """Most recent bus update for a query — no shard round-trip."""
        return self.bus.latest(query_id)

    def stats(self) -> ServiceStats:
        """Aggregate service stats with per-query lag/throughput attached."""
        self._stats.per_query = {
            query_id: self.bus.stats(query_id) for query_id in self._order
        }
        self._stats.ingest = self.ingest_stats()
        self._stats.overload = self._overload
        return self._stats

    def distributed_stats(self) -> dict[str, Any] | None:
        """The distributed tier's failure counters (``None`` off-remote).

        A dict snapshot of the remote coordinator's
        :class:`~repro.distributed.stats.DistributedStats` plus live fleet
        gauges (``workers_alive``, ``workers_total``, ``ledger_depth``) —
        the payload behind the stats frame's ``distributed`` section and
        the ``repro_remote_*`` Prometheus series.
        """
        snapshot = getattr(self._executor, "stats_snapshot", None)
        return snapshot() if snapshot is not None else None

    @property
    def tracer(self) -> Tracer | None:
        """The attached tracer (``None`` = observability tier off)."""
        return self._tracer

    def stage_stats(self) -> dict[str, dict[str, Any]]:
        """Per-stage latency aggregates from the attached tracer's recorder.

        Stage-sorted ``{stage: {count, total_seconds, min_seconds,
        max_seconds, buckets}}`` — the payload behind the stats frame's
        ``stages`` section and the ``repro_stage_seconds`` Prometheus
        histograms.  Empty without a tracer (or before any span).
        """
        if self._tracer is None:
            return {}
        return self._tracer.recorder.stage_stats()

    def ingest_stats(self) -> IngestStats:
        """The disorder-tolerant tier's counters (all zero in strict mode,
        except ``subscriber_errors``, which the bus isolates unconditionally)."""
        stats = IngestStats(
            quarantined=self._quarantined,
            subscriber_errors=self.bus.subscriber_errors,
            spill_errors=self._spill_errors,
            peak_buffered=self._peak_buffered,
        )
        if self._reorder is not None:
            stats.reordered = self._reorder.reordered
            stats.late_dropped = self._reorder.late_dropped
            stats.duplicates_seen = self._reorder.duplicates_seen
            stats.force_released = self._reorder.force_released
        return stats

    # ------------------------------------------------------------------
    # Durability (see repro.state for the file formats)
    # ------------------------------------------------------------------
    @property
    def chunk_offset(self) -> int:
        """Number of stream chunks ingested so far (the replay offset)."""
        return self._chunk_offset

    @property
    def chunk_index(self) -> int:
        """Number of chunk dispatches so far (empty chunks included)."""
        return self._chunk_index

    @property
    def stream_time(self) -> float:
        """The last-accepted stream timestamp (``-inf`` before any object)."""
        return self._time

    @property
    def raw_consumed(self) -> int:
        """Raw records consumed by ``feed``/tolerant ``run`` (replay offset)."""
        return self._raw_consumed

    @property
    def checkpoint_dir(self) -> Path | None:
        """The attached checkpoint directory (``None`` = durability off)."""
        return self._checkpoint_dir

    @property
    def checkpoint_policy(self) -> CheckpointPolicy:
        """The automatic checkpoint cadence (triggers disabled when detached)."""
        return self._checkpoint_policy

    def _attach_durability(
        self,
        directory: str | Path,
        policy: CheckpointPolicy,
        extra: Mapping[str, Any] | None = None,
        *,
        resume_from: WalCheckpoint | None = None,
    ) -> None:
        """Attach a checkpoint directory for WAL appends and auto snapshots.

        ``resume_from`` is the checkpoint the service state was just
        restored from (:meth:`restore` passes it); ``None`` means a fresh
        service, which refuses a directory that already holds a checkpoint
        — attaching would overwrite it on the first snapshot.  Either way
        the WAL is atomically reset to match *this* service's durable state:
        a stale log (from the crash being recovered, or from an unrelated
        previous run) would double-count the replayed chunks otherwise.
        """
        directory = Path(directory)
        if resume_from is None and has_checkpoint(directory):
            raise ValueError(
                f"{directory} already holds a service checkpoint; use "
                f"SurgeService.restore({str(directory)!r}) to continue it, "
                f"or point checkpoint_dir at a fresh directory"
            )
        if self.executor_name == "remote":
            policy = self._clamp_remote_policy(policy)
        self._checkpoint_dir = directory
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._checkpoint_policy = policy
        if extra:
            self.checkpoint_extra = dict(extra)
        self._wal = ChunkWal(wal_path(self._checkpoint_dir))
        self._wal.reset(resume_from)
        self._generation = resume_from.generation if resume_from is not None else 0
        self._last_checkpoint_offset = self._chunk_offset
        self._last_checkpoint_time = self._time

    def _clamp_remote_policy(self, policy: CheckpointPolicy) -> CheckpointPolicy:
        """Enforce the remote tier's checkpoint-cadence floor.

        Under the remote executor every mutating message since the last
        durable generation sits in the coordinator's replay ledger, so the
        checkpoint cadence bounds both failover replay time and coordinator
        memory.  A policy with no chunk cadence (or one wider than
        :data:`~repro.distributed.executor.REMOTE_CHECKPOINT_FLOOR_CHUNKS`)
        is clamped to the floor, with a structured warning.
        """
        from repro.distributed.executor import REMOTE_CHECKPOINT_FLOOR_CHUNKS

        every = policy.every_chunks
        if every is not None and every <= REMOTE_CHECKPOINT_FLOOR_CHUNKS:
            return policy
        logger.warning(
            "remote executor clamps the checkpoint cadence to every %d "
            "chunks (requested: %s); the cadence bounds failover replay "
            "and the coordinator's ledger memory",
            REMOTE_CHECKPOINT_FLOOR_CHUNKS,
            "none" if every is None else f"every {every} chunks",
            extra={
                "event": "remote_checkpoint_floor",
                "requested_every_chunks": every,
                "floor_chunks": REMOTE_CHECKPOINT_FLOOR_CHUNKS,
            },
        )
        return CheckpointPolicy(
            every_chunks=REMOTE_CHECKPOINT_FLOOR_CHUNKS,
            every_stream_seconds=policy.every_stream_seconds,
        )

    @property
    def checkpoint_prune_errors(self) -> int:
        """Failed checkpoint-prune deletes so far (counted, never fatal)."""
        return self._prune_errors

    def checkpoint(self, directory: str | Path | None = None) -> Path:
        """Snapshot the whole service durably; returns the manifest path.

        Every shard writes its own generation-tagged snapshot file (under
        the process executor, inside its worker process), then the service
        manifest — query registry, shard assignment, chunk offset, stream
        clock, cumulative stats — is atomically replaced and the write-ahead
        log restarted from the new checkpoint record.  A crash at any point
        leaves the previous checkpoint fully usable.

        With no argument the attached ``checkpoint_dir`` is used (this is
        what the automatic policy calls); an explicit ``directory`` takes a
        one-off checkpoint there without attaching it.
        """
        target = Path(directory) if directory is not None else self._checkpoint_dir
        if target is None:
            raise ValueError(
                "no checkpoint directory: construct the service with "
                "checkpoint_dir=... or pass an explicit directory"
            )
        tracer = self._tracer
        traced = tracer is not None and tracer.enabled
        checkpoint_started = time.perf_counter() if traced else 0.0
        target.mkdir(parents=True, exist_ok=True)
        # Spelling-insensitive "is this the attached directory?" — a relative
        # vs absolute path must not fork the bookkeeping.
        attached = (
            self._checkpoint_dir is not None
            and target.resolve() == self._checkpoint_dir.resolve()
        )
        if attached:
            # The service wrote (or restored) the attached directory's last
            # manifest itself, so the generation counter lives in memory —
            # no O(registry) manifest re-parse on the ingestion path.
            generation = self._generation + 1
        else:
            generation = next_generation(target)
        shard_files = [
            shard_snapshot_name(index, generation) for index in range(self.n_shards)
        ]
        shard_meta = {
            "generation": generation,
            "chunk_offset": self._chunk_offset,
            "chunk_index": self._chunk_index,
        }
        self._executor.scatter(
            [
                ("checkpoint", str(target / name), dict(shard_meta, shard=index))
                for index, name in enumerate(shard_files)
            ]
        )
        ingest_record: dict[str, Any] | None = None
        if self._tolerant or self._pending or self._raw_consumed:
            # The second and third conditions cover strict-mode feed():
            # a partial pending chunk and the raw-record offset are state
            # too, even without the reorder buffer.
            # The ingest tier's held-back events are part of checkpoint
            # state: without them a resume would replay the raw stream into
            # an empty buffer and double- or under-deliver around the
            # watermark.  Written before the manifest (same crash-safety
            # ordering as the shard files).
            ingest_file = ingest_snapshot_name(generation)
            write_snapshot(
                target / ingest_file,
                INGEST_SNAPSHOT_KIND,
                {
                    "reorder": self._reorder,
                    "pending": list(self._pending),
                },
                meta=dict(shard_meta, raw_consumed=self._raw_consumed),
            )
            ingest_record = {
                "max_lateness": self.max_lateness,
                "raw_consumed": self._raw_consumed,
                "quarantined": self._quarantined,
                "subscriber_errors": self.bus.subscriber_errors,
                "spill_errors": self._spill_errors,
                "peak_buffered": self._peak_buffered,
                "snapshot_file": ingest_file,
            }
        obs_record: dict[str, Any] | None = None
        if tracer is not None:
            # The flight recorder is state worth surviving a crash: the
            # aggregates are the service's latency history and the ring is
            # the last-moments evidence an operator wants after a restore.
            obs_file = obs_snapshot_name(generation)
            write_snapshot(
                target / obs_file,
                OBS_SNAPSHOT_KIND,
                tracer.recorder,
                meta=dict(shard_meta),
            )
            obs_record = {
                "snapshot_file": obs_file,
                "enabled": tracer.enabled,
                "slow_chunk_threshold": tracer.slow_chunk_threshold,
            }
        overload_record: dict[str, Any] | None = None
        if (
            self.overload_config is not None
            or self.max_inflight_chunks is not None
            or self.compact_every_chunks is not None
            or self._overload != OverloadStats()
        ):
            overload_record = {
                "config": (
                    self.overload_config.to_dict()
                    if self.overload_config is not None
                    else None
                ),
                "stats": self._overload.to_dict(),
                "max_inflight_chunks": self.max_inflight_chunks,
                "compact_every_chunks": self.compact_every_chunks,
            }
        manifest = ServiceManifest(
            generation=generation,
            chunk_offset=self._chunk_offset,
            chunk_index=self._chunk_index,
            stream_time=self._time,
            n_shards=self.n_shards,
            executor=self.executor_name,
            order=list(self._order),
            shard_of=dict(self._shard_of),
            registered=self._registered,
            specs=[self._specs[query_id].to_dict() for query_id in self._order],
            policy=self._checkpoint_policy.to_dict(),
            stats={
                "objects_pushed": self._stats.objects_pushed,
                "chunks_pushed": self._stats.chunks_pushed,
                "object_query_pairs": self._stats.object_query_pairs,
                "wall_seconds": self._stats.wall_seconds,
                "per_query": self.bus.export_stats(),
            },
            shard_files=shard_files,
            extra=dict(self.checkpoint_extra),
            shared_plan=self.shared_plan,
            ingest=ingest_record,
            overload=overload_record,
            server=(
                dict(self.server_info) if self.server_info is not None else None
            ),
            obs=obs_record,
        )
        path = write_manifest(target, manifest)
        ChunkWal(wal_path(target)).mark_checkpoint(
            WalCheckpoint(
                chunk_offset=self._chunk_offset,
                generation=generation,
                stream_time=encode_stream_time(self._time),
            )
        )
        self._prune_errors += prune_generations(target, generation)
        if attached:
            self._generation = generation
            self._last_checkpoint_offset = self._chunk_offset
            self._last_checkpoint_time = self._time
        if traced:
            tracer.record(
                "checkpoint",
                checkpoint_started,
                time.perf_counter(),
                meta={"generation": generation},
            )
        return path

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        *,
        executor: str | None = None,
        executor_options: Mapping[str, Any] | None = None,
        shared_plan: bool | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        attach: bool = True,
        on_bad_record: Callable[[Any, str], None] | None = None,
        quarantine_dir: str | Path | None = None,
        tracer: Tracer | None = None,
    ) -> "SurgeService":
        """Rebuild a service from the last checkpoint in ``directory``.

        The restored service is *bit-identical* to the checkpointed one:
        every query's monitor resumes mid-stream exactly where the snapshot
        left it, so replaying the original stream from
        ``service.chunk_offset`` (``iter_chunks(start_offset=...)`` /
        :meth:`run` with ``start_offset``) reproduces the uninterrupted run.
        The recovery unit is the *chunk*: registry changes are made durable
        at the moment they happen (see :meth:`add_query`), but a standalone
        :meth:`advance_time` after the last checkpoint is not replayable
        from the stream and needs an explicit :meth:`checkpoint` to survive
        a crash.

        ``executor`` optionally overrides the recorded backend (results are
        identical across backends); the shard count always comes from the
        manifest, because the per-shard snapshot files partition the queries.
        ``shared_plan`` likewise overrides the recorded execution plan —
        shard restore re-normalises the snapshot's sharing structure to the
        requested plan, so a checkpoint taken under either plan restores
        under either plan, bit-identically.
        With ``attach=True`` (default) the directory stays attached for
        further WAL appends and automatic checkpoints under
        ``checkpoint_policy`` (default: the recorded policy).

        A checkpoint taken with the disorder-tolerant tier enabled restores
        the tier too: ``max_lateness`` comes from the manifest (it shapes
        the replayed chunking, so it cannot be changed mid-stream), the
        reorder buffer's held-back events and the raw-record replay offset
        come from the ingest snapshot, and the quarantine counters carry
        over.  ``on_bad_record`` / ``quarantine_dir`` re-attach the
        non-picklable spill targets (callbacks and paths are configuration,
        not state).

        ``tracer`` re-attaches the observability tier (a tracer, like a
        callback, is configuration): when the checkpoint carries a flight
        recorder snapshot, the recorder's ring and per-stage aggregates are
        loaded into the passed tracer, so latency history accumulates
        across restarts.  Without a ``tracer`` argument the snapshot is
        left on disk untouched.

        Crash-window resilience: when the newest checkpoint is unusable —
        a manifest torn mid-write, or a manifest published but one of its
        shard/ingest snapshot files interrupted — restore falls back to
        the previous generation via the ``MANIFEST.prev.json`` backup
        (:func:`~repro.state.recovery.read_previous_manifest`; its shard
        files survive because pruning keeps the last *two* generations).
        The fallback logs a structured warning and resumes exactly-once
        from the older offset: the WAL is reset to that checkpoint and the
        stream replay re-applies the lost chunks.
        """
        directory = Path(directory)
        kwargs: dict[str, Any] = dict(
            executor=executor,
            executor_options=executor_options,
            shared_plan=shared_plan,
            checkpoint_policy=checkpoint_policy,
            attach=attach,
            on_bad_record=on_bad_record,
            quarantine_dir=quarantine_dir,
            tracer=tracer,
        )
        manifest: ServiceManifest | None = None
        try:
            manifest = read_manifest(directory)
            return cls._restore_from_manifest(directory, manifest, **kwargs)
        except SnapshotError as newest_error:
            previous = read_previous_manifest(directory)
            if previous is None or (
                manifest is not None
                and previous.generation >= manifest.generation
            ):
                raise
            logger.warning(
                "restore from %s generation %s failed (%s); falling back "
                "to the previous manifest (generation %d)",
                directory,
                manifest.generation if manifest is not None else "?",
                newest_error,
                previous.generation,
                extra={
                    "event": "restore_fallback",
                    "directory": str(directory),
                    "fallback_generation": previous.generation,
                },
            )
            return cls._restore_from_manifest(directory, previous, **kwargs)

    @classmethod
    def _restore_from_manifest(
        cls,
        directory: Path,
        manifest: ServiceManifest,
        *,
        executor: str | None,
        executor_options: Mapping[str, Any] | None,
        shared_plan: bool | None,
        checkpoint_policy: CheckpointPolicy | None,
        attach: bool,
        on_bad_record: Callable[[Any, str], None] | None,
        quarantine_dir: str | Path | None,
        tracer: Tracer | None,
    ) -> "SurgeService":
        if len(manifest.shard_files) != manifest.n_shards:
            raise SnapshotError(
                f"{manifest_path(directory)}: manifest names "
                f"{len(manifest.shard_files)} shard files for "
                f"{manifest.n_shards} shards"
            )
        shard_paths = [directory / name for name in manifest.shard_files]
        for path in shard_paths:
            if not path.exists():
                raise SnapshotError(
                    f"{manifest_path(directory)} names a missing shard "
                    f"snapshot {path.name} (incomplete checkpoint directory?)"
                )
        specs = [QuerySpec.from_dict(record) for record in manifest.specs]

        ingest_record = manifest.ingest
        overload_record = manifest.overload
        overload_config = None
        max_inflight_chunks = None
        compact_every_chunks = None
        if overload_record is not None:
            config_record = overload_record.get("config")
            if config_record is not None:
                overload_config = OverloadConfig.from_dict(config_record)
            raw_inflight = overload_record.get("max_inflight_chunks")
            if raw_inflight is not None:
                max_inflight_chunks = int(raw_inflight)
            raw_compact = overload_record.get("compact_every_chunks")
            if raw_compact is not None:
                compact_every_chunks = int(raw_compact)
        service = cls(
            (),
            shards=manifest.n_shards,
            executor=executor if executor is not None else manifest.executor,
            executor_options=executor_options,
            shared_plan=(
                manifest.shared_plan if shared_plan is None else shared_plan
            ),
            max_lateness=(
                float(ingest_record.get("max_lateness", 0.0))
                if ingest_record is not None
                else 0.0
            ),
            on_bad_record=on_bad_record,
            quarantine_dir=quarantine_dir,
            max_inflight_chunks=max_inflight_chunks,
            overload=overload_config,
            compact_every_chunks=compact_every_chunks,
            tracer=tracer,
        )
        try:
            cls._hydrate_restored(
                service,
                directory,
                manifest,
                shard_paths,
                specs,
                ingest_record,
                overload_record,
                checkpoint_policy=checkpoint_policy,
                attach=attach,
                tracer=tracer,
            )
        except BaseException:
            # A half-restored service may own real resources (worker
            # processes, a remote fleet); release them before the caller
            # sees the failure (or restore() falls back a generation).
            service.close()
            raise
        return service

    @classmethod
    def _hydrate_restored(
        cls,
        service: "SurgeService",
        directory: Path,
        manifest: ServiceManifest,
        shard_paths: list[Path],
        specs: list[QuerySpec],
        ingest_record: dict[str, Any] | None,
        overload_record: dict[str, Any] | None,
        *,
        checkpoint_policy: CheckpointPolicy | None,
        attach: bool,
        tracer: Tracer | None,
    ) -> None:
        if tracer is not None and manifest.obs is not None:
            snapshot_file = manifest.obs.get("snapshot_file")
            if snapshot_file is not None:
                obs_path = directory / snapshot_file
                if obs_path.exists():
                    # A missing recorder snapshot is tolerated (unlike shard
                    # or ingest snapshots): tracing history is observability,
                    # not correctness state.
                    _, recorder = read_snapshot(
                        obs_path, expected_kind=OBS_SNAPSHOT_KIND
                    )
                    if isinstance(recorder, FlightRecorder):
                        tracer.recorder = recorder
        if overload_record is not None:
            # Cumulative counters carry over; the degraded flag restored
            # with them makes the resumed run continue shedding exactly
            # where the victim stopped (the hysteresis re-evaluates from
            # the restored depth on the next chunk).
            service._overload = OverloadStats.from_dict(
                overload_record.get("stats", {})
            )
        # Registry bookkeeping comes from the manifest verbatim: replaying
        # round-robin over the surviving specs would mis-assign after
        # removals, and the shard snapshot files already partition by the
        # recorded assignment.
        service._order = list(manifest.order)
        service._shard_of = dict(manifest.shard_of)
        service._specs = {spec.query_id: spec for spec in specs}
        service._registered = manifest.registered
        service._time = manifest.stream_time
        service._chunk_index = manifest.chunk_index
        service._chunk_offset = manifest.chunk_offset
        stats = manifest.stats
        service._stats = ServiceStats(
            objects_pushed=int(stats.get("objects_pushed", 0)),
            chunks_pushed=int(stats.get("chunks_pushed", 0)),
            object_query_pairs=int(stats.get("object_query_pairs", 0)),
            wall_seconds=float(stats.get("wall_seconds", 0.0)),
        )
        service.bus.load_stats(stats.get("per_query", {}))
        if ingest_record is not None:
            service._raw_consumed = int(ingest_record.get("raw_consumed", 0))
            service._quarantined = int(ingest_record.get("quarantined", 0))
            service._spill_errors = int(ingest_record.get("spill_errors", 0))
            service._peak_buffered = int(ingest_record.get("peak_buffered", 0))
            service.bus.subscriber_errors = int(
                ingest_record.get("subscriber_errors", 0)
            )
            snapshot_file = ingest_record.get("snapshot_file")
            if snapshot_file is not None:
                ingest_path = directory / snapshot_file
                if not ingest_path.exists():
                    raise SnapshotError(
                        f"{manifest_path(directory)} names a missing ingest "
                        f"snapshot {ingest_path.name} (incomplete checkpoint "
                        f"directory?)"
                    )
                _, ingest_state = read_snapshot(
                    ingest_path, expected_kind=INGEST_SNAPSHOT_KIND
                )
                service._reorder = ingest_state["reorder"]
                service._pending = list(ingest_state["pending"])
        if manifest.server is not None:
            service.server_info = dict(manifest.server)

        replies = service._executor.scatter(
            [("restore", str(path)) for path in shard_paths]
        )
        for index, restored_ids in enumerate(replies):
            expected = [
                query_id
                for query_id in manifest.order
                if manifest.shard_of[query_id] == index
            ]
            if sorted(restored_ids) != sorted(expected):
                raise SnapshotError(
                    f"{shard_paths[index]}: shard snapshot holds queries "
                    f"{sorted(restored_ids)}, manifest expects {sorted(expected)}"
                )
        if attach:
            if checkpoint_policy is None:
                checkpoint_policy = CheckpointPolicy.from_dict(manifest.policy)
            service._attach_durability(
                directory,
                checkpoint_policy,
                manifest.extra,
                resume_from=WalCheckpoint(
                    chunk_offset=manifest.chunk_offset,
                    generation=manifest.generation,
                    stream_time=encode_stream_time(manifest.stream_time),
                ),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the shard executor (idempotent)."""
        if not self._closed:
            self._executor.close()
            self._closed = True

    def __enter__(self) -> "SurgeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SurgeService(queries={len(self._order)}, shards={self.n_shards}, "
            f"executor={self.executor_name!r})"
        )
