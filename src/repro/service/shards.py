"""Shard execution backends for the multi-query service.

A *shard* owns a disjoint subset of the registered queries: one
:class:`QueryPipeline` per query (routing predicate + per-query
:class:`~repro.core.monitor.SurgeMonitor`).  The service broadcasts each
stream chunk to every shard exactly once; inside the shard each pipeline
filters the chunk through its keyword predicate and feeds the surviving
objects to its monitor's batched ``push_many`` path.

Three interchangeable executors drive the shards:

``serial``
    All shards run inline in the calling thread.  The reference backend —
    every other backend must produce bit-identical results.

``thread``
    One :class:`concurrent.futures.ThreadPoolExecutor` worker per shard.
    Shards of a chunk run concurrently; the GIL serialises the pure-Python
    detector work, so this backend only pays off when a sweep backend
    releases the GIL (numpy) or work is IO-bound.  It exists mainly to keep
    the dispatch machinery honest under real concurrency.

``process``
    One persistent single-worker :class:`concurrent.futures.ProcessPoolExecutor`
    per shard.  The shard's query specs are pickled to the worker once at
    start-up (the worker builds its monitors locally and keeps them alive
    across chunks); each chunk is pickled to every shard once.  This is the
    backend that scales with cores.

All three speak the same message protocol (:meth:`ShardState.handle`), so
the executors contain no query logic — determinism across backends falls out
of running the identical per-shard code.
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Sequence

from repro.service.bus import QueryUpdate
from repro.service.spec import QuerySpec
from repro.streams.objects import SpatialObject

#: Executor backends accepted by :class:`repro.service.SurgeService`.
EXECUTOR_NAMES = ("serial", "thread", "process")


class QueryPipeline:
    """Routing filter + monitor + counters for one registered query."""

    __slots__ = ("spec", "monitor", "objects_routed", "chunks_processed", "busy_seconds")

    def __init__(self, spec: QuerySpec) -> None:
        self.spec = spec
        self.monitor = spec.build_monitor()
        self.objects_routed = 0
        self.chunks_processed = 0
        self.busy_seconds = 0.0

    def push_chunk(self, chunk: Sequence[SpatialObject], chunk_index: int) -> QueryUpdate:
        """Route one shared-stream chunk into the monitor; report the result.

        Routing time counts as busy time — the filter scan is work this
        query causes on every chunk, matched or not.
        """
        started = time.perf_counter()
        matches = self.spec.matches
        matched = [obj for obj in chunk if matches(obj)]
        if matched:
            result = self.monitor.push_many(matched)
        else:
            result = self.monitor.result()
        busy = time.perf_counter() - started
        self.objects_routed += len(matched)
        self.chunks_processed += 1
        self.busy_seconds += busy
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=len(matched),
            busy_seconds=busy,
        )

    def advance(self, stream_time: float, chunk_index: int) -> QueryUpdate:
        """Advance this query's clock without new arrivals."""
        started = time.perf_counter()
        result = self.monitor.advance_time(stream_time)
        busy = time.perf_counter() - started
        self.busy_seconds += busy
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=0,
            busy_seconds=busy,
        )


class ShardState:
    """The per-shard query pipelines plus the message protocol driving them.

    Messages are ``(kind, *payload)`` tuples so they cross process
    boundaries as plain pickles:

    ``("chunk", objects, chunk_index)``
        Route a shared-stream chunk through every pipeline; returns the
        per-query :class:`~repro.service.bus.QueryUpdate` list in query
        registration order.
    ``("advance", stream_time, chunk_index)``
        Advance every pipeline's clock; returns updates.
    ``("add", spec)`` / ``("remove", query_id)``
        Register / drop a pipeline; returns the shard's query ids.
    ``("results",)``
        ``[(query_id, RegionResult | None), ...]`` without ingesting.
    ``("top_k", k)``
        ``[(query_id, [RegionResult, ...]), ...]`` without ingesting.
    ``("stats",)``
        ``[(query_id, objects_routed, chunks_processed, busy_seconds), ...]``.
    ``("checkpoint", path, meta)``
        Atomically snapshot the whole shard (every pipeline's monitor and
        counters) to ``path`` — *inside* the shard, so under the process
        executor each worker process persists its own state without it ever
        crossing the pipe; returns the shard's query ids.
    ``("restore", path)``
        Replace the shard's pipelines with the snapshot at ``path``;
        returns the restored query ids.
    """

    def __init__(self, specs: Sequence[QuerySpec] = ()) -> None:
        self.pipelines: dict[str, QueryPipeline] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: QuerySpec) -> None:
        if spec.query_id in self.pipelines:
            raise ValueError(f"query {spec.query_id!r} is already registered")
        self.pipelines[spec.query_id] = QueryPipeline(spec)

    def remove(self, query_id: str) -> None:
        if query_id not in self.pipelines:
            raise KeyError(f"query {query_id!r} is not registered on this shard")
        del self.pipelines[query_id]

    # ------------------------------------------------------------------
    # Durability (see repro.state)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str, meta: dict | None = None) -> list[str]:
        """Write this shard's complete state to ``path`` (atomic snapshot).

        The payload is the :class:`ShardState` itself: every pipeline's spec,
        monitor (window deques + full detector state) and routing counters.
        Restoring it resumes the shard bit-identically.
        """
        from repro.state.recovery import SHARD_SNAPSHOT_KIND
        from repro.state.snapshot import write_snapshot

        header_meta = {"queries": list(self.pipelines)}
        if meta:
            header_meta.update(meta)
        write_snapshot(path, SHARD_SNAPSHOT_KIND, self, meta=header_meta)
        return list(self.pipelines)

    def restore(self, path: str) -> list[str]:
        """Replace this shard's pipelines with the snapshot at ``path``."""
        from repro.state.recovery import SHARD_SNAPSHOT_KIND
        from repro.state.snapshot import read_snapshot

        _, state = read_snapshot(path, expected_kind=SHARD_SNAPSHOT_KIND)
        self.pipelines = state.pipelines
        return list(self.pipelines)

    def handle(self, message: tuple) -> Any:
        kind = message[0]
        if kind == "chunk":
            _, chunk, chunk_index = message
            return [
                pipeline.push_chunk(chunk, chunk_index)
                for pipeline in self.pipelines.values()
            ]
        if kind == "advance":
            _, stream_time, chunk_index = message
            return [
                pipeline.advance(stream_time, chunk_index)
                for pipeline in self.pipelines.values()
            ]
        if kind == "add":
            self.add(message[1])
            return list(self.pipelines)
        if kind == "remove":
            self.remove(message[1])
            return list(self.pipelines)
        if kind == "results":
            return [
                (query_id, pipeline.monitor.result())
                for query_id, pipeline in self.pipelines.items()
            ]
        if kind == "top_k":
            return [
                (query_id, pipeline.monitor.top_k(message[1]))
                for query_id, pipeline in self.pipelines.items()
            ]
        if kind == "stats":
            return [
                (
                    query_id,
                    pipeline.objects_routed,
                    pipeline.chunks_processed,
                    pipeline.busy_seconds,
                )
                for query_id, pipeline in self.pipelines.items()
            ]
        if kind == "checkpoint":
            return self.checkpoint(message[1], message[2])
        if kind == "restore":
            return self.restore(message[1])
        raise ValueError(f"unknown shard message kind {kind!r}")


class ShardExecutor(abc.ABC):
    """Common interface of the three shard execution backends."""

    #: Name under which the backend is selectable.
    name: str = "executor"

    def __init__(self, shard_specs: Sequence[Sequence[QuerySpec]]) -> None:
        if not shard_specs:
            raise ValueError("an executor needs at least one shard")
        self.n_shards = len(shard_specs)

    @abc.abstractmethod
    def send(self, shard_index: int, message: tuple) -> Any:
        """Deliver one message to one shard and return its reply."""

    @abc.abstractmethod
    def broadcast(self, message: tuple) -> list[Any]:
        """Deliver one message to every shard; replies in shard order."""

    def scatter(self, messages: Sequence[tuple]) -> list[Any]:
        """Deliver ``messages[i]`` to shard ``i``; replies in shard order.

        The per-shard variant of :meth:`broadcast`, used by the checkpoint
        path (every shard persists to its own file, so each shard gets its
        own message).  Concurrent backends overlap the per-shard work just
        like a broadcast.
        """
        if len(messages) != self.n_shards:
            raise ValueError(
                f"scatter needs one message per shard "
                f"({self.n_shards}), got {len(messages)}"
            )
        return self._scatter(messages)

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        """Backend hook behind the validated :meth:`scatter`."""
        return [self.send(index, message) for index, message in enumerate(messages)]

    def close(self) -> None:
        """Release worker threads / processes (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """All shards inline in the calling thread (the reference backend)."""

    name = "serial"

    def __init__(self, shard_specs: Sequence[Sequence[QuerySpec]]) -> None:
        super().__init__(shard_specs)
        self._shards = [ShardState(specs) for specs in shard_specs]

    def send(self, shard_index: int, message: tuple) -> Any:
        return self._shards[shard_index].handle(message)

    def broadcast(self, message: tuple) -> list[Any]:
        return [shard.handle(message) for shard in self._shards]


class ThreadExecutor(ShardExecutor):
    """One pool thread per shard; shards of a chunk run concurrently.

    The service broadcasts chunks with a gather barrier between chunks, so a
    given shard's state is only ever touched by one in-flight task at a time
    — no locking is needed.
    """

    name = "thread"

    def __init__(self, shard_specs: Sequence[Sequence[QuerySpec]]) -> None:
        super().__init__(shard_specs)
        self._shards = [ShardState(specs) for specs in shard_specs]
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="surge-shard"
        )

    def send(self, shard_index: int, message: tuple) -> Any:
        return self._pool.submit(self._shards[shard_index].handle, message).result()

    def broadcast(self, message: tuple) -> list[Any]:
        futures = [
            self._pool.submit(shard.handle, message) for shard in self._shards
        ]
        return [future.result() for future in futures]

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        futures = [
            self._pool.submit(shard.handle, message)
            for shard, message in zip(self._shards, messages)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Process backend: persistent single-worker pool per shard
# ---------------------------------------------------------------------------
#: Worker-process global holding that worker's shard state.  Each shard has
#: its own single-worker pool, so each worker process sees exactly one shard.
_WORKER_SHARD: ShardState | None = None


def _init_worker_shard(specs: Sequence[QuerySpec]) -> None:
    """Pool initializer: build the shard's pipelines inside the worker."""
    global _WORKER_SHARD
    _WORKER_SHARD = ShardState(specs)


def _worker_handle(message: tuple) -> Any:
    assert _WORKER_SHARD is not None, "shard worker used before initialisation"
    return _WORKER_SHARD.handle(message)


class ProcessExecutor(ShardExecutor):
    """One persistent worker process per shard.

    Each shard is a ``ProcessPoolExecutor(max_workers=1)``: the single
    worker keeps the shard's monitors alive across chunks, and the pool's
    FIFO task queue preserves message order per shard.  Specs are pickled
    once at start-up via the pool initializer; chunks and
    :class:`~repro.service.bus.QueryUpdate` replies are pickled per message.
    """

    name = "process"

    def __init__(self, shard_specs: Sequence[Sequence[QuerySpec]]) -> None:
        super().__init__(shard_specs)
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker_shard,
                initargs=(tuple(specs),),
            )
            for specs in shard_specs
        ]

    def send(self, shard_index: int, message: tuple) -> Any:
        return self._pools[shard_index].submit(_worker_handle, message).result()

    def broadcast(self, message: tuple) -> list[Any]:
        futures = [pool.submit(_worker_handle, message) for pool in self._pools]
        return [future.result() for future in futures]

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        futures = [
            pool.submit(_worker_handle, message)
            for pool, message in zip(self._pools, messages)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(
    name: str, shard_specs: Sequence[Sequence[QuerySpec]]
) -> ShardExecutor:
    """Instantiate a shard executor by backend name."""
    key = name.lower()
    if key not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
        )
    return _EXECUTORS[key](shard_specs)
