"""Shard execution backends for the multi-query service.

A *shard* owns a disjoint subset of the registered queries: one
:class:`QueryPipeline` per query (routing predicate + per-query
:class:`~repro.core.monitor.SurgeMonitor`).  The service broadcasts each
stream chunk to every shard exactly once; inside the shard the chunk is
routed to the per-query monitors' batched ``push_many`` path.

Shared-work execution plan
--------------------------
With ``shared_plan=True`` (the default) each shard runs a three-tier plan
that eliminates the work N queries would redundantly repeat on one shared
chunk, while staying **bit-identical** to running every query in isolation:

1. **Inverted keyword routing** — instead of every query scanning the whole
   chunk through its own predicate (O(queries × chunk)), the shard buckets
   the chunk *once* by keyword (``keyword → sub-chunk``, plus the chunk
   itself for match-all queries), so routing costs O(chunk + matches).
2. **Shared window groups** — queries with identical (routing keyword,
   window lengths) registered at the same point of the stream see the exact
   same substream, so their sliding-window pairs are provably identical.
   Each :class:`WindowGroup` owns one
   :class:`~repro.streams.windows.SlidingWindowPair` and runs one
   ``observe_batch()`` per chunk; the resulting
   :class:`~repro.streams.objects.EventBatch` is fanned out to each member
   detector's ``apply_events()``.
3. **Shared detector units** — queries whose *entire* spec (query rectangle,
   window, α, k, algorithm, backend, options, keyword) is identical — the
   multi-tenant case of many users registering the same popular query —
   share one monitor: the unit leader applies the batch and settles once,
   the followers mirror its result.

Empty routes take a settle-free fast path: a query whose sub-chunk is empty
never moved its window clock, so no deadline can have crossed and the
previous settled result is returned as-is (counted in ``chunks_skipped``
and, honestly, in ``busy_seconds`` — the fast path costs what it costs,
essentially nothing).

Sharing never crosses a registration boundary: pipelines record the shard's
ingestion *epoch* at registration, and only same-epoch queries may share
state (a query added mid-stream starts with empty windows, so it must not
adopt a group's history).  Checkpoints pickle the whole shard in one
snapshot, so group-owned windows and unit-owned monitors are stored exactly
once (pickle memoisation) and restored with the sharing intact; restoring a
shared-plan snapshot with the plan disabled (or vice versa) re-normalises
the pipelines — cloning shared state apart, or re-aliasing provably
identical state together — so the plan is a pure execution strategy, never
an observable property of a checkpoint.

Three interchangeable executors drive the shards:

``serial``
    All shards run inline in the calling thread.  The reference backend —
    every other backend must produce bit-identical results.

``thread``
    One :class:`concurrent.futures.ThreadPoolExecutor` worker per shard.
    Shards of a chunk run concurrently; the GIL serialises the pure-Python
    detector work, so this backend only pays off when a sweep backend
    releases the GIL (numpy) or work is IO-bound.  It exists mainly to keep
    the dispatch machinery honest under real concurrency.

``process``
    One persistent single-worker :class:`concurrent.futures.ProcessPoolExecutor`
    per shard.  The shard's query specs are pickled to the worker once at
    start-up (the worker builds its monitors locally and keeps them alive
    across chunks); each chunk is pickled to every shard once.  This is the
    backend that scales with cores.

All three speak the same message protocol (:meth:`ShardState.handle`), so
the executors contain no query logic — determinism across backends falls out
of running the identical per-shard code.
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Sequence

from repro.obs.tracer import Tracer, activate
from repro.service.bus import QueryUpdate
from repro.service.spec import QuerySpec
from repro.streams.objects import SpatialObject
from repro.streams.windows import SlidingWindowPair

#: Executor backends accepted by :class:`repro.service.SurgeService`.
#: ``remote`` lives in :mod:`repro.distributed` and is imported lazily by
#: :func:`make_executor` (it pulls in the network stack).
EXECUTOR_NAMES = ("serial", "thread", "process", "remote")


class QueryPipeline:
    """Routing filter + monitor + counters for one registered query.

    ``epoch`` is the owning shard's ingestion counter at registration time —
    the shared plan only groups pipelines with equal epochs, because only
    they have seen the same message history.  ``None`` means the epoch is
    *unknown* (the pipeline was unpickled from a snapshot written before
    epochs existed): such a pipeline never shares — a defaulted epoch
    could wrongly group a mid-stream registration with stream-start
    queries and alias history it never saw.  ``last_result`` caches the
    most recent settled result so chunks that route nothing to this query
    (``chunks_skipped`` counts them) can answer without re-settling the
    detector.
    """

    __slots__ = (
        "spec",
        "monitor",
        "objects_routed",
        "chunks_processed",
        "chunks_skipped",
        "busy_seconds",
        "epoch",
        "last_result",
    )

    def __init__(self, spec: QuerySpec, epoch: int | None = 0) -> None:
        self.spec = spec
        self.monitor = spec.build_monitor()
        self.objects_routed = 0
        self.chunks_processed = 0
        self.chunks_skipped = 0
        self.busy_seconds = 0.0
        self.epoch = epoch
        self.last_result = self.monitor.result()

    def __setstate__(self, state) -> None:
        _, slots = state
        for key, value in slots.items():
            setattr(self, key, value)
        if not hasattr(self, "epoch"):
            # Snapshot written before the shared-plan fields existed: the
            # registration epoch is unrecorded, so it is *unknown* — not 0.
            # None keeps this pipeline out of every sharing group (it may
            # have registered mid-stream, and grouping it with stream-start
            # queries would alias window history it never saw).  The cached
            # result is re-read from the (settled) detector.
            self.epoch = None
            self.chunks_skipped = 0
            self.last_result = self.monitor.result()

    def push_chunk(self, chunk: Sequence[SpatialObject], chunk_index: int) -> QueryUpdate:
        """Route one shared-stream chunk into the monitor; report the result.

        The unshared plan: this pipeline scans the whole chunk through its
        own predicate.  Routing time counts as busy time — the filter scan
        is work this query causes on every chunk, matched or not.
        """
        started = time.perf_counter()
        matches = self.spec.matches
        matched = [obj for obj in chunk if matches(obj)]
        if matched:
            result = self.monitor.push_many(matched)
            self.last_result = result
        else:
            # Nothing routed and nothing ingested: the window clock did not
            # move, so no deadline can have crossed — the previous settled
            # result is still exact and the settle is skipped outright.
            result = self.last_result
            self.chunks_skipped += 1
        busy = time.perf_counter() - started
        self.objects_routed += len(matched)
        self.chunks_processed += 1
        self.busy_seconds += busy
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=len(matched),
            busy_seconds=busy,
        )

    def apply_batch(self, batch, chunk_index: int, n_routed: int, shared_seconds: float) -> QueryUpdate:
        """Apply a group-ingested event batch to this pipeline's detector.

        The shared-plan counterpart of :meth:`push_chunk` for a non-empty
        route: the owning :class:`WindowGroup` already ran ``observe_batch``
        on the shared window pair; this pipeline only pays the detector
        half.  ``shared_seconds`` is this pipeline's slice of the shard-wide
        routing/windowing work, folded into ``busy_seconds`` so the counter
        keeps meaning "time this query's presence cost the shard".
        """
        started = time.perf_counter()
        result = self.monitor.apply_batch(batch)
        self.last_result = result
        busy = time.perf_counter() - started + shared_seconds
        self.objects_routed += n_routed
        self.chunks_processed += 1
        self.busy_seconds += busy
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=n_routed,
            busy_seconds=busy,
        )

    def mirror_result(self, result, chunk_index: int, n_routed: int, shared_seconds: float) -> QueryUpdate:
        """Adopt a shared detector unit leader's already-settled result.

        Used for follower pipelines whose spec is identical to the unit
        leader's: the shared monitor has already ingested the batch, so the
        follower's answer *is* the leader's answer.
        """
        self.last_result = result
        self.objects_routed += n_routed
        self.chunks_processed += 1
        self.busy_seconds += shared_seconds
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=n_routed,
            busy_seconds=shared_seconds,
        )

    def skip_chunk(
        self,
        chunk_index: int,
        shared_seconds: float = 0.0,
        shed: bool = False,
    ) -> QueryUpdate:
        """The settle-free fast path: nothing routed, clock unmoved.

        With ``shed=True`` the chunk was load-shed for this query (degraded
        mode), not merely empty: the update is marked so the bus can count
        it separately and consumers know the carried result is stale.
        """
        started = time.perf_counter()
        result = self.last_result
        self.chunks_skipped += 1
        busy = time.perf_counter() - started + shared_seconds
        self.chunks_processed += 1
        self.busy_seconds += busy
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=0,
            busy_seconds=busy,
            shed=shed,
        )

    def apply_window_events(self, events, chunk_index: int) -> QueryUpdate:
        """Apply clock-advance events (possibly of a shared pair) and settle.

        With no events the advance crossed no deadline, so the previous
        settled result is reused without touching the detector.
        """
        started = time.perf_counter()
        if events:
            result = self.monitor.push_events(events)
            self.last_result = result
        else:
            result = self.last_result
        busy = time.perf_counter() - started
        self.busy_seconds += busy
        return QueryUpdate(
            query_id=self.spec.query_id,
            chunk_index=chunk_index,
            result=result,
            objects_routed=0,
            busy_seconds=busy,
        )

    def advance(self, stream_time: float, chunk_index: int) -> QueryUpdate:
        """Advance this query's clock without new arrivals (unshared plan)."""
        events = self.monitor.drain_time(stream_time)
        return self.apply_window_events(events, chunk_index)


class WindowGroup:
    """One shared sliding-window pair plus the pipelines riding it.

    ``units`` partitions the member pipelines by full spec identity: each
    unit is a list whose head (the *leader*) owns the shared monitor and
    whose tail (the *followers*) mirror the leader's result.  Window-only
    sharing is the single-pipeline-per-unit case.
    """

    __slots__ = ("keyword", "windows", "units")

    def __init__(self, keyword: str | None, windows: SlidingWindowPair, units) -> None:
        self.keyword = keyword
        self.windows = windows
        self.units = units


#: Detectors whose settled results are a pure function of current window
#: *content*: two monitors holding element-wise equal windows settle to
#: bit-identical answers regardless of how each arrived at that content.
#: The grid-family approximations (``gaps``/``mgaps`` and their top-k
#: variants) are excluded — their cell accumulators are maintained
#: incrementally (``+=``/``-=`` on floats), so an add-then-expire cycle
#: leaves a path-dependent residue that can shift a result by an ulp.
#: Compaction therefore merges grid-family queries at the window tier only
#: (whole units move; monitors are never aliased across histories).
_PURE_RESULT_ALGORITHMS = frozenset({"ccs", "kccs", "bccs", "base", "ag2", "naive"})


def _windows_equal(a: SlidingWindowPair, b: SlidingWindowPair) -> bool:
    """Element-wise equality of two window pairs (the compaction gate).

    Two pairs are mergeable when they hold the same objects, the same
    clock, and the same stability flag: from that point on, identical
    inputs produce identical events from either pair, so aliasing one for
    the other is unobservable downstream.
    """
    if a is b:
        return True
    return (
        a.window_length == b.window_length
        and a.past_window_length == b.past_window_length
        and a._time == b._time
        and a._expired_seen == b._expired_seen
        and len(a._current) == len(b._current)
        and len(a._past) == len(b._past)
        and all(x == y for x, y in zip(a._current, b._current))
        and all(x == y for x, y in zip(a._past, b._past))
    )


def _detector_unit_key(spec: QuerySpec):
    """Hashable identity of everything that shapes a monitor's evolution.

    Two pipelines whose specs agree on this key (and on the registration
    epoch) run monitors through byte-for-byte identical state trajectories,
    so the shard keeps only one.  ``None`` (unhashable options) opts the
    spec out of detector sharing; it still shares windows.
    """
    try:
        options = tuple(sorted(spec.options.items()))
        key = (spec.query, spec.algorithm, spec.keyword, spec.backend, options)
        hash(key)  # equality-compared dict key; collisions are impossible
        return key
    except TypeError:
        return None


class ShardState:
    """The per-shard query pipelines plus the message protocol driving them.

    Messages are ``(kind, *payload)`` tuples so they cross process
    boundaries as plain pickles:

    ``("chunk", objects, chunk_index)`` / ``("chunk", objects, chunk_index, shed)``
        Route a shared-stream chunk through every pipeline; returns the
        per-query :class:`~repro.service.bus.QueryUpdate` list in query
        registration order.  The optional ``shed`` frozenset names queries
        whose chunk is load-shed (degraded mode): their window clocks stay
        unmoved and their updates carry ``shed=True``.  The service only
        sheds whole route classes, so a shared-plan window group is always
        fully shed or fully active.
    ``("compact",)``
        Safe-boundary re-epoching (see :meth:`compact`); returns the
        number of pipelines merged back into older sharing groups.
    ``("advance", stream_time, chunk_index)``
        Advance every pipeline's clock; returns updates.
    ``("add", spec)`` / ``("remove", query_id)``
        Register / drop a pipeline; returns the shard's query ids.
    ``("results",)``
        ``[(query_id, RegionResult | None), ...]`` without ingesting.
    ``("top_k", k)``
        ``[(query_id, [RegionResult, ...]), ...]`` without ingesting.
    ``("stats",)``
        ``[(query_id, objects_routed, chunks_processed, busy_seconds), ...]``.
    ``("checkpoint", path, meta)``
        Atomically snapshot the whole shard (every pipeline's monitor and
        counters) to ``path`` — *inside* the shard, so under the process
        executor each worker process persists its own state without it ever
        crossing the pipe; returns the shard's query ids.
    ``("restore", path)``
        Replace the shard's pipelines with the snapshot at ``path``;
        returns the restored query ids.
    ``("trace", enabled)``
        Attach (or detach) a shard-local :class:`~repro.obs.tracer.Tracer`.
        While attached, ``chunk``/``advance`` replies become
        ``(updates, spans)`` tuples: the spans recorded during the message
        (routing, window observe, settle, sweep kernel) ship back with the
        reply so the service can merge them into its flight recorder —
        this is how process shards get their lane in the Chrome trace.
    """

    def __init__(self, specs: Sequence[QuerySpec] = (), shared_plan: bool = True) -> None:
        self.pipelines: dict[str, QueryPipeline] = {}
        self.shared_plan = bool(shared_plan)
        self._epoch = 0
        self._groups: list[WindowGroup] = []
        self._routed_keywords: frozenset[str] = frozenset()
        self._tracer: Tracer | None = None
        for spec in specs:
            self._register(spec)
        self._rebuild_plan()

    def __getstate__(self) -> dict:
        # Tracers hold a lock and per-run history; a checkpoint must carry
        # neither (the service snapshots the recorder separately).
        state = self.__dict__.copy()
        state["_tracer"] = None
        return state

    def _register(self, spec: QuerySpec) -> None:
        if spec.query_id in self.pipelines:
            raise ValueError(f"query {spec.query_id!r} is already registered")
        self.pipelines[spec.query_id] = QueryPipeline(spec, epoch=self._epoch)

    def add(self, spec: QuerySpec) -> None:
        self._register(spec)
        self._rebuild_plan()

    def remove(self, query_id: str) -> None:
        if query_id not in self.pipelines:
            raise KeyError(f"query {query_id!r} is not registered on this shard")
        del self.pipelines[query_id]
        self._rebuild_plan()

    def compact(self) -> int:
        """Safe-boundary re-epoching: merge equal-state pipelines back together.

        The epoch rule keeps a mid-stream registration out of every sharing
        group *forever*, because at registration time its (empty) windows
        provably differ from its route-mates'.  But the difference is not
        forever: once the stream has run past the late registration by the
        full window span, the old content has expired from the veterans'
        windows and both hold exactly the objects of the recent past — the
        states have *converged*.  Compaction detects that convergence by
        direct comparison (:func:`_windows_equal`) at a chunk boundary
        (every pipeline settled, no partial chunk anywhere) and restamps
        the late pipeline's epoch to its route-mates', so the next
        :meth:`_rebuild_plan` re-aliases them into one group: sharing is
        restored after churn.

        Merging moves whole *units* (pipelines that already share a
        monitor move together — splitting a unit across groups would leave
        one monitor referenced by two groups).  A pipeline whose algorithm
        is in :data:`_PURE_RESULT_ALGORITHMS` may additionally join an
        existing detector unit (adopting the veteran monitor, which by
        purity settles to the same answers its own would); grid-family
        pipelines only ever share windows, never monitors, across
        histories.  All decisions are pure functions of pipeline state, so
        every plan and every executor compacts identically — and under
        ``shared_plan=False`` the restamp is recorded but aliases nothing,
        keeping cross-plan checkpoints interchangeable.

        Returns the number of pipelines merged into an older epoch.
        """
        clusters: dict[tuple, list[QueryPipeline]] = {}
        for pipeline in self.pipelines.values():
            windows = pipeline.monitor.windows
            key = (
                pipeline.spec.keyword,
                windows.window_length,
                windows.past_window_length,
            )
            clusters.setdefault(key, []).append(pipeline)
        merged = 0
        for members in clusters.values():
            if len(members) < 2:
                continue
            anchored = [p for p in members if p.epoch is not None]
            if not anchored:
                continue
            representative = min(anchored, key=lambda p: p.epoch)
            rep_windows = representative.monitor.windows
            # Unit keys already present at the representative's epoch: a
            # pure-algorithm unit may join them; an impure one must not
            # alias a monitor with a different history.
            rep_keys = {
                _detector_unit_key(p.spec)
                for p in members
                if p.epoch == representative.epoch
            }
            rep_keys.discard(None)
            units: dict[tuple, list[QueryPipeline]] = {}
            for pipeline in members:
                if pipeline.epoch == representative.epoch:
                    continue
                unit_key = _detector_unit_key(pipeline.spec)
                if unit_key is None or pipeline.epoch is None:
                    # Unshareable options or unknown history: never aliased
                    # with anyone, so it moves (or stays) alone.
                    bucket = ("own", id(pipeline))
                else:
                    bucket = ("unit", pipeline.epoch, unit_key)
                units.setdefault(bucket, []).append(pipeline)
            for unit_members in units.values():
                if not all(
                    _windows_equal(p.monitor.windows, rep_windows)
                    for p in unit_members
                ):
                    continue
                unit_key = _detector_unit_key(unit_members[0].spec)
                pure = (
                    unit_members[0].spec.algorithm.lower()
                    in _PURE_RESULT_ALGORITHMS
                )
                if unit_key is not None and unit_key in rep_keys and not pure:
                    continue
                for pipeline in unit_members:
                    pipeline.epoch = representative.epoch
                merged += len(unit_members)
                if unit_key is not None:
                    rep_keys.add(unit_key)
        if merged:
            self._rebuild_plan()
        return merged

    # ------------------------------------------------------------------
    # Shared-work execution plan
    # ------------------------------------------------------------------
    def _rebuild_plan(self) -> None:
        """Re-derive the sharing structure from the live pipelines.

        The plan is a *pure function* of the pipelines: group by
        (keyword, window lengths, epoch), alias member window pairs to one
        shared :class:`~repro.streams.windows.SlidingWindowPair`, then
        sub-group by full spec identity and alias those monitors outright.
        Aliasing is sound because same-key pipelines provably hold
        bit-identical state (same substream, same message history since the
        same epoch), so rebuilding is safe at any time — including over
        pipelines restored from an *unshared* checkpoint.

        With the plan disabled the same function runs in reverse: any state
        still shared (a shared-plan checkpoint restored plan-off) is cloned
        apart so every pipeline owns its monitor and windows privately.
        """
        if not self.shared_plan:
            self._groups = []
            self._routed_keywords = frozenset()
            self._unshare()
            return
        window_groups: dict[tuple, list[QueryPipeline]] = {}
        for pipeline in self.pipelines.values():
            windows = pipeline.monitor.windows
            # An unknown (legacy-snapshot) epoch gets a key unique to this
            # pipeline: it still gets a group — the chunk/advance paths run
            # through groups — but never a groupmate.
            epoch = pipeline.epoch if pipeline.epoch is not None else (
                "unknown-epoch", id(pipeline),
            )
            key = (
                pipeline.spec.keyword,
                windows.window_length,
                windows.past_window_length,
                epoch,
            )
            window_groups.setdefault(key, []).append(pipeline)
        groups: list[WindowGroup] = []
        for key, members in window_groups.items():
            units: dict[object, list[QueryPipeline]] = {}
            unshared_units: list[list[QueryPipeline]] = []
            for pipeline in members:
                unit_key = _detector_unit_key(pipeline.spec)
                if unit_key is None:
                    unshared_units.append([pipeline])
                else:
                    units.setdefault(unit_key, []).append(pipeline)
            all_units = list(units.values()) + unshared_units
            # The group's pair is the first leader's; every other monitor in
            # the group aliases it (followers alias the leader's monitor
            # wholesale, which carries the windows along).
            shared_windows = all_units[0][0].monitor.windows
            for unit in all_units:
                leader = unit[0]
                leader.monitor.windows = shared_windows
                for follower in unit[1:]:
                    follower.monitor = leader.monitor
            groups.append(WindowGroup(key[0], shared_windows, all_units))
        self._groups = groups
        self._routed_keywords = frozenset(
            group.keyword for group in groups if group.keyword is not None
        )

    def _unshare(self) -> None:
        """Give every pipeline private state (clone shared objects apart)."""
        import pickle

        seen_monitors: set[int] = set()
        seen_windows: set[int] = set()
        for pipeline in self.pipelines.values():
            monitor = pipeline.monitor
            if id(monitor) in seen_monitors:
                # The same pickle machinery the snapshot codec uses, so the
                # clone is bit-identical the same way a restore is.
                pipeline.monitor = pickle.loads(pickle.dumps(monitor))
                seen_windows.add(id(pipeline.monitor.windows))
                continue
            seen_monitors.add(id(monitor))
            if id(monitor.windows) in seen_windows:
                monitor.windows = monitor.windows.clone()
            seen_windows.add(id(monitor.windows))

    def _route_chunk(self, chunk: Sequence[SpatialObject]) -> dict[str, list[SpatialObject]]:
        """Bucket the chunk by routed keyword in one pass (inverted index).

        Only keywords some live query routes on get a bucket; objects
        carrying several routed keywords land in each matching bucket once
        (duplicate keywords on one object are collapsed, matching the
        membership semantics of the per-query predicate).  Buckets preserve
        chunk order, so they are valid ``observe_batch`` inputs.
        """
        wanted = self._routed_keywords
        buckets: dict[str, list[SpatialObject]] = {}
        if not wanted:
            return buckets
        for obj in chunk:
            keywords = obj.attributes.get("keywords", ())
            if not keywords:
                continue
            if isinstance(keywords, str):
                # A bare string predates the tuple normalisation the file
                # loaders apply.  The per-query predicate evaluates
                # ``keyword in <str>`` — substring membership — so the
                # router must replicate exactly that, or the two plans
                # would route (and answer) differently.
                for keyword in wanted:
                    if keyword in keywords:
                        bucket = buckets.get(keyword)
                        if bucket is None:
                            bucket = buckets[keyword] = []
                        bucket.append(obj)
                continue
            if len(keywords) != 1:
                keywords = dict.fromkeys(keywords)
            for keyword in keywords:
                if keyword in wanted:
                    bucket = buckets.get(keyword)
                    if bucket is None:
                        bucket = buckets[keyword] = []
                    bucket.append(obj)
        return buckets

    def _push_chunk_shared(
        self,
        chunk: Sequence[SpatialObject],
        chunk_index: int,
        shed: frozenset[str] = frozenset(),
    ) -> list[QueryUpdate]:
        tracer = self._tracer if self._tracer is not None and self._tracer.enabled else None
        started = time.perf_counter()
        buckets = self._route_chunk(chunk)
        routed_at = time.perf_counter()
        if tracer is not None:
            tracer.record("route.bucket", started, routed_at, chunk=chunk_index)
        # The one-pass routing scan is shard-level work; spread it evenly so
        # per-query busy_seconds still sums to the shard's true cost.
        shared_seconds = (
            (routed_at - started) / len(self.pipelines) if self.pipelines else 0.0
        )
        updates: dict[str, QueryUpdate] = {}
        for group in self._groups:
            if shed and all(
                pipeline.spec.query_id in shed
                for unit in group.units
                for pipeline in unit
            ):
                # The whole group is shed: its window clock stays unmoved
                # (exactly the unshared plan's per-pipeline behaviour, since
                # the service only sheds whole route classes).  Shedding a
                # *partial* group is never requested — it would advance the
                # shared windows past the shed members — so a partial shed
                # set is ignored and the group processes normally.
                for unit in group.units:
                    for pipeline in unit:
                        updates[pipeline.spec.query_id] = pipeline.skip_chunk(
                            chunk_index, shared_seconds, shed=True
                        )
                continue
            sub = chunk if group.keyword is None else buckets.get(group.keyword, ())
            if sub:
                observe_started = time.perf_counter()
                batch = group.windows.observe_batch(sub)
                observe_ended = time.perf_counter()
                if tracer is not None:
                    tracer.record(
                        "window.observe", observe_started, observe_ended,
                        chunk=chunk_index,
                    )
                # The group-level window ingest is work every member causes;
                # spread it across the group (it ran once *for* all of them)
                # on top of each member's routing slice.  Summed over the
                # shard, busy_seconds stays routing + observe + settle — a
                # strict lower bound on the handle wall time, never above it.
                members = sum(len(unit) for unit in group.units)
                group_seconds = (
                    shared_seconds + (observe_ended - observe_started) / members
                )
                n_routed = len(sub)
                for unit in group.units:
                    leader = unit[0]
                    update = leader.apply_batch(batch, chunk_index, n_routed, group_seconds)
                    updates[leader.spec.query_id] = update
                    for follower in unit[1:]:
                        updates[follower.spec.query_id] = follower.mirror_result(
                            update.result, chunk_index, n_routed, group_seconds
                        )
            else:
                for unit in group.units:
                    for pipeline in unit:
                        updates[pipeline.spec.query_id] = pipeline.skip_chunk(
                            chunk_index, shared_seconds
                        )
        self._epoch += 1
        return [updates[query_id] for query_id in self.pipelines]

    def _advance_shared(self, stream_time: float, chunk_index: int) -> list[QueryUpdate]:
        updates: dict[str, QueryUpdate] = {}
        for group in self._groups:
            events = group.windows.advance_time(stream_time)
            for unit in group.units:
                leader = unit[0]
                update = leader.apply_window_events(events, chunk_index)
                updates[leader.spec.query_id] = update
                for follower in unit[1:]:
                    follower.last_result = update.result
                    updates[follower.spec.query_id] = QueryUpdate(
                        query_id=follower.spec.query_id,
                        chunk_index=chunk_index,
                        result=update.result,
                        objects_routed=0,
                        busy_seconds=0.0,
                    )
        self._epoch += 1
        return [updates[query_id] for query_id in self.pipelines]

    # ------------------------------------------------------------------
    # Durability (see repro.state)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str, meta: dict | None = None) -> list[str]:
        """Write this shard's complete state to ``path`` (atomic snapshot).

        The payload is the :class:`ShardState` itself: every pipeline's spec,
        monitor (window deques + full detector state) and routing counters.
        Group-owned windows and unit-owned monitors are referenced by many
        pipelines but stored exactly once — pickle memoisation preserves the
        sharing graph.  Restoring it resumes the shard bit-identically.
        """
        from repro.state.recovery import SHARD_SNAPSHOT_KIND
        from repro.state.snapshot import write_snapshot

        header_meta = {"queries": list(self.pipelines)}
        if meta:
            header_meta.update(meta)
        write_snapshot(path, SHARD_SNAPSHOT_KIND, self, meta=header_meta)
        return list(self.pipelines)

    def restore(self, path: str) -> list[str]:
        """Replace this shard's pipelines with the snapshot at ``path``.

        The snapshot's *plan* is not adopted — the restored pipelines are
        re-normalised to this shard's own ``shared_plan`` setting, so a
        checkpoint taken under either plan restores under either plan with
        bit-identical behaviour.
        """
        from repro.state.recovery import SHARD_SNAPSHOT_KIND
        from repro.state.snapshot import read_snapshot

        _, state = read_snapshot(path, expected_kind=SHARD_SNAPSHOT_KIND)
        self.pipelines = state.pipelines
        self._epoch = getattr(state, "_epoch", 0)
        self._rebuild_plan()
        return list(self.pipelines)

    def _handle_ingest(self, message: tuple) -> list[QueryUpdate]:
        """The ``chunk``/``advance`` half of :meth:`handle`."""
        kind = message[0]
        if kind == "chunk":
            if len(message) == 4:
                _, chunk, chunk_index, shed = message
            else:
                _, chunk, chunk_index = message
                shed = frozenset()
            if self.shared_plan:
                return self._push_chunk_shared(chunk, chunk_index, shed)
            self._epoch += 1
            return [
                pipeline.skip_chunk(chunk_index, shed=True)
                if pipeline.spec.query_id in shed
                else pipeline.push_chunk(chunk, chunk_index)
                for pipeline in self.pipelines.values()
            ]
        _, stream_time, chunk_index = message
        if self.shared_plan:
            return self._advance_shared(stream_time, chunk_index)
        self._epoch += 1
        return [
            pipeline.advance(stream_time, chunk_index)
            for pipeline in self.pipelines.values()
        ]

    def handle(self, message: tuple) -> Any:
        kind = message[0]
        if kind in ("chunk", "advance"):
            tracer = self._tracer
            if tracer is None:
                return self._handle_ingest(message)
            # Activate the shard's tracer thread-locally so spans recorded
            # by shared code underneath (the window pair, the sweep kernel)
            # land here, then ship everything recorded during this message
            # back with the reply: under the process executor the spans
            # cross the pipe as plain tuples, and the service stamps this
            # shard's lane and rebases the worker-local clock.
            with activate(tracer):
                updates = self._handle_ingest(message)
            return (updates, tracer.drain_spans())
        if kind == "trace":
            enabled = bool(message[1])
            self._tracer = Tracer(enabled=True) if enabled else None
            return enabled
        if kind == "add":
            self.add(message[1])
            return list(self.pipelines)
        if kind == "remove":
            self.remove(message[1])
            return list(self.pipelines)
        if kind == "results":
            return [
                (query_id, pipeline.monitor.result())
                for query_id, pipeline in self.pipelines.items()
            ]
        if kind == "top_k":
            return [
                (query_id, pipeline.monitor.top_k(message[1]))
                for query_id, pipeline in self.pipelines.items()
            ]
        if kind == "stats":
            return [
                (
                    query_id,
                    pipeline.objects_routed,
                    pipeline.chunks_processed,
                    pipeline.busy_seconds,
                )
                for query_id, pipeline in self.pipelines.items()
            ]
        if kind == "checkpoint":
            return self.checkpoint(message[1], message[2])
        if kind == "restore":
            return self.restore(message[1])
        if kind == "compact":
            return self.compact()
        raise ValueError(f"unknown shard message kind {kind!r}")


class ShardExecutor(abc.ABC):
    """Common interface of the three shard execution backends."""

    #: Name under which the backend is selectable.
    name: str = "executor"

    def __init__(
        self, shard_specs: Sequence[Sequence[QuerySpec]], shared_plan: bool = True
    ) -> None:
        if not shard_specs:
            raise ValueError("an executor needs at least one shard")
        self.n_shards = len(shard_specs)
        self.shared_plan = bool(shared_plan)

    @abc.abstractmethod
    def send(self, shard_index: int, message: tuple) -> Any:
        """Deliver one message to one shard and return its reply."""

    @abc.abstractmethod
    def broadcast(self, message: tuple) -> list[Any]:
        """Deliver one message to every shard; replies in shard order."""

    def scatter(self, messages: Sequence[tuple]) -> list[Any]:
        """Deliver ``messages[i]`` to shard ``i``; replies in shard order.

        The per-shard variant of :meth:`broadcast`, used by the checkpoint
        path (every shard persists to its own file, so each shard gets its
        own message).  Concurrent backends overlap the per-shard work just
        like a broadcast.
        """
        if len(messages) != self.n_shards:
            raise ValueError(
                f"scatter needs one message per shard "
                f"({self.n_shards}), got {len(messages)}"
            )
        return self._scatter(messages)

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        """Backend hook behind the validated :meth:`scatter`."""
        return [self.send(index, message) for index, message in enumerate(messages)]

    def close(self) -> None:
        """Release worker threads / processes (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """All shards inline in the calling thread (the reference backend)."""

    name = "serial"

    def __init__(
        self, shard_specs: Sequence[Sequence[QuerySpec]], shared_plan: bool = True
    ) -> None:
        super().__init__(shard_specs, shared_plan)
        self._shards = [ShardState(specs, shared_plan) for specs in shard_specs]

    def send(self, shard_index: int, message: tuple) -> Any:
        return self._shards[shard_index].handle(message)

    def broadcast(self, message: tuple) -> list[Any]:
        return [shard.handle(message) for shard in self._shards]


class ThreadExecutor(ShardExecutor):
    """One pool thread per shard; shards of a chunk run concurrently.

    The service broadcasts chunks with a gather barrier between chunks, so a
    given shard's state is only ever touched by one in-flight task at a time
    — no locking is needed.
    """

    name = "thread"

    def __init__(
        self, shard_specs: Sequence[Sequence[QuerySpec]], shared_plan: bool = True
    ) -> None:
        super().__init__(shard_specs, shared_plan)
        self._shards = [ShardState(specs, shared_plan) for specs in shard_specs]
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="surge-shard"
        )

    def send(self, shard_index: int, message: tuple) -> Any:
        return self._pool.submit(self._shards[shard_index].handle, message).result()

    def broadcast(self, message: tuple) -> list[Any]:
        futures = [
            self._pool.submit(shard.handle, message) for shard in self._shards
        ]
        return [future.result() for future in futures]

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        futures = [
            self._pool.submit(shard.handle, message)
            for shard, message in zip(self._shards, messages)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Process backend: persistent single-worker pool per shard
# ---------------------------------------------------------------------------
#: Worker-process global holding that worker's shard state.  Each shard has
#: its own single-worker pool, so each worker process sees exactly one shard.
_WORKER_SHARD: ShardState | None = None


def _init_worker_shard(specs: Sequence[QuerySpec], shared_plan: bool = True) -> None:
    """Pool initializer: build the shard's pipelines inside the worker."""
    global _WORKER_SHARD
    _WORKER_SHARD = ShardState(specs, shared_plan)


def _worker_handle(message: tuple) -> Any:
    assert _WORKER_SHARD is not None, "shard worker used before initialisation"
    return _WORKER_SHARD.handle(message)


class ProcessExecutor(ShardExecutor):
    """One persistent worker process per shard.

    Each shard is a ``ProcessPoolExecutor(max_workers=1)``: the single
    worker keeps the shard's monitors alive across chunks, and the pool's
    FIFO task queue preserves message order per shard.  Specs are pickled
    once at start-up via the pool initializer; chunks and
    :class:`~repro.service.bus.QueryUpdate` replies are pickled per message.
    """

    name = "process"

    def __init__(
        self, shard_specs: Sequence[Sequence[QuerySpec]], shared_plan: bool = True
    ) -> None:
        super().__init__(shard_specs, shared_plan)
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker_shard,
                initargs=(tuple(specs), shared_plan),
            )
            for specs in shard_specs
        ]

    def send(self, shard_index: int, message: tuple) -> Any:
        return self._pools[shard_index].submit(_worker_handle, message).result()

    def broadcast(self, message: tuple) -> list[Any]:
        futures = [pool.submit(_worker_handle, message) for pool in self._pools]
        return [future.result() for future in futures]

    def _scatter(self, messages: Sequence[tuple]) -> list[Any]:
        futures = [
            pool.submit(_worker_handle, message)
            for pool, message in zip(self._pools, messages)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(
    name: str,
    shard_specs: Sequence[Sequence[QuerySpec]],
    shared_plan: bool = True,
    **options: Any,
) -> ShardExecutor:
    """Instantiate a shard executor by backend name.

    ``options`` are backend-specific keyword arguments; only the ``remote``
    backend accepts any (worker count, listen endpoint, checkpoint
    directory, RPC tuning — see
    :class:`repro.distributed.executor.RemoteExecutor`).
    """
    key = name.lower()
    if key == "remote":
        from repro.distributed.executor import RemoteExecutor

        return RemoteExecutor(shard_specs, shared_plan, **options)
    if key not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
        )
    if options:
        raise ValueError(
            f"executor {key!r} accepts no options, got {sorted(options)}"
        )
    return _EXECUTORS[key](shard_specs, shared_plan)
