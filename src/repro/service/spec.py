"""Per-query registration records for the multi-query service.

A stream platform runs *many* continuous SURGE queries over one shared
object stream: different keywords, rectangle sizes, window lengths,
algorithms.  :class:`QuerySpec` is the unit of registration — the
:class:`~repro.core.query.SurgeQuery` itself plus the routing keyword, the
detector choice and a stable ``query_id`` — and is what travels to shard
worker processes (specs are small and picklable; the heavyweight monitor is
built inside the shard).

``queries.json`` files consumed by ``repro serve`` hold a list of the
dictionary form::

    [
      {"id": "concerts", "keyword": "concert", "rect": [0.01, 0.01],
       "window": 3600, "alpha": 0.5, "k": 1, "algorithm": "ccs"},
      {"id": "all-traffic", "rect": [0.02, 0.01], "window": 1800}
    ]

``keyword`` omitted (or ``null``) means the query sees the whole stream.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.monitor import DETECTOR_NAMES
from repro.core.query import SurgeQuery
from repro.datasets.keywords import DEFAULT_VOCABULARY, matches_keyword
from repro.geometry.primitives import Rect
from repro.streams.objects import SpatialObject


@dataclass(frozen=True)
class QuerySpec:
    """One registered continuous query: routing filter + SURGE query + detector.

    Parameters
    ----------
    query_id:
        Stable identifier; unique within a service.
    query:
        The SURGE query the per-query monitor answers.
    algorithm:
        Detector name accepted by :func:`repro.core.monitor.make_detector`.
    keyword:
        Routing keyword; only objects whose ``keywords`` attribute contains
        it reach this query's monitor.  ``None`` routes the whole stream.
    backend:
        Optional SL-CSPOT sweep backend override for this query.
    options:
        Extra keyword arguments for the detector constructor.
    priority:
        Load-shedding rank (higher = more important).  When the service
        enters degraded mode under the ``shed`` policy, queries whose
        priority is below the configured threshold are skipped until load
        recedes.  Priority plays no part in routing or sharing — two specs
        differing only in priority still share windows and detectors.
    """

    query_id: str
    query: SurgeQuery
    algorithm: str = "ccs"
    keyword: str | None = None
    backend: str | None = None
    options: Mapping[str, Any] = field(default_factory=dict)
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.query_id:
            raise ValueError("query_id must be a non-empty string")
        if self.algorithm.lower() not in DETECTOR_NAMES:
            raise ValueError(
                f"unknown detector {self.algorithm!r} for query "
                f"{self.query_id!r}; expected one of {', '.join(DETECTOR_NAMES)}"
            )

    def matches(self, obj: SpatialObject) -> bool:
        """Whether the shared-stream object is routed to this query."""
        return matches_keyword(obj, self.keyword)

    def build_monitor(self):
        """Instantiate this query's :class:`~repro.core.monitor.SurgeMonitor`.

        Imported lazily so that pickling a spec to a shard worker never drags
        the detector machinery through the pickle stream.
        """
        from repro.core.monitor import SurgeMonitor

        return SurgeMonitor(
            self.query,
            algorithm=self.algorithm,
            backend=self.backend,
            **dict(self.options),
        )

    # ------------------------------------------------------------------
    # JSON round-trip (the ``repro serve --queries`` file format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-serialisable form accepted by :meth:`from_dict`."""
        record: dict[str, Any] = {
            "id": self.query_id,
            "rect": [self.query.rect_width, self.query.rect_height],
            "window": self.query.window_length,
            "alpha": self.query.alpha,
            "k": self.query.k,
            "algorithm": self.algorithm,
        }
        if self.keyword is not None:
            record["keyword"] = self.keyword
        if self.backend is not None:
            record["backend"] = self.backend
        if self.query.past_window_length is not None:
            record["past_window"] = self.query.past_window_length
        if self.query.area is not None:
            area = self.query.area
            record["area"] = [area.min_x, area.min_y, area.max_x, area.max_y]
        if self.options:
            record["options"] = dict(self.options)
        if self.priority != 0:
            record["priority"] = self.priority
        return record

    @staticmethod
    def from_dict(record: Mapping[str, Any]) -> "QuerySpec":
        """Build a spec from the ``queries.json`` dictionary form."""
        try:
            query_id = str(record["id"])
            rect = record["rect"]
            window = float(record["window"])
        except KeyError as exc:
            raise ValueError(
                f"query record is missing the required field {exc.args[0]!r} "
                f"(record: {dict(record)!r})"
            ) from None
        if not isinstance(rect, Sequence) or len(rect) != 2:
            raise ValueError(
                f"query {query_id!r}: 'rect' must be a [width, height] pair, "
                f"got {rect!r}"
            )
        area = record.get("area")
        query = SurgeQuery(
            rect_width=float(rect[0]),
            rect_height=float(rect[1]),
            window_length=window,
            alpha=float(record.get("alpha", 0.5)),
            area=Rect(*map(float, area)) if area is not None else None,
            past_window_length=(
                float(record["past_window"]) if "past_window" in record else None
            ),
            k=int(record.get("k", 1)),
        )
        return QuerySpec(
            query_id=query_id,
            query=query,
            algorithm=str(record.get("algorithm", "ccs")),
            keyword=record.get("keyword"),
            backend=record.get("backend"),
            options=dict(record.get("options", {})),
            priority=int(record.get("priority", 0)),
        )


def load_query_specs(path: str | Path) -> list[QuerySpec]:
    """Load and validate a ``queries.json`` file (a non-empty JSON list)."""
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, list) or not raw:
        raise ValueError(
            f"{path}: expected a non-empty JSON list of query records"
        )
    specs = [QuerySpec.from_dict(record) for record in raw]
    seen: set[str] = set()
    for spec in specs:
        if spec.query_id in seen:
            raise ValueError(f"{path}: duplicate query id {spec.query_id!r}")
        seen.add(spec.query_id)
    return specs


def make_query_grid(
    n_queries: int,
    *,
    base_rect: tuple[float, float] = (1.0, 1.0),
    base_window: float = 20.0,
    alpha: float = 0.5,
    algorithm: str = "ccs",
    backend: str | None = None,
    keywords: Sequence[str | None] = DEFAULT_VOCABULARY,
    rect_multipliers: Sequence[float] = (1.0, 1.5, 0.75),
    window_multipliers: Sequence[float] = (1.0, 2.0, 0.5),
    group_aligned: bool = False,
) -> list[QuerySpec]:
    """A deterministic grid of ``n_queries`` heterogeneous query specs.

    The multi-tenant scenario of the paper's setting: queries cycle through
    the routing keywords, rectangle sizes and window lengths (the experiment
    grid a platform's users would register), so benchmark and scenario runs
    exercise genuinely different per-query state.  Query ids are
    ``q000, q001, ...`` and the grid is fully determined by its arguments.

    With ``group_aligned=False`` (default, the historical behaviour) the
    three dimensions cycle *independently*, so which (keyword, window)
    pairs co-occur — the sharing the service's shared execution plan can
    exploit — is an accident of the cycle periods: co-prime periods spray
    the pairs around, equal periods lock dimensions together so most
    combinations never co-occur.  ``group_aligned=True`` instead enumerates
    the full product with rectangles varying fastest, then keywords, then
    windows: every (keyword, window) pair appears before any repeats, and
    once ``n_queries`` exceeds ``len(keywords) × len(window_multipliers) ×
    len(rect_multipliers)`` the grid wraps onto exact duplicates — so a
    benchmark can dial the window-sharing and detector-sharing factors
    explicitly (``n_queries / distinct pairs`` and ``n_queries / distinct
    triples``) instead of inheriting whatever the independent cycles
    happen to produce.
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    specs = []
    if group_aligned:
        n_rects = len(rect_multipliers)
        n_keywords = len(keywords)
        for index in range(n_queries):
            rect_scale = rect_multipliers[index % n_rects]
            keyword = keywords[(index // n_rects) % n_keywords]
            window_scale = window_multipliers[
                (index // (n_rects * n_keywords)) % len(window_multipliers)
            ]
            specs.append(
                QuerySpec(
                    query_id=f"q{index:03d}",
                    query=SurgeQuery(
                        rect_width=base_rect[0] * rect_scale,
                        rect_height=base_rect[1] * rect_scale,
                        window_length=base_window * window_scale,
                        alpha=alpha,
                    ),
                    algorithm=algorithm,
                    keyword=keyword,
                    backend=backend,
                )
            )
        return specs
    keyword_cycle = itertools.cycle(keywords)
    rect_cycle = itertools.cycle(rect_multipliers)
    window_cycle = itertools.cycle(window_multipliers)
    for index in range(n_queries):
        rect_scale = next(rect_cycle)
        specs.append(
            QuerySpec(
                query_id=f"q{index:03d}",
                query=SurgeQuery(
                    rect_width=base_rect[0] * rect_scale,
                    rect_height=base_rect[1] * rect_scale,
                    window_length=base_window * next(window_cycle),
                    alpha=alpha,
                ),
                algorithm=algorithm,
                keyword=next(keyword_cycle),
                backend=backend,
            )
        )
    return specs
